# One-liners for the common workflows.  Everything runs with src/ on the
# import path; no installation step is required.

PYTHON ?= python
PYTHONPATH_PREFIX = PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: test unit bench bench-paper bench-json bench-gate serve-bench fleet lint docs-check schemas protocol-gate resume-smoke

## tier-1 verification: full pytest run (unit tests + reduced-scale benchmarks)
test:
	$(PYTHONPATH_PREFIX) $(PYTHON) -m pytest -x -q

## fast loop: unit tests only
unit:
	$(PYTHONPATH_PREFIX) $(PYTHON) -m pytest tests/ -x -q

## paper figures/tables at reduced scale + engine throughput (prints tables)
bench:
	$(PYTHONPATH_PREFIX) $(PYTHON) -m pytest benchmarks/ -q -s

## the same at the paper's full scale (hours)
bench-paper:
	REPRO_BENCH_SCALE=paper $(PYTHONPATH_PREFIX) $(PYTHON) -m pytest benchmarks/ -q -s

## machine-readable benchmarks: BENCH_runtime/compiler/serving/kernels.json
bench-json:
	REPRO_BENCH_JSON=BENCH_runtime.json $(PYTHONPATH_PREFIX) $(PYTHON) -m pytest benchmarks/test_batched_evaluation.py -q -s
	REPRO_BENCH_JSON=BENCH_compiler.json $(PYTHONPATH_PREFIX) $(PYTHON) -m pytest benchmarks/test_compile_cache.py -q -s
	REPRO_BENCH_JSON=BENCH_serving.json $(PYTHONPATH_PREFIX) $(PYTHON) -m pytest benchmarks/test_serving_throughput.py benchmarks/test_sharded_serving.py -q -s
	REPRO_BENCH_JSON=BENCH_kernels.json $(PYTHONPATH_PREFIX) $(PYTHON) -m pytest benchmarks/test_kernel_tier.py -q -s

## assert BENCH_*.json speedups against the committed floors (CI bench-gate)
bench-gate:
	$(PYTHON) scripts/bench_gate.py

## sharded-serving scaling benchmark only (updates BENCH_serving.json)
serve-bench:
	REPRO_BENCH_JSON=BENCH_serving.json $(PYTHONPATH_PREFIX) $(PYTHON) -m pytest benchmarks/test_sharded_serving.py -q -s

## quick-scale device-fleet drift replay (2 devices x 2 scenarios)
fleet:
	$(PYTHONPATH_PREFIX) $(PYTHON) -m repro.experiments fleet --scale test \
		--devices ring_5,line_5 --scenarios seasonal,jump

## regenerate the pinned protocol message schemas in docs/schemas/
schemas:
	$(PYTHON) scripts/schema_gate.py --write

## assert the committed schemas match the live message registry (CI gate)
protocol-gate:
	$(PYTHON) scripts/schema_gate.py

## SIGKILL a fleet run mid-grid, resume it, and diff against a clean run
resume-smoke:
	$(PYTHON) scripts/crash_resume_smoke.py --workdir crash_resume_smoke

## critical-correctness lint (requires ruff; config in ruff.toml)
lint:
	ruff check .

## docs presence + public-API docstring audit
docs-check:
	$(PYTHON) scripts/docs_check.py
