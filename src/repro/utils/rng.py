"""Random-number-generator helpers.

Every stochastic component in the library accepts either a seed, an existing
:class:`numpy.random.Generator`, or ``None``.  :func:`ensure_rng` normalizes
all three into a ``Generator`` so downstream code never touches global
NumPy random state.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for a non-deterministic generator, an ``int`` seed, or an
        existing ``Generator`` (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from a single seed.

    The derived streams are statistically independent, so parallel or
    per-component randomness stays reproducible regardless of call order.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = ensure_rng(seed)
    return [np.random.default_rng(s) for s in root.bit_generator.seed_seq.spawn(count)] \
        if hasattr(root.bit_generator, "seed_seq") and root.bit_generator.seed_seq is not None \
        else [np.random.default_rng(root.integers(0, 2**63 - 1)) for _ in range(count)]
