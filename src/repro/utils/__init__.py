"""Shared numerical and bookkeeping utilities."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.linalg import (
    is_unitary,
    is_hermitian,
    is_density_matrix,
    kron_all,
    fidelity,
    trace_distance,
    project_to_density_matrix,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "is_unitary",
    "is_hermitian",
    "is_density_matrix",
    "kron_all",
    "fidelity",
    "trace_distance",
    "project_to_density_matrix",
]
