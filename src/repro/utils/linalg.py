"""Linear-algebra helpers used across simulators and tests."""

from __future__ import annotations

from functools import reduce
from typing import Iterable, Sequence

import numpy as np

_ATOL = 1e-9


def is_unitary(matrix: np.ndarray, atol: float = 1e-8) -> bool:
    """Return ``True`` if ``matrix`` is unitary within tolerance ``atol``."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    identity = np.eye(matrix.shape[0])
    return bool(np.allclose(matrix @ matrix.conj().T, identity, atol=atol))


def is_hermitian(matrix: np.ndarray, atol: float = 1e-8) -> bool:
    """Return ``True`` if ``matrix`` equals its conjugate transpose."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    return bool(np.allclose(matrix, matrix.conj().T, atol=atol))


def is_density_matrix(matrix: np.ndarray, atol: float = 1e-7) -> bool:
    """Return ``True`` if ``matrix`` is a valid density matrix.

    A density matrix must be Hermitian, positive semidefinite, and have
    unit trace.
    """
    matrix = np.asarray(matrix)
    if not is_hermitian(matrix, atol=atol):
        return False
    if not np.isclose(np.trace(matrix).real, 1.0, atol=atol):
        return False
    eigenvalues = np.linalg.eigvalsh(matrix)
    return bool(np.all(eigenvalues > -atol))


def kron_all(matrices: Sequence[np.ndarray] | Iterable[np.ndarray]) -> np.ndarray:
    """Kronecker product of all matrices in order (left factor first)."""
    matrices = list(matrices)
    if not matrices:
        raise ValueError("kron_all requires at least one matrix")
    return reduce(np.kron, matrices)


def fidelity(rho: np.ndarray, sigma: np.ndarray) -> float:
    """Uhlmann fidelity between two density matrices.

    Uses the eigen-decomposition of ``rho`` to form its square root; both
    inputs must be valid density matrices of the same dimension.
    """
    rho = np.asarray(rho, dtype=complex)
    sigma = np.asarray(sigma, dtype=complex)
    values, vectors = np.linalg.eigh(rho)
    values = np.clip(values, 0.0, None)
    sqrt_rho = (vectors * np.sqrt(values)) @ vectors.conj().T
    inner = sqrt_rho @ sigma @ sqrt_rho
    inner_values = np.linalg.eigvalsh(inner)
    inner_values = np.clip(inner_values, 0.0, None)
    return float(np.sum(np.sqrt(inner_values)) ** 2)


def trace_distance(rho: np.ndarray, sigma: np.ndarray) -> float:
    """Trace distance ``0.5 * ||rho - sigma||_1`` between density matrices."""
    delta = np.asarray(rho, dtype=complex) - np.asarray(sigma, dtype=complex)
    singular_values = np.linalg.svd(delta, compute_uv=False)
    return float(0.5 * np.sum(singular_values))


def project_to_density_matrix(matrix: np.ndarray) -> np.ndarray:
    """Project a nearly valid density matrix back onto the physical set.

    Numerical noise from long Kraus-channel chains can push eigenvalues
    slightly negative; this clips them and renormalizes the trace.
    """
    matrix = np.asarray(matrix, dtype=complex)
    hermitian = 0.5 * (matrix + matrix.conj().T)
    values, vectors = np.linalg.eigh(hermitian)
    values = np.clip(values, 0.0, None)
    total = values.sum()
    if total <= 0:
        raise ValueError("matrix has no positive spectral weight")
    values = values / total
    return (vectors * values) @ vectors.conj().T
