"""A minimal thread-tolerant LRU discipline over :class:`~collections.OrderedDict`.

Shared by the content-addressed caches that may be touched from runner
worker threads (the transpiler pipeline's pass-artifact caches and
``TranspiledCircuit``'s basis-translation memo).  Operations tolerate the
benign interleavings CPython's GIL leaves possible — a key evicted between
a ``get`` and its recency bump, or two threads evicting concurrently —
without locking; per-entry work is tiny and the worst case is one lost
recency update or one extra eviction.
"""

from __future__ import annotations

from collections import OrderedDict


def lru_get(cache: OrderedDict, key):
    """Fetch ``key`` and mark it most-recently-used; ``None`` on miss."""
    value = cache.get(key)
    if value is not None:
        try:
            cache.move_to_end(key)
        except KeyError:  # pragma: no cover - thread interleaving only
            pass
    return value


def lru_put(cache: OrderedDict, key, value, capacity: int) -> int:
    """Insert ``key`` as most-recently-used and evict down to ``capacity``.

    Returns the number of entries evicted, so capacity-aware callers (the
    runtime's :class:`~repro.runtime.cache.EvaluationCache`) can keep
    eviction statistics without re-deriving them.
    """
    cache[key] = value
    cache.move_to_end(key)
    evicted = 0
    while len(cache) > capacity:
        try:
            cache.popitem(last=False)
        except KeyError:  # pragma: no cover - thread interleaving only
            break
        evicted += 1
    return evicted
