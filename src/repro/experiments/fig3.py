"""Fig. 3: loss/performance landscape of a two-parameter VQC.

The figure sweeps the two rotation angles of a tiny VQC over a grid and
compares the landscape in a noise-free environment with the landscape under
device noise.  The difference exposes "breakpoints" along the compression
levels (0, pi/2, pi, 3pi/2): at those angles the transpiled circuit is
shorter, so the noisy deviation drops sharply — the observation that
motivates compression.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.calibration import CalibrationSnapshot, generate_belem_history
from repro.circuits import build_two_parameter_vqc
from repro.experiments.config import ExperimentScale
from repro.simulator import (
    NoiseModel,
    default_density_backend,
    default_statevector_backend,
)
from repro.transpiler import belem_coupling, to_basis, transpile


@dataclass
class Fig3Result:
    """Noise-free and noisy landscapes over the parameter grid."""

    grid: np.ndarray
    ideal_surface: np.ndarray
    noisy_surface: np.ndarray

    @property
    def difference(self) -> np.ndarray:
        """The deviation ``N(theta) = W_n(theta) - W_p(theta)`` (Fig. 3c)."""
        return self.noisy_surface - self.ideal_surface

    def breakpoint_gain(self, atol: float = 1e-6) -> float:
        """How much smaller the mean absolute deviation is on the breakpoints.

        Returns ``mean(|N| off-grid) - mean(|N| on-grid)``; a positive value
        confirms that parameters sitting on compression levels suffer less
        from noise.
        """
        levels = np.array([0.0, np.pi / 2, np.pi, 3 * np.pi / 2, 2 * np.pi])
        on_level = np.array(
            [np.min(np.abs(levels - value)) <= atol for value in self.grid]
        )
        deviation = np.abs(self.difference)
        on_mask = np.logical_or.outer(on_level, on_level)
        off_mean = float(deviation[~on_mask].mean())
        on_mean = float(deviation[on_mask].mean())
        return off_mean - on_mean


def run_fig3(
    scale: Optional[ExperimentScale] = None,
    calibration: Optional[CalibrationSnapshot] = None,
    grid_points: int = 17,
    observable_qubit: int = 0,
) -> Fig3Result:
    """Sweep the 2-parameter VQC landscape under ideal and noisy execution.

    The whole grid goes through two ``execute_batch`` calls.  The ideal
    surface genuinely vectorises (one stacked-matmul sweep over every
    ``(theta_0, theta_1)`` binding); the noisy surface batches the
    bindings through one call but — every grid point being a distinct
    parameter binding — evolves them group-by-group at per-point cost.
    """
    scale = scale or ExperimentScale()
    if calibration is None:
        history = generate_belem_history(30, seed=scale.seed)
        calibration = history[len(history) - 1]
    coupling = belem_coupling()
    circuit = build_two_parameter_vqc()
    transpiled = transpile(circuit, coupling, calibration=calibration)
    noise_model = NoiseModel.from_calibration(calibration)

    grid = np.linspace(0.0, 2 * np.pi, grid_points)
    parameter_sets = [
        np.array([theta_0, theta_1]) for theta_0 in grid for theta_1 in grid
    ]
    measured = transpiled.measured_physical_qubits([observable_qubit])

    sv_backend = default_statevector_backend()
    ideal_results = sv_backend.execute_batch(circuit, parameter_sets, batch=1)
    ideal_surface = np.array(
        [
            float(result.expectation_z([observable_qubit])[0, 0])
            for result in ideal_results
        ]
    ).reshape(grid_points, grid_points)

    dm_backend = default_density_backend()
    physical = [to_basis(transpiled.bind(parameters)) for parameters in parameter_sets]
    noisy_results = dm_backend.execute_batch(
        physical, noise_models=noise_model, batch=1
    )
    noisy_surface = np.array(
        [float(result.expectation_z(measured)[0, 0]) for result in noisy_results]
    ).reshape(grid_points, grid_points)
    return Fig3Result(grid=grid, ideal_surface=ideal_surface, noisy_surface=noisy_surface)
