"""Fig. 1: the fluctuating noise observed on the belem-like backend.

The figure shows the Pauli-X, CNOT, and readout error-rate time series over
roughly one year of calibrations.  The reproduction returns those series for
the synthetic history together with the summary statistics that make the
"fluctuating in a wide range" observation quantitative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.calibration import CalibrationHistory, generate_belem_history
from repro.experiments.config import ExperimentScale


@dataclass
class Fig1Result:
    """Error-rate time series grouped by channel kind."""

    dates: list[str]
    series: dict[str, np.ndarray]

    def kinds(self) -> dict[str, list[str]]:
        """Feature names grouped into single-qubit / CNOT / readout channels."""
        grouped: dict[str, list[str]] = {"single_qubit": [], "cnot": [], "readout": []}
        for name in self.series:
            if name.startswith("sq_"):
                grouped["single_qubit"].append(name)
            elif name.startswith("cx_"):
                grouped["cnot"].append(name)
            else:
                grouped["readout"].append(name)
        return grouped

    def fluctuation_summary(self) -> dict[str, dict[str, float]]:
        """Min / max / mean / max-to-min ratio per channel kind."""
        summary = {}
        for kind, names in self.kinds().items():
            stacked = np.stack([self.series[name] for name in names])
            summary[kind] = {
                "min": float(stacked.min()),
                "max": float(stacked.max()),
                "mean": float(stacked.mean()),
                "max_over_min": float(stacked.max() / max(stacked.min(), 1e-12)),
            }
        return summary


def run_fig1(
    scale: Optional[ExperimentScale] = None,
    history: Optional[CalibrationHistory] = None,
) -> Fig1Result:
    """Reproduce the Fig. 1 noise-fluctuation series."""
    scale = scale or ExperimentScale()
    if history is None:
        history = generate_belem_history(
            scale.offline_days + scale.online_days, seed=scale.seed
        )
    names = history.feature_names()
    matrix = history.to_matrix()
    series = {name: matrix[:, index] for index, name in enumerate(names)}
    return Fig1Result(dates=[d or "" for d in history.dates], series=series)
