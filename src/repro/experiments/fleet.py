"""The ``fleet`` harness: device-fleet drift replay behind the CLI.

This is the experiments-layer front door to :mod:`repro.fleet`: it parses
the CLI's comma-separated device/scenario lists, applies the default grid,
and runs the :class:`~repro.fleet.FleetHarness` at the requested scale.
``python -m repro.experiments fleet --scale test`` replays the default
2 × 2 grid (≥ 4 cells) and prints the per-cell JSON report.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence, Union

from repro.exceptions import ReproError
from repro.experiments.config import ExperimentScale
from repro.runtime import RunRecordLog
from repro.runtime.records import PathLike

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (repro.fleet
    # imports the experiments layer; the runtime import lives in run_fleet)
    from repro.fleet import FleetReport

#: Default fleet grid: one paper chip and one library topology...
DEFAULT_FLEET_DEVICES: tuple[str, ...] = ("belem", "ring_5")
#: ...crossed with one gradual and one discontinuous drift family.
DEFAULT_FLEET_SCENARIOS: tuple[str, ...] = ("seasonal", "jump")


def _parse_list(value: Union[str, Sequence[str], None], default: tuple[str, ...]) -> list[str]:
    """Normalize a comma-separated CLI string (or sequence) into a list."""
    if value is None:
        return list(default)
    if isinstance(value, str):
        items = [item.strip() for item in value.split(",")]
    else:
        items = [str(item).strip() for item in value]
    items = [item for item in items if item]
    if not items:
        raise ReproError("device/scenario lists must name at least one entry")
    return items


def run_fleet(
    scale: Optional[ExperimentScale] = None,
    devices: Union[str, Sequence[str], None] = None,
    scenarios: Union[str, Sequence[str], None] = None,
    dataset_name: str = "mnist4",
    cell_workers: Optional[int] = None,
    record_log: Union[RunRecordLog, PathLike, None] = None,
    seed: Optional[int] = None,
    runner_mode: str = "serial",
    store: Union[str, PathLike, None] = None,
    run_id: Optional[str] = None,
    resume: Optional[str] = None,
) -> FleetReport:
    """Replay the (devices × scenarios) grid; returns the fleet report.

    ``devices`` / ``scenarios`` accept comma-separated strings (the CLI
    form) or sequences; omitted lists fall back to the default 2 × 2 grid.
    ``store`` attaches the durable SQLite run store; ``resume`` skips
    cells that run already completed (see ``fleet --resume``).
    """
    from repro.fleet import run_fleet as _run_fleet_grid

    return _run_fleet_grid(
        _parse_list(devices, DEFAULT_FLEET_DEVICES),
        _parse_list(scenarios, DEFAULT_FLEET_SCENARIOS),
        scale=scale or ExperimentScale(),
        dataset_name=dataset_name,
        cell_workers=cell_workers,
        record_log=record_log,
        seed=seed,
        runner_mode=runner_mode,
        store=store,
        run_id=run_id,
        resume=resume,
    )
