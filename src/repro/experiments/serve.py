"""The ``serve`` harness: an end-to-end online-serving run with drift.

This is the serving counterpart of the figure/table harnesses: it prepares
the standard experiment setup (trained base model bound to a device),
deploys the model into an :class:`~repro.serving.InferenceService`, and
drives it with a :class:`~repro.serving.LoadGenerator` while feeding the
online calibration history to the service's watcher — micro-batching,
hot-swap adaptation, and telemetry all exercised in one run.  The CLI
(``python -m repro.experiments serve``) and the CI smoke test both call
:func:`run_serve`.

With ``shards > 1`` the harness builds a
:class:`~repro.serving.ShardedInferenceService` instead — same client API,
but requests are consistent-hash routed to that many shard worker
processes.  ``num_models`` deploys the trained model under several endpoint
names (``qnn-0`` … ``qnn-N``) so the load spreads across shards, and
``arrival_rate`` switches the load generator from closed-loop to open-loop
(fixed-rate Poisson) arrivals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.experiments.config import ExperimentScale
from repro.experiments.context import ExperimentSetup, prepare_experiment
from repro.serving import (
    BatchPolicy,
    InferenceService,
    LoadGenerator,
    LoadReport,
    ShardedInferenceService,
)

#: Default endpoint name used by the serve harness (single-model runs).
SERVE_MODEL_NAME = "qnn"


def serve_model_names(num_models: int) -> list[str]:
    """Endpoint names for a serve run: ``qnn`` or ``qnn-0`` … ``qnn-N-1``."""
    if num_models < 1:
        raise ValueError(f"num_models must be >= 1, got {num_models}")
    if num_models == 1:
        return [SERVE_MODEL_NAME]
    return [f"{SERVE_MODEL_NAME}-{index}" for index in range(num_models)]


@dataclass
class ServeResult:
    """Everything a serve run produced."""

    report: LoadReport
    stats: dict
    device: str
    shards: int = 1
    model_names: Optional[list[str]] = None

    def summary(self) -> dict:
        """JSON-ready summary for the CLI payload."""
        return {
            "device": self.device,
            "shards": self.shards,
            "models": self.model_names or [SERVE_MODEL_NAME],
            "load": self.report.as_dict(),
            "serving": self.stats,
        }


def run_serve(
    scale: Optional[ExperimentScale] = None,
    setup: Optional[ExperimentSetup] = None,
    device: Optional[str] = None,
    num_requests: int = 256,
    max_batch: int = 16,
    max_latency_ms: float = 2.0,
    observe_every: Optional[int] = None,
    seed: int = 0,
    shards: int = 1,
    num_models: int = 1,
    arrival_rate: Optional[float] = None,
) -> ServeResult:
    """Serve a trained model under injected calibration drift.

    The model is deployed on the *last offline day*'s calibration; the
    online history then drips into the watcher every ``observe_every``
    requests (default: spread the whole online history evenly across the
    request stream), hot-swapping the deployment whenever drift crosses
    the adaptation boundary — while the load generator keeps requests in
    flight.

    ``shards > 1`` serves through that many shard processes;
    ``num_models > 1`` publishes the model under several endpoint names so
    the consistent-hash ring spreads them over the shards; a non-``None``
    ``arrival_rate`` (requests/second) drives the open-loop generator
    instead of the closed loop.
    """
    scale = scale or ExperimentScale()
    if setup is None:
        setup = prepare_experiment(
            "mnist4", scale=scale, device=device if device is not None else "belem"
        )
    drift = list(setup.online_history)
    if observe_every is None and drift:
        observe_every = max(1, num_requests // (len(drift) + 1))
    policy = BatchPolicy(max_batch=max_batch, max_latency_ms=max_latency_ms)
    if shards > 1:
        service = ShardedInferenceService(num_shards=shards, policy=policy)
    else:
        service = InferenceService(policy=policy)
    names = serve_model_names(num_models)
    for name in names:
        service.deploy(
            name,
            setup.base_model,
            calibration=setup.offline_history[-1],
        )
    subset = setup.eval_subset()
    generator = LoadGenerator(service, subset.test_features, names=names, seed=seed)
    with service:
        if arrival_rate is not None:
            report = generator.run_open_loop(
                num_requests,
                arrival_rate=arrival_rate,
                drift_history=drift,
                observe_every=observe_every,
            )
        else:
            report = generator.run(
                num_requests,
                drift_history=drift,
                observe_every=observe_every,
            )
        stats = service.stats()
    return ServeResult(
        report=report,
        stats=stats,
        device=setup.device,
        shards=shards,
        model_names=names,
    )
