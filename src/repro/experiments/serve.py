"""The ``serve`` harness: an end-to-end online-serving run with drift.

This is the serving counterpart of the figure/table harnesses: it prepares
the standard experiment setup (trained base model bound to a device),
deploys the model into an :class:`~repro.serving.InferenceService`, and
drives it with a :class:`~repro.serving.LoadGenerator` while feeding the
online calibration history to the service's watcher — micro-batching,
hot-swap adaptation, and telemetry all exercised in one run.  The CLI
(``python -m repro.experiments serve``) and the CI smoke test both call
:func:`run_serve`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.experiments.config import ExperimentScale
from repro.experiments.context import ExperimentSetup, prepare_experiment
from repro.serving import BatchPolicy, InferenceService, LoadGenerator, LoadReport

#: Default endpoint name used by the serve harness.
SERVE_MODEL_NAME = "qnn"


@dataclass
class ServeResult:
    """Everything a serve run produced."""

    report: LoadReport
    stats: dict
    device: str

    def summary(self) -> dict:
        """JSON-ready summary for the CLI payload."""
        return {
            "device": self.device,
            "load": self.report.as_dict(),
            "serving": self.stats,
        }


def run_serve(
    scale: Optional[ExperimentScale] = None,
    setup: Optional[ExperimentSetup] = None,
    device: Optional[str] = None,
    num_requests: int = 256,
    max_batch: int = 16,
    max_latency_ms: float = 2.0,
    observe_every: Optional[int] = None,
    seed: int = 0,
) -> ServeResult:
    """Serve a trained model under injected calibration drift.

    The model is deployed on the *last offline day*'s calibration; the
    online history then drips into the watcher every ``observe_every``
    requests (default: spread the whole online history evenly across the
    request stream), hot-swapping the deployment whenever drift crosses
    the adaptation boundary — while the load generator keeps requests in
    flight.
    """
    scale = scale or ExperimentScale()
    if setup is None:
        setup = prepare_experiment(
            "mnist4", scale=scale, device=device if device is not None else "belem"
        )
    drift = list(setup.online_history)
    if observe_every is None and drift:
        observe_every = max(1, num_requests // (len(drift) + 1))
    service = InferenceService(
        policy=BatchPolicy(max_batch=max_batch, max_latency_ms=max_latency_ms)
    )
    service.deploy(
        SERVE_MODEL_NAME,
        setup.base_model,
        calibration=setup.offline_history[-1],
    )
    subset = setup.eval_subset()
    generator = LoadGenerator(
        service, subset.test_features, names=[SERVE_MODEL_NAME], seed=seed
    )
    with service:
        report = generator.run(
            num_requests,
            drift_history=drift,
            observe_every=observe_every,
        )
    return ServeResult(report=report, stats=service.stats(), device=setup.device)
