"""Fig. 7: online training-time versus accuracy trade-off.

The figure compares the mean accuracy and the *normalized online optimization
time* of four strategies: compression every day, noise-aware training every
day, QuCAD without the offline stage, and QuCAD.  QuCAD's time is the unit
(1x); the paper reports roughly 146x and 110x for the two every-day
strategies because they optimize on all 146 days.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.baselines import make_method
from repro.experiments.config import ExperimentScale
from repro.experiments.context import ExperimentSetup, prepare_experiment
from repro.experiments.longitudinal import run_longitudinal
from repro.runtime import ExperimentRunner

#: Methods compared in Fig. 7, in presentation order.
FIG7_METHOD_NAMES: tuple[str, ...] = (
    "compression_everyday",
    "noise_aware_train_everyday",
    "qucad_without_offline",
    "qucad",
)


@dataclass
class Fig7Result:
    """Mean accuracy plus optimization cost per method."""

    mean_accuracy: dict[str, float]
    optimization_runs: dict[str, int]
    optimization_seconds: dict[str, float]
    reference_method: str = "qucad"

    def normalized_time(self, by: str = "runs") -> dict[str, float]:
        """Optimization cost normalized so the reference method equals 1.

        ``by`` selects the cost measure: ``"runs"`` (number of online
        optimizations, deterministic) or ``"seconds"`` (wall time).
        """
        source = self.optimization_runs if by == "runs" else self.optimization_seconds
        reference = max(source.get(self.reference_method, 1), 1)
        return {name: value / reference for name, value in source.items()}


def run_fig7(
    scale: Optional[ExperimentScale] = None,
    setup: Optional[ExperimentSetup] = None,
    dataset_name: str = "mnist4",
    methods: Sequence[str] = FIG7_METHOD_NAMES,
    runner: Optional[ExperimentRunner] = None,
) -> Fig7Result:
    """Reproduce the Fig. 7 efficiency comparison on 4-class MNIST."""
    scale = scale or ExperimentScale()
    if setup is None:
        setup = prepare_experiment(dataset_name, scale=scale)
    method_objects = [make_method(name) for name in methods]
    result = run_longitudinal(
        setup, method_objects, num_days=scale.online_days, runner=runner
    )
    mean_accuracy = {}
    runs = {}
    seconds = {}
    for run in result.runs:
        mean_accuracy[run.method_name] = run.mean_accuracy
        # Every-day methods optimize once per day by construction; QuCAD's
        # counters reflect how often the repository had to be extended.
        runs[run.method_name] = max(run.optimization_runs, 0)
        seconds[run.method_name] = run.optimization_seconds
    return Fig7Result(
        mean_accuracy=mean_accuracy,
        optimization_runs=runs,
        optimization_seconds=seconds,
    )
