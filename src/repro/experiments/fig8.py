"""Fig. 8: earthquake detection on a 7-qubit jakarta-like device.

The paper deploys the models produced by QuCAD on ibm-jakarta and measures
accuracy over five rounds (different calibration times), comparing against
the baseline and noise-aware training.  Real hardware is emulated here by a
jakarta-topology density-matrix simulation with its own fluctuating
calibration history and finite measurement shots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.baselines import make_method
from repro.experiments.config import ExperimentScale
from repro.experiments.context import ExperimentSetup, prepare_experiment
from repro.experiments.longitudinal import run_longitudinal
from repro.runtime import ExperimentRunner

#: The three approaches compared on hardware in Fig. 8.
FIG8_METHOD_NAMES: tuple[str, ...] = ("baseline", "noise_aware_train_once", "qucad")


@dataclass
class Fig8Result:
    """Per-round accuracy of each method on the jakarta-like device."""

    rounds: list[int]
    accuracy: dict[str, np.ndarray]

    def mean_accuracy(self) -> dict[str, float]:
        """Mean accuracy per method across the evaluation rounds."""
        return {name: float(series.mean()) for name, series in self.accuracy.items()}

    def qucad_gain(self) -> dict[str, float]:
        """QuCAD's average accuracy gain over each competitor."""
        means = self.mean_accuracy()
        qucad = means.get("qucad", float("nan"))
        return {
            name: qucad - value for name, value in means.items() if name != "qucad"
        }


def run_fig8(
    scale: Optional[ExperimentScale] = None,
    setup: Optional[ExperimentSetup] = None,
    num_rounds: int = 5,
    shots: int = 1024,
    methods: Sequence[str] = FIG8_METHOD_NAMES,
    runner: Optional[ExperimentRunner] = None,
) -> Fig8Result:
    """Reproduce the Fig. 8 hardware evaluation (emulated jakarta device)."""
    scale = scale or ExperimentScale()
    if setup is None:
        # The hardware evaluation uses a short history: a handful of rounds
        # on different days, preceded by an offline window for QuCAD.
        hardware_scale = scale.with_overrides(
            online_days=num_rounds,
            offline_days=max(scale.num_clusters * 3, 12),
            shots=shots,
        )
        setup = prepare_experiment("seismic", scale=hardware_scale, device="jakarta")
    method_objects = [make_method(name) for name in methods]
    result = run_longitudinal(
        setup, method_objects, num_days=num_rounds, shots=shots, runner=runner
    )
    accuracy = {run.method_name: run.daily_accuracy for run in result.runs}
    return Fig8Result(rounds=list(range(1, num_rounds + 1)), accuracy=accuracy)
