"""Fig. 2: year-long daily accuracy of two one-shot adaptation strategies.

(a) a QNN noise-aware-trained on day 1 and then left alone;
(b) the same QNN compressed on day 1 and then left alone.

The reproduction returns both daily accuracy series over the full history so
the collapse of the trained model (and the partial robustness of the
compressed one) can be inspected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core import (
    CompressionConfig,
    NoiseAwareCompressor,
    noise_aware_train,
)
from repro.experiments.config import ExperimentScale
from repro.experiments.context import ExperimentSetup, prepare_experiment
from repro.runtime import ExperimentRunner, default_runner
from repro.utils.rng import ensure_rng


@dataclass
class Fig2Result:
    """Daily accuracies of the two day-1 strategies."""

    dates: list[str]
    noise_aware_training_accuracy: np.ndarray
    compression_accuracy: np.ndarray

    def summary(self) -> dict[str, float]:
        """Mean and worst-day accuracy of both day-1 strategies."""
        return {
            "noise_aware_training_mean": float(self.noise_aware_training_accuracy.mean()),
            "compression_mean": float(self.compression_accuracy.mean()),
            "noise_aware_training_min": float(self.noise_aware_training_accuracy.min()),
            "compression_min": float(self.compression_accuracy.min()),
        }


def run_fig2(
    scale: Optional[ExperimentScale] = None,
    setup: Optional[ExperimentSetup] = None,
    dataset_name: str = "mnist4",
    num_days: Optional[int] = None,
    runner: Optional[ExperimentRunner] = None,
) -> Fig2Result:
    """Reproduce the Fig. 2 comparison on the online history.

    Both strategies adapt once on day 1; the year of per-day evaluations
    then runs through the runtime (one batched-and-parallel
    ``evaluate_days`` call per strategy, sharing one seed per day exactly
    like the historical per-day loop).
    """
    scale = scale or ExperimentScale()
    if setup is None:
        setup = prepare_experiment(dataset_name, scale=scale)
    history = setup.online_history
    if num_days is not None:
        history = history[:num_days]
    day_one = history[0]
    train_features, train_labels = setup.method_context().training_subset()

    # Strategy (a): noise-aware training on day 1.  ``copy()`` shares the
    # device binding immutably instead of aliasing the attribute by hand.
    trained = noise_aware_train(
        setup.base_model.copy(),
        train_features,
        train_labels,
        day_one,
        coupling=setup.coupling,
        config=scale.train_config(scale.retrain_epochs),
        update_model=False,
    )

    # Strategy (b): noise-aware compression on day 1.
    compressor = NoiseAwareCompressor(scale.compression)
    compressed = compressor.compress(
        setup.base_model, train_features, train_labels, calibration=day_one
    )

    eval_subset = setup.eval_subset()
    rng = ensure_rng(scale.seed)
    seeds = [int(rng.integers(0, 2**31 - 1)) for _ in range(len(history))]
    noise_models = setup.noise_models(history)
    dates = [snapshot.date for snapshot in history]
    runner = runner if runner is not None else default_runner()
    trained_accuracy = runner.evaluate_days(
        setup.base_model,
        eval_subset.test_features,
        eval_subset.test_labels,
        noise_models,
        parameter_sets=[trained.parameters] * len(history),
        shots=scale.shots,
        seeds=seeds,
        experiment="fig2/noise_aware_training",
        dates=dates,
    )
    compressed_accuracy = runner.evaluate_days(
        setup.base_model,
        eval_subset.test_features,
        eval_subset.test_labels,
        noise_models,
        parameter_sets=[compressed.parameters] * len(history),
        shots=scale.shots,
        seeds=seeds,
        experiment="fig2/compression",
        dates=dates,
    )
    return Fig2Result(
        dates=[date or "" for date in dates],
        noise_aware_training_accuracy=np.asarray(trained_accuracy),
        compression_accuracy=np.asarray(compressed_accuracy),
    )
