"""Fig. 2: year-long daily accuracy of two one-shot adaptation strategies.

(a) a QNN noise-aware-trained on day 1 and then left alone;
(b) the same QNN compressed on day 1 and then left alone.

The reproduction returns both daily accuracy series over the full history so
the collapse of the trained model (and the partial robustness of the
compressed one) can be inspected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core import (
    CompressionConfig,
    NoiseAwareCompressor,
    noise_aware_train,
)
from repro.experiments.config import ExperimentScale
from repro.experiments.context import ExperimentSetup, prepare_experiment
from repro.qnn.evaluation import evaluate_noisy
from repro.utils.rng import ensure_rng


@dataclass
class Fig2Result:
    """Daily accuracies of the two day-1 strategies."""

    dates: list[str]
    noise_aware_training_accuracy: np.ndarray
    compression_accuracy: np.ndarray

    def summary(self) -> dict[str, float]:
        """Mean and worst-day accuracy of both day-1 strategies."""
        return {
            "noise_aware_training_mean": float(self.noise_aware_training_accuracy.mean()),
            "compression_mean": float(self.compression_accuracy.mean()),
            "noise_aware_training_min": float(self.noise_aware_training_accuracy.min()),
            "compression_min": float(self.compression_accuracy.min()),
        }


def run_fig2(
    scale: Optional[ExperimentScale] = None,
    setup: Optional[ExperimentSetup] = None,
    dataset_name: str = "mnist4",
    num_days: Optional[int] = None,
) -> Fig2Result:
    """Reproduce the Fig. 2 comparison on the online history."""
    scale = scale or ExperimentScale()
    if setup is None:
        setup = prepare_experiment(dataset_name, scale=scale)
    history = setup.online_history
    if num_days is not None:
        history = history[:num_days]
    day_one = history[0]
    train_features, train_labels = setup.method_context().training_subset()

    # Strategy (a): noise-aware training on day 1.
    trained_model = setup.base_model.copy_with_parameters(setup.base_model.parameters)
    trained_model.transpiled = setup.base_model.transpiled
    trained = noise_aware_train(
        trained_model,
        train_features,
        train_labels,
        day_one,
        coupling=setup.coupling,
        config=scale.train_config(scale.retrain_epochs),
        update_model=False,
    )

    # Strategy (b): noise-aware compression on day 1.
    compressor = NoiseAwareCompressor(scale.compression)
    compressed = compressor.compress(
        setup.base_model, train_features, train_labels, calibration=day_one
    )

    eval_subset = setup.eval_subset()
    rng = ensure_rng(scale.seed)
    trained_accuracy = []
    compressed_accuracy = []
    for snapshot, noise_model in zip(history, setup.noise_models(history)):
        seed = int(rng.integers(0, 2**31 - 1))
        trained_accuracy.append(
            evaluate_noisy(
                setup.base_model,
                eval_subset.test_features,
                eval_subset.test_labels,
                noise_model,
                parameters=trained.parameters,
                shots=scale.shots,
                seed=seed,
            ).accuracy
        )
        compressed_accuracy.append(
            evaluate_noisy(
                setup.base_model,
                eval_subset.test_features,
                eval_subset.test_labels,
                noise_model,
                parameters=compressed.parameters,
                shots=scale.shots,
                seed=seed,
            ).accuracy
        )
    return Fig2Result(
        dates=[snapshot.date or "" for snapshot in history],
        noise_aware_training_accuracy=np.asarray(trained_accuracy),
        compression_accuracy=np.asarray(compressed_accuracy),
    )
