"""Fig. 4: heterogeneity of CNOT noise and why compression must be noise-aware.

(a) CNOT error per coupler on three representative days, showing that the
    noisiest coupler changes over time;
(b) a model compressed (noise-aware) on each of those days, evaluated on the
    following days — each compressed model is good near its own day and
    degrades when the noise regime shifts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core import NoiseAwareCompressor
from repro.experiments.config import ExperimentScale
from repro.experiments.context import ExperimentSetup, prepare_experiment
from repro.runtime import ExperimentRunner, default_runner
from repro.utils.rng import ensure_rng


@dataclass
class Fig4Result:
    """Per-coupler noise on the anchor days plus cross-day accuracy curves."""

    anchor_days: list[int]
    anchor_dates: list[str]
    cnot_noise: dict[str, np.ndarray]
    evaluation_days: list[int]
    accuracy: dict[str, np.ndarray]

    def noisiest_coupler_per_day(self) -> dict[str, str]:
        """Which coupler has the highest error on each anchor day."""
        couplers = list(self.cnot_noise)
        stacked = np.stack([self.cnot_noise[c] for c in couplers])
        result = {}
        for index, date in enumerate(self.anchor_dates):
            result[date] = couplers[int(stacked[:, index].argmax())]
        return result


def pick_anchor_days(setup: ExperimentSetup, count: int = 3) -> list[int]:
    """Choose representative days with distinct noisiest couplers.

    Days are ranked by total CNOT error and greedily selected so consecutive
    anchors prefer a different worst coupler (the heterogeneity the figure
    highlights).
    """
    history = setup.online_history
    matrix = history.to_matrix()
    names = history.feature_names()
    cx_columns = [i for i, name in enumerate(names) if name.startswith("cx_")]
    totals = matrix[:, cx_columns].sum(axis=1)
    order = np.argsort(-totals)
    anchors: list[int] = []
    seen_worst: set[int] = set()
    for day in order:
        worst = int(matrix[day, cx_columns].argmax())
        if worst not in seen_worst or len(anchors) == 0:
            anchors.append(int(day))
            seen_worst.add(worst)
        if len(anchors) >= count:
            break
    while len(anchors) < count and len(anchors) < len(history):
        candidate = int(order[len(anchors)])
        if candidate not in anchors:
            anchors.append(candidate)
    return sorted(anchors[:count])


def run_fig4(
    scale: Optional[ExperimentScale] = None,
    setup: Optional[ExperimentSetup] = None,
    dataset_name: str = "mnist4",
    anchor_days: Optional[Sequence[int]] = None,
    evaluation_days: Optional[Sequence[int]] = None,
    runner: Optional[ExperimentRunner] = None,
) -> Fig4Result:
    """Reproduce the Fig. 4 heterogeneity study.

    Each anchor's cross-day accuracy curve is one batched/parallel
    ``evaluate_days`` call through the runtime.
    """
    scale = scale or ExperimentScale()
    if setup is None:
        setup = prepare_experiment(dataset_name, scale=scale)
    history = setup.online_history
    if anchor_days is None:
        anchor_days = pick_anchor_days(setup)
    anchor_days = list(anchor_days)
    if evaluation_days is None:
        stride = max(1, len(history) // 12)
        evaluation_days = list(range(0, len(history), stride))
    evaluation_days = list(evaluation_days)

    names = history.feature_names()
    matrix = history.to_matrix()
    cnot_noise = {
        name: matrix[anchor_days, index]
        for index, name in enumerate(names)
        if name.startswith("cx_")
    }

    train_features, train_labels = setup.method_context().training_subset()
    compressor = NoiseAwareCompressor(scale.compression)
    eval_subset = setup.eval_subset()
    noise_models = setup.noise_models(history)
    rng = ensure_rng(scale.seed)

    runner = runner if runner is not None else default_runner()
    accuracy: dict[str, np.ndarray] = {}
    for anchor in anchor_days:
        result = compressor.compress(
            setup.base_model, train_features, train_labels, calibration=history[anchor]
        )
        seeds = [int(rng.integers(0, 2**31 - 1)) for _ in evaluation_days]
        series = runner.evaluate_days(
            setup.base_model,
            eval_subset.test_features,
            eval_subset.test_labels,
            [noise_models[day] for day in evaluation_days],
            parameter_sets=[result.parameters] * len(evaluation_days),
            shots=scale.shots,
            seeds=seeds,
            experiment=f"fig4/compressed_on_day_{anchor}",
            dates=[history[day].date for day in evaluation_days],
        )
        accuracy[f"compressed_on_day_{anchor}"] = np.asarray(series)

    return Fig4Result(
        anchor_days=anchor_days,
        anchor_dates=[history[d].date or str(d) for d in anchor_days],
        cnot_noise=cnot_noise,
        evaluation_days=evaluation_days,
        accuracy=accuracy,
    )
