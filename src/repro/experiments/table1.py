"""Table I: the main comparison of six methods on three datasets.

For each dataset the six methods of the paper (Baseline, Noise-aware Train
Once, Noise-aware Train Everyday, One-time Compression, QuCAD w/o offline,
QuCAD) are run through the longitudinal harness and summarized with the
paper's columns: mean accuracy (and delta vs. baseline), variance, and days
over 0.8 / 0.7 / 0.5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.baselines import TABLE1_METHODS, make_method
from repro.experiments.config import ExperimentScale
from repro.experiments.context import prepare_experiment
from repro.experiments.longitudinal import LongitudinalResult, run_longitudinal
from repro.experiments.reporting import format_table
from repro.runtime import ExperimentRunner

#: Datasets of Table I in presentation order.
TABLE1_DATASETS: tuple[str, ...] = ("mnist4", "iris", "seismic")

#: Method names in the paper's row order.
TABLE1_METHOD_NAMES: tuple[str, ...] = tuple(cls.name for cls in TABLE1_METHODS)


@dataclass
class Table1Result:
    """Longitudinal results for every dataset of Table I."""

    per_dataset: dict[str, LongitudinalResult] = field(default_factory=dict)

    def rows(self) -> list[dict]:
        """Flat list of summary rows across datasets."""
        rows = []
        for dataset_name, result in self.per_dataset.items():
            for row in result.summary_rows():
                row = dict(row)
                row["dataset"] = dataset_name
                rows.append(row)
        return rows

    def format(self) -> str:
        """Render the table in the paper's layout."""
        columns = [
            ("dataset", "Dataset"),
            ("method", "Method"),
            ("mean_accuracy", "MeanAcc"),
            ("mean_accuracy_vs_baseline", "vsBase"),
            ("variance", "Var"),
            ("days_over_0.8", ">0.8"),
            ("days_over_0.7", ">0.7"),
            ("days_over_0.5", ">0.5"),
            ("optimization_runs", "OptRuns"),
        ]
        return format_table(self.rows(), columns)


def run_table1(
    scale: Optional[ExperimentScale] = None,
    datasets: Sequence[str] = TABLE1_DATASETS,
    methods: Sequence[str] = TABLE1_METHOD_NAMES,
    device: str = "belem",
    runner: Optional[ExperimentRunner] = None,
) -> Table1Result:
    """Reproduce Table I at the requested scale."""
    scale = scale or ExperimentScale()
    result = Table1Result()
    for dataset_name in datasets:
        setup = prepare_experiment(dataset_name, scale=scale, device=device)
        method_objects = [make_method(name) for name in methods]
        result.per_dataset[dataset_name] = run_longitudinal(
            setup, method_objects, num_days=scale.online_days, runner=runner
        )
    return result
