"""Shared configuration for the experiment harnesses.

Every experiment function accepts an :class:`ExperimentScale` so the same
code path can run at paper scale (389 days, full test sets) or at the
scaled-down settings used by the benchmark suite.  The paper-scale defaults
are exposed as :data:`PAPER_SCALE`; :data:`BENCH_SCALE` keeps a full
benchmark run within a few minutes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.admm import CompressionConfig
from repro.qnn.trainer import TrainConfig


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs that trade fidelity for runtime.

    Attributes
    ----------
    offline_days / online_days:
        Length of the calibration history used for the offline and online
        stages (the paper uses 243 / 146).
    dataset_samples:
        Total samples generated for the synthetic datasets.
    train_samples / eval_samples:
        Subset sizes used for (re)training / per-day accuracy evaluation.
    base_train_epochs:
        Epochs used to train the base (noise-free) model.
    retrain_epochs:
        Epochs used by per-day noise-aware retraining baselines.
    shots:
        Measurement shots per evaluation (``None`` = exact expectations).
    num_clusters:
        Offline repository size ``K`` (the paper uses 6).
    seed:
        Master seed for the noise history, datasets, and training.
    """

    offline_days: int = 243
    online_days: int = 146
    dataset_samples: int = 1000
    train_samples: int = 192
    eval_samples: int = 96
    base_train_epochs: int = 30
    retrain_epochs: int = 6
    shots: Optional[int] = 1024
    num_clusters: int = 6
    seed: int = 2021
    compression: CompressionConfig = field(
        default_factory=lambda: CompressionConfig(
            admm_iterations=3, theta_epochs=2, finetune_epochs=4, target_fraction=0.6
        )
    )

    def train_config(self, epochs: Optional[int] = None) -> TrainConfig:
        """A :class:`TrainConfig` derived from this scale."""
        return TrainConfig(
            epochs=epochs if epochs is not None else self.base_train_epochs,
            learning_rate=0.08,
            batch_size=32,
            seed=self.seed,
        )

    def with_overrides(self, **kwargs) -> "ExperimentScale":
        """A copy with some fields replaced."""
        return replace(self, **kwargs)


#: The paper's full experimental scale (hours of runtime on a laptop).
PAPER_SCALE = ExperimentScale()

#: Reduced scale used by the benchmark suite (minutes of runtime).
BENCH_SCALE = ExperimentScale(
    offline_days=24,
    online_days=10,
    dataset_samples=260,
    train_samples=96,
    eval_samples=40,
    base_train_epochs=12,
    retrain_epochs=2,
    shots=1024,
    num_clusters=3,
    seed=2021,
    compression=CompressionConfig(
        admm_iterations=2, theta_epochs=1, finetune_epochs=2, target_fraction=0.6
    ),
)

#: Even smaller scale for unit/integration tests (seconds of runtime).
TEST_SCALE = ExperimentScale(
    offline_days=8,
    online_days=4,
    dataset_samples=120,
    train_samples=48,
    eval_samples=24,
    base_train_epochs=4,
    retrain_epochs=2,
    shots=512,
    num_clusters=2,
    seed=7,
    compression=CompressionConfig(
        admm_iterations=1, theta_epochs=1, finetune_epochs=1, target_fraction=0.5
    ),
)

#: Dataset-specific model settings from the paper's experimental setup.
DATASET_MODEL_SETTINGS: dict[str, dict] = {
    "mnist4": {"num_qubits": 4, "num_features": 16, "num_classes": 4, "repeats": 2},
    "seismic": {"num_qubits": 4, "num_features": 16, "num_classes": 2, "repeats": 2},
    "iris": {"num_qubits": 4, "num_features": 4, "num_classes": 3, "repeats": 3},
}
