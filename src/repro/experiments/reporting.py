"""Plain-text rendering of experiment results in the paper's table layouts."""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def format_table(rows: Sequence[Mapping], columns: Sequence[tuple[str, str]]) -> str:
    """Render ``rows`` as a fixed-width text table.

    ``columns`` is a sequence of ``(key, header)`` pairs; numeric values are
    formatted compactly and missing keys render as ``-``.
    """
    def _fmt(value) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:.4f}" if abs(value) < 100 else f"{value:.1f}"
        return str(value)

    table = [[header for _, header in columns]]
    for row in rows:
        table.append([_fmt(row.get(key)) for key, _ in columns])
    widths = [max(len(line[i]) for line in table) for i in range(len(columns))]
    lines = []
    for index, line in enumerate(table):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)))
        if index == 0:
            lines.append("  ".join("-" * widths[i] for i in range(len(columns))))
    return "\n".join(lines)


def format_series(name: str, xs: Iterable, ys: Iterable[float]) -> str:
    """Render an (x, y) series as aligned text — the textual stand-in for a figure."""
    lines = [name]
    for x, y in zip(xs, ys):
        lines.append(f"  {str(x):>12}  {y:.4f}")
    return "\n".join(lines)


def percent(value: float) -> str:
    """Format a fraction as a percentage with two decimals (paper style)."""
    return f"{100.0 * value:.2f}%"
