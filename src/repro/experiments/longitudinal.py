"""The 146-day longitudinal evaluation harness behind Table I and Fig. 7.

For every adaptation method and every online day the harness asks the method
for its parameters, evaluates them under that day's noise model, and collects
the per-day accuracy series.  Summaries match the columns of Table I: mean
accuracy, variance, and the number of days above 0.8 / 0.7 / 0.5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.baselines import AdaptationMethod
from repro.experiments.context import ExperimentSetup
from repro.runtime import ExperimentRunner, default_runner
from repro.utils.rng import ensure_rng

#: Accuracy thresholds reported in Table I.
TABLE1_THRESHOLDS: tuple[float, ...] = (0.8, 0.7, 0.5)


@dataclass
class MethodRun:
    """Per-day accuracy series and cost counters for one method."""

    method_name: str
    daily_accuracy: np.ndarray
    optimization_runs: int
    optimization_seconds: float

    @property
    def mean_accuracy(self) -> float:
        """Mean daily accuracy over the evaluated days."""
        return float(self.daily_accuracy.mean()) if self.daily_accuracy.size else float("nan")

    @property
    def variance(self) -> float:
        """Variance of the daily accuracy (the stability column of Table I)."""
        return float(self.daily_accuracy.var()) if self.daily_accuracy.size else float("nan")

    def days_over(self, threshold: float) -> int:
        """Number of days with accuracy strictly above ``threshold``."""
        return int(np.sum(self.daily_accuracy > threshold))

    def summary(self) -> dict:
        """The Table I row for this method."""
        row = {
            "method": self.method_name,
            "mean_accuracy": self.mean_accuracy,
            "variance": self.variance,
            "optimization_runs": self.optimization_runs,
            "optimization_seconds": self.optimization_seconds,
        }
        for threshold in TABLE1_THRESHOLDS:
            row[f"days_over_{threshold:.1f}"] = self.days_over(threshold)
        return row


@dataclass
class LongitudinalResult:
    """All method runs for one dataset."""

    dataset_name: str
    num_days: int
    runs: list[MethodRun] = field(default_factory=list)

    def run_for(self, method_name: str) -> MethodRun:
        """The recorded run for ``method_name``."""
        for run in self.runs:
            if run.method_name == method_name:
                return run
        raise KeyError(f"no run recorded for method {method_name!r}")

    def summary_rows(self, baseline_name: str = "baseline") -> list[dict]:
        """Table I rows including the "vs. baseline" delta columns."""
        try:
            baseline = self.run_for(baseline_name)
        except KeyError:
            baseline = None
        rows = []
        for run in self.runs:
            row = run.summary()
            if baseline is not None:
                row["mean_accuracy_vs_baseline"] = run.mean_accuracy - baseline.mean_accuracy
                for threshold in TABLE1_THRESHOLDS:
                    key = f"days_over_{threshold:.1f}"
                    row[f"{key}_vs_baseline"] = row[key] - baseline.summary()[key]
            rows.append(row)
        return rows


def run_longitudinal(
    setup: ExperimentSetup,
    methods: Sequence[AdaptationMethod],
    num_days: Optional[int] = None,
    shots: Optional[int] = None,
    runner: Optional[ExperimentRunner] = None,
) -> LongitudinalResult:
    """Evaluate every method across the online calibration history.

    Each method's *adaptation* runs sequentially (the repository methods
    carry state from day to day), but the per-day *evaluations* are handed
    to the runtime in bulk: one :meth:`ExperimentRunner.evaluate_days` call
    per method, which chunks the days into vectorised multi-binding backend
    calls and fans the chunks out over the runner's worker pool.  Seeds are
    drawn in the same (method, day) order as the historical per-day loop, so
    results are bit-identical to sequential evaluation.

    Parameters
    ----------
    setup:
        Prepared experiment (dataset, device, histories, trained base model).
    methods:
        Instantiated adaptation methods; ``prepare`` is called here.
    num_days:
        Optionally restrict to the first ``num_days`` online days.
    shots:
        Measurement shots per evaluation; defaults to the scale's setting.
    runner:
        Evaluation runner; defaults to :func:`repro.runtime.default_runner`
        (configurable via ``REPRO_RUNNER_MODE`` / ``REPRO_RUNNER_WORKERS``).
    """
    online = setup.online_history
    if num_days is not None:
        online = online[:num_days]
    noise_models = setup.noise_models(online)
    eval_subset = setup.eval_subset()
    shots = shots if shots is not None else setup.scale.shots
    context = setup.method_context()
    rng = ensure_rng(setup.scale.seed)
    runner = runner if runner is not None else default_runner()
    dates = [snapshot.date for snapshot in online]

    result = LongitudinalResult(dataset_name=setup.dataset_name, num_days=len(online))
    for method in methods:
        method.prepare(context)
        parameters_per_day = []
        seeds = []
        for snapshot in online:
            parameters_per_day.append(method.parameters_for_day(snapshot))
            seeds.append(int(rng.integers(0, 2**31 - 1)))
        accuracies = runner.evaluate_days(
            setup.base_model,
            eval_subset.test_features,
            eval_subset.test_labels,
            noise_models,
            parameter_sets=parameters_per_day,
            shots=shots,
            seeds=seeds,
            experiment=f"longitudinal/{setup.dataset_name}/{method.name}",
            dates=dates,
        )
        result.runs.append(
            MethodRun(
                method_name=method.name,
                daily_accuracy=np.asarray(accuracies),
                optimization_runs=method.optimization_runs,
                optimization_seconds=method.optimization_seconds,
            )
        )
    return result
