"""Reproduction harnesses for every table and figure of the paper."""

from repro.experiments.config import (
    BENCH_SCALE,
    DATASET_MODEL_SETTINGS,
    ExperimentScale,
    PAPER_SCALE,
    TEST_SCALE,
)
from repro.experiments.context import (
    ExperimentSetup,
    build_dataset,
    build_model_for_dataset,
    prepare_experiment,
    train_base_model_for,
)
from repro.experiments.longitudinal import (
    LongitudinalResult,
    MethodRun,
    TABLE1_THRESHOLDS,
    run_longitudinal,
)
from repro.experiments.fig1 import Fig1Result, run_fig1
from repro.experiments.fig2 import Fig2Result, run_fig2
from repro.experiments.fig3 import Fig3Result, run_fig3
from repro.experiments.fig4 import Fig4Result, pick_anchor_days, run_fig4
from repro.experiments.fig7 import FIG7_METHOD_NAMES, Fig7Result, run_fig7
from repro.experiments.fig8 import FIG8_METHOD_NAMES, Fig8Result, run_fig8
from repro.experiments.fig9 import Fig9Result, pick_representative_days, run_fig9
from repro.experiments.table1 import (
    TABLE1_DATASETS,
    TABLE1_METHOD_NAMES,
    Table1Result,
    run_table1,
)
from repro.experiments.serve import SERVE_MODEL_NAME, ServeResult, run_serve
from repro.experiments.fleet import (
    DEFAULT_FLEET_DEVICES,
    DEFAULT_FLEET_SCENARIOS,
    run_fleet,
)
from repro.experiments.table2 import ClusterEvaluation, Table2Result, run_table2
from repro.experiments.reporting import format_series, format_table, percent
from repro.experiments.cli import EXPERIMENTS, SCALES, main as cli_main

__all__ = [
    "ExperimentScale",
    "PAPER_SCALE",
    "BENCH_SCALE",
    "TEST_SCALE",
    "DATASET_MODEL_SETTINGS",
    "ExperimentSetup",
    "prepare_experiment",
    "build_dataset",
    "build_model_for_dataset",
    "train_base_model_for",
    "run_longitudinal",
    "LongitudinalResult",
    "MethodRun",
    "TABLE1_THRESHOLDS",
    "run_fig1",
    "Fig1Result",
    "run_fig2",
    "Fig2Result",
    "run_fig3",
    "Fig3Result",
    "run_fig4",
    "Fig4Result",
    "pick_anchor_days",
    "run_fig7",
    "Fig7Result",
    "FIG7_METHOD_NAMES",
    "run_fig8",
    "Fig8Result",
    "FIG8_METHOD_NAMES",
    "run_fig9",
    "Fig9Result",
    "pick_representative_days",
    "run_table1",
    "Table1Result",
    "TABLE1_DATASETS",
    "TABLE1_METHOD_NAMES",
    "run_table2",
    "Table2Result",
    "ClusterEvaluation",
    "run_serve",
    "ServeResult",
    "SERVE_MODEL_NAME",
    "run_fleet",
    "DEFAULT_FLEET_DEVICES",
    "DEFAULT_FLEET_SCENARIOS",
    "format_table",
    "format_series",
    "percent",
    "EXPERIMENTS",
    "SCALES",
    "cli_main",
]
