"""Command-line entry point: ``python -m repro.experiments <name> ...``.

One front door for every reproduction harness::

    python -m repro.experiments fig2 --scale bench
    python -m repro.experiments table1 --scale test --json out.json
    python -m repro.experiments fig7 --runner-mode process --workers 8 \
        --records runs.jsonl
    python -m repro.experiments longitudinal --device ring_5
    python -m repro.experiments serve --requests 256 --max-batch 16
    python -m repro.experiments serve --shards 4 --models 4 --arrival-rate 200
    python -m repro.experiments fleet --devices belem,ring_5 --scenarios seasonal,jump
    python -m repro.experiments --list-devices
    python -m repro.experiments --list-scenarios

The CLI wires the chosen :class:`~repro.experiments.config.ExperimentScale`
and a configured :class:`~repro.runtime.ExperimentRunner` (mode, workers,
JSONL run records, persistent evaluation cache) into the harness, prints a
human-readable summary, and can dump the machine-readable summary as JSON.

``fig1`` (pure calibration statistics) and ``fig3`` (a direct
``execute_batch`` grid sweep) perform no per-day evaluations, so the
runner flags have no effect on them — the printed ``runner`` block shows
``days_evaluated: 0`` for those harnesses.  The same applies to ``fleet``:
cells build private runners and pass managers, so the top-level ``runner``
/ ``compiler`` blocks stay idle and the real counters live per cell in
``summary.cells[*].runner`` / ``summary.cells[*].compiler``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Callable, Optional

import numpy as np

from repro.experiments.config import (
    BENCH_SCALE,
    PAPER_SCALE,
    TEST_SCALE,
    ExperimentScale,
)
from repro.runtime import RUNNER_MODES, ExperimentRunner

#: Named scales selectable via ``--scale``.
SCALES: dict[str, ExperimentScale] = {
    "paper": PAPER_SCALE,
    "bench": BENCH_SCALE,
    "test": TEST_SCALE,
}


def _jsonable(value):
    """Best-effort conversion of result payloads to JSON-compatible types."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    return value


def _device_setup(scale, device, dataset_name: str = "mnist4"):
    """A prepared :class:`ExperimentSetup`, or ``None`` for harness defaults."""
    if device is None:
        return None
    from repro.experiments.context import prepare_experiment

    return prepare_experiment(dataset_name, scale=scale, device=device)


def _reject_device(name: str, device) -> None:
    """Fail fast for harnesses pinned to one device by construction."""
    if device is not None:
        raise SystemExit(
            f"experiment {name!r} runs on a fixed device and does not accept "
            "--device"
        )


def _run_fig1(scale, runner, device=None, options=None):
    from repro.experiments.fig1 import run_fig1

    _reject_device("fig1", device)
    result = run_fig1(scale)
    return result, {"fluctuation_summary": result.fluctuation_summary()}


def _run_fig2(scale, runner, device=None, options=None):
    from repro.experiments.fig2 import run_fig2

    result = run_fig2(scale, setup=_device_setup(scale, device), runner=runner)
    return result, result.summary()


def _run_fig3(scale, runner, device=None, options=None):
    from repro.experiments.fig3 import run_fig3

    _reject_device("fig3", device)
    result = run_fig3(scale)
    return result, {"breakpoint_gain": result.breakpoint_gain()}


def _run_fig4(scale, runner, device=None, options=None):
    from repro.experiments.fig4 import run_fig4

    result = run_fig4(scale, setup=_device_setup(scale, device), runner=runner)
    return result, {
        "noisiest_coupler_per_day": result.noisiest_coupler_per_day(),
        "accuracy": {name: series for name, series in result.accuracy.items()},
    }


def _run_fig7(scale, runner, device=None, options=None):
    from repro.experiments.fig7 import run_fig7

    result = run_fig7(scale, setup=_device_setup(scale, device), runner=runner)
    return result, {
        "mean_accuracy": result.mean_accuracy,
        "normalized_time_runs": result.normalized_time("runs"),
    }


def _run_fig8(scale, runner, device=None, options=None):
    from repro.experiments.fig8 import run_fig8

    _reject_device("fig8", device)
    result = run_fig8(scale, runner=runner)
    return result, {
        "mean_accuracy": result.mean_accuracy(),
        "qucad_gain": result.qucad_gain(),
    }


def _run_fig9(scale, runner, device=None, options=None):
    from repro.experiments.fig9 import run_fig9

    result = run_fig9(scale, setup=_device_setup(scale, device), runner=runner)
    return result, {
        "upper_bound_gap": result.upper_bound_gap(),
        "noise_aware_gain": result.noise_aware_gain(),
    }


def _run_table1(scale, runner, device=None, options=None):
    from repro.experiments.table1 import run_table1

    result = run_table1(
        scale, device=device if device is not None else "belem", runner=runner
    )
    return result, {"rows": result.rows(), "formatted": result.format()}


def _run_table2(scale, runner, device=None, options=None):
    from repro.experiments.table2 import run_table2

    result = run_table2(scale, setup=_device_setup(scale, device), runner=runner)
    return result, {"rows": result.rows(), "weighted_gain": result.weighted_gain}


def _run_longitudinal(scale, runner, device=None, options=None):
    from repro.core.baselines import make_method
    from repro.experiments.context import prepare_experiment
    from repro.experiments.longitudinal import run_longitudinal

    setup = prepare_experiment(
        "mnist4", scale=scale, device=device if device is not None else "belem"
    )
    methods = [make_method("baseline"), make_method("qucad")]
    result = run_longitudinal(setup, methods, runner=runner)
    return result, {"rows": result.summary_rows()}


def _run_serve(scale, runner, device=None, options=None):
    from repro.experiments.serve import run_serve

    result = run_serve(
        scale,
        device=device,
        num_requests=getattr(options, "requests", 256),
        max_batch=getattr(options, "max_batch", 16),
        max_latency_ms=getattr(options, "max_latency_ms", 2.0),
        observe_every=getattr(options, "observe_every", None),
        shards=getattr(options, "shards", 1),
        num_models=getattr(options, "models", 1),
        arrival_rate=getattr(options, "arrival_rate", None),
    )
    return result, result.summary()


def _run_fleet(scale, runner, device=None, options=None):
    from repro.experiments.fleet import run_fleet

    _reject_device("fleet", device)  # the fleet grid uses --devices instead
    result = run_fleet(
        scale,
        devices=getattr(options, "devices", None),
        scenarios=getattr(options, "scenarios", None),
        cell_workers=getattr(options, "cell_workers", None),
        record_log=getattr(options, "records", None),
        runner_mode=getattr(options, "runner_mode", None) or "serial",
        store=getattr(options, "store", None),
        run_id=getattr(options, "run_id", None),
        resume=getattr(options, "resume", None),
    )
    summary = result.as_dict()
    summary["formatted"] = result.format()
    return result, summary


#: Experiment registry: name → harness adapter returning (result, summary).
EXPERIMENTS: dict[str, Callable] = {
    "fig1": _run_fig1,
    "fig2": _run_fig2,
    "fig3": _run_fig3,
    "fig4": _run_fig4,
    "fig7": _run_fig7,
    "fig8": _run_fig8,
    "fig9": _run_fig9,
    "table1": _run_table1,
    "table2": _run_table2,
    "longitudinal": _run_longitudinal,
    "serve": _run_serve,
    "fleet": _run_fleet,
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run one of the paper's reproduction harnesses.",
    )
    parser.add_argument(
        "name",
        choices=sorted(EXPERIMENTS),
        nargs="?",
        help="experiment to run",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="bench",
        help="experiment scale (default: bench)",
    )
    parser.add_argument(
        "--device",
        default=None,
        help="device-library target for device-flexible harnesses "
        "(default: each harness's paper device; see --list-devices)",
    )
    parser.add_argument(
        "--list-devices",
        action="store_true",
        help="print every selectable device name and exit",
    )
    parser.add_argument(
        "--list-scenarios",
        action="store_true",
        help="print every selectable drift-scenario name and exit",
    )
    parser.add_argument(
        "--runner-mode",
        choices=RUNNER_MODES,
        default=None,
        help="evaluation fan-out mode (default: thread; fleet cells default "
        "to serial); 'pool' keeps a persistent process pool of warm workers "
        "across evaluate_days calls",
    )
    parser.add_argument(
        "--workers", type=int, default=None, help="worker-pool width"
    )
    parser.add_argument(
        "--chunk-days",
        type=int,
        default=16,
        help="days per vectorised evaluation chunk (default: 16)",
    )
    parser.add_argument(
        "--records", default=None, help="append per-day run records to this JSONL file"
    )
    parser.add_argument(
        "--cache", default=None, help="persist the evaluation cache to this JSONL file"
    )
    parser.add_argument(
        "--json", dest="json_path", default=None, help="write the summary as JSON here"
    )
    parser.add_argument(
        "--dtype",
        choices=["float64", "float32"],
        default=None,
        help="simulation precision tier: float64 (bit-exact default) or "
        "float32 (fast tier; complex64 fused matrices and walks)",
    )
    parser.add_argument(
        "--kernel",
        default=None,
        help="statevector kernel suite (numpy is always available; numba "
        "auto-registers when importable)",
    )
    parser.add_argument(
        "--fusion-width",
        type=int,
        default=None,
        help="max fused-block width; 3+ folds diagonal/monomial gates "
        "across fast-path boundaries (default: 2)",
    )
    serving = parser.add_argument_group("serving (serve experiment only)")
    serving.add_argument(
        "--requests",
        type=int,
        default=256,
        help="number of load-generator requests (default: 256)",
    )
    serving.add_argument(
        "--max-batch",
        type=int,
        default=16,
        help="micro-batch size cap per flush (default: 16)",
    )
    serving.add_argument(
        "--max-latency-ms",
        type=float,
        default=2.0,
        help="max queueing latency before a partial flush (default: 2.0)",
    )
    serving.add_argument(
        "--observe-every",
        type=int,
        default=None,
        help="feed one drift snapshot to the watcher every N requests "
        "(default: spread the online history across the stream)",
    )
    serving.add_argument(
        "--shards",
        type=int,
        default=1,
        help="serve through this many shard worker processes with "
        "consistent-hash routing (default: 1 = single-process service)",
    )
    serving.add_argument(
        "--models",
        type=int,
        default=1,
        help="deploy the trained model under this many endpoint names "
        "(qnn-0..N-1) so load spreads across shards (default: 1)",
    )
    serving.add_argument(
        "--arrival-rate",
        type=float,
        default=None,
        help="open-loop Poisson arrival rate in requests/second "
        "(default: closed-loop — submit as fast as responses allow)",
    )
    fleet = parser.add_argument_group("fleet (fleet experiment only)")
    fleet.add_argument(
        "--devices",
        default=None,
        help="comma-separated device names for the fleet grid "
        "(default: belem,ring_5; see --list-devices)",
    )
    fleet.add_argument(
        "--scenarios",
        default=None,
        help="comma-separated drift-scenario names for the fleet grid "
        "(default: seasonal,jump; see --list-scenarios)",
    )
    fleet.add_argument(
        "--cell-workers",
        type=int,
        default=None,
        help="concurrent (device x scenario) cells (default: min(4, cells))",
    )
    fleet.add_argument(
        "--store",
        default=None,
        help="durable SQLite run store; every completed cell commits here, "
        "making the run resumable after a crash",
    )
    fleet.add_argument(
        "--run-id",
        default=None,
        help="run identity inside the store (default: a deterministic id "
        "derived from the grid/scale/seed configuration)",
    )
    fleet.add_argument(
        "--resume",
        default=None,
        metavar="RUN_ID",
        help="resume a killed run: cells already completed in --store are "
        "loaded back instead of re-executed",
    )
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    """Run the selected experiment; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_devices:
        from repro.transpiler import get_device_coupling, list_devices

        for name in list_devices():
            coupling = get_device_coupling(name)
            print(f"{name}: {coupling.num_qubits} qubits, {len(coupling.edges)} couplers")
        return 0
    if args.list_scenarios:
        from repro.calibration.scenarios import get_scenario, list_scenarios

        for name in list_scenarios():
            print(f"{name}: {type(get_scenario(name)).__doc__.splitlines()[0]}")
        return 0
    if args.name is None:
        parser.error(
            "an experiment name is required (or pass --list-devices / --list-scenarios)"
        )
    # Mirror the _reject_device convention: an inapplicable knob is an
    # error, never a silent no-op.  The serving flags only drive `serve`;
    # the fleet flags only drive `fleet`; the runner flags drive every
    # evaluation harness — except `serve` (the service owns its own
    # dispatch thread and caches) and `fleet` (cells build private
    # runners; only --runner-mode and the shared --records attribution
    # log reach them).
    serving_options = (
        "requests",
        "max_batch",
        "max_latency_ms",
        "observe_every",
        "shards",
        "models",
        "arrival_rate",
    )
    fleet_options = ("devices", "scenarios", "cell_workers", "store", "run_id", "resume")
    runner_options = ("runner_mode", "workers", "chunk_days", "records", "cache")
    if args.name == "serve":
        inapplicable = runner_options + fleet_options
    elif args.name == "fleet":
        inapplicable = serving_options + ("workers", "chunk_days", "cache")
    else:
        inapplicable = serving_options + fleet_options
    for option in inapplicable:
        if getattr(args, option) != parser.get_default(option):
            parser.error(
                f"--{option.replace('_', '-')} does not apply to "
                f"experiment {args.name!r}"
            )
    if args.dtype is not None or args.kernel is not None or args.fusion_width is not None:
        # Publish the fast-tier knobs through the environment *and* rebuild
        # the default engine: the env vars make spawned pool workers and
        # shard children inherit the same tier, while the rebuilt default
        # engine serves every in-process simulation.
        from repro.simulator import SimulationEngine, set_default_engine
        from repro.simulator.engine import (
            DTYPE_ENV_VAR,
            FUSION_WIDTH_ENV_VAR,
            KERNEL_ENV_VAR,
        )

        if args.dtype is not None:
            os.environ[DTYPE_ENV_VAR] = args.dtype
        if args.kernel is not None:
            os.environ[KERNEL_ENV_VAR] = args.kernel
        if args.fusion_width is not None:
            os.environ[FUSION_WIDTH_ENV_VAR] = str(args.fusion_width)
        set_default_engine(SimulationEngine())
    scale = SCALES[args.scale]
    runner = ExperimentRunner(
        mode=args.runner_mode or "thread",
        max_workers=args.workers,
        chunk_days=args.chunk_days,
        cache=args.cache,
        record_log=args.records,
    )
    from repro.transpiler import default_pass_manager

    started = time.perf_counter()
    try:
        _, summary = EXPERIMENTS[args.name](scale, runner, args.device, options=args)
    finally:
        runner.close()
    elapsed = time.perf_counter() - started
    payload = {
        "experiment": args.name,
        "scale": args.scale,
        "device": args.device,
        "elapsed_seconds": elapsed,
        "runner": {
            "mode": runner.mode,
            "days_evaluated": runner.stats.days_evaluated,
            "cache_hits": runner.stats.cache_hits,
            "chunks": runner.stats.chunks,
            "cache": None if runner.cache is None else runner.cache.stats(),
        },
        "compiler": default_pass_manager().stats.as_dict(),
        "summary": _jsonable(summary),
    }
    formatted = payload["summary"].pop("formatted", None) if isinstance(payload["summary"], dict) else None
    print(json.dumps(payload, indent=2))
    if formatted:
        print(formatted)
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
