"""Shared setup for the experiment harnesses.

Most experiments need the same ingredients: a dataset, a device, a synthetic
calibration history split into offline/online parts, and a base QNN trained
in a noise-free environment.  :func:`prepare_experiment` builds all of that
from an :class:`~repro.experiments.config.ExperimentScale` in one call so
the per-table / per-figure modules stay small.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.calibration import (
    CalibrationHistory,
    generate_belem_history,
    generate_device_history,
    generate_jakarta_history,
)
from repro.core import MethodContext, train_noise_free
from repro.core.framework import QuCADConfig
from repro.datasets import Dataset, load_dataset
from repro.experiments.config import DATASET_MODEL_SETTINGS, ExperimentScale
from repro.exceptions import ReproError
from repro.qnn import QNNModel
from repro.qnn.trainer import TrainConfig
from repro.simulator import NoiseModel
from repro.transpiler import CouplingMap, get_device_coupling, list_devices


@dataclass
class ExperimentSetup:
    """Everything the per-experiment harnesses consume."""

    dataset_name: str
    dataset: Dataset
    coupling: CouplingMap
    full_history: CalibrationHistory
    offline_history: CalibrationHistory
    online_history: CalibrationHistory
    base_model: QNNModel
    scale: ExperimentScale
    device: str = "belem"

    def noise_models(self, history: Optional[CalibrationHistory] = None) -> list[NoiseModel]:
        """Noise models for every day of ``history`` (default: online days)."""
        history = history if history is not None else self.online_history
        return [NoiseModel.from_calibration(snapshot) for snapshot in history]

    def eval_subset(self) -> Dataset:
        """The reduced test set used for per-day evaluation."""
        return self.dataset.subsample(num_test=self.scale.eval_samples, seed=self.scale.seed)

    def method_context(self) -> MethodContext:
        """A :class:`MethodContext` for the Table I adaptation methods."""
        return MethodContext(
            base_model=self.base_model,
            dataset=self.dataset,
            coupling=self.coupling,
            offline_history=self.offline_history,
            compression_config=self.scale.compression,
            retrain_config=self.scale.train_config(self.scale.retrain_epochs),
            qucad_config=QuCADConfig(
                compression=self.scale.compression,
                num_clusters=self.scale.num_clusters,
                eval_test_samples=self.scale.eval_samples,
                train_samples=self.scale.train_samples,
                seed=self.scale.seed,
            ),
            train_samples=self.scale.train_samples,
            seed=self.scale.seed,
        )


def build_dataset(name: str, scale: ExperimentScale) -> Dataset:
    """Load a dataset at the requested scale."""
    if name == "iris":
        # Iris is naturally small (150 samples); the scale only caps it.
        return load_dataset("iris", seed=scale.seed)
    return load_dataset(name, num_samples=scale.dataset_samples, seed=scale.seed)


def build_model_for_dataset(name: str, dataset: Dataset, scale: ExperimentScale) -> QNNModel:
    """Create the paper's model configuration for ``name`` (untrained)."""
    if name not in DATASET_MODEL_SETTINGS:
        raise ReproError(f"no model settings registered for dataset {name!r}")
    settings = DATASET_MODEL_SETTINGS[name]
    return QNNModel.create(
        num_qubits=settings["num_qubits"],
        num_features=settings["num_features"],
        num_classes=settings["num_classes"],
        repeats=settings["repeats"],
        seed=scale.seed,
        name=f"{name}_qnn",
    )


def train_base_model_for(model: QNNModel, dataset: Dataset, scale: ExperimentScale) -> None:
    """The canonical noise-free base-model training step (in place).

    Single source of truth for the subset size, seed, and train config —
    :func:`prepare_experiment` and the fleet harness's shared-template
    training both call it, so their parameters can never silently diverge.
    """
    subset = dataset.subsample(num_train=max(scale.train_samples * 2, 64), seed=scale.seed)
    train_noise_free(
        model,
        subset.train_features,
        subset.train_labels,
        scale.train_config(),
    )


def prepare_experiment(
    dataset_name: str = "mnist4",
    scale: Optional[ExperimentScale] = None,
    device: str = "belem",
    train_base_model: bool = True,
    history: Optional[CalibrationHistory] = None,
    pass_manager=None,
) -> ExperimentSetup:
    """Build the standard experimental setup for one dataset.

    The base model is trained in a noise-free environment (the ``M`` of the
    problem statement) and bound to the device using the first offline day's
    calibration for its noise-aware layout.  ``device`` accepts the paper's
    IBM names (bit-identical histories to before) or any
    :data:`repro.transpiler.devices.DEVICE_LIBRARY` entry; density-matrix
    simulation is exponential in device size, so experiment devices must not
    exceed 10 qubits (the big lattices are for the transpiler benchmarks).

    ``history`` overrides the default synthetic calibration history — the
    fleet harness uses this to replay a
    :class:`~repro.calibration.scenarios.DriftScenario` trace instead; it
    must span at least ``offline_days + online_days`` snapshots for the
    device.  ``pass_manager`` selects the compilation artifact pool for the
    device binding (default: the process-wide one).
    """
    scale = scale or ExperimentScale()
    dataset = build_dataset(dataset_name, scale)
    num_days = scale.offline_days + scale.online_days
    device_key = device.lower()
    try:
        coupling = get_device_coupling(device_key)
    except Exception as error:
        raise ReproError(
            f"unknown device {device!r}; known devices: {list_devices()}"
        ) from error
    if coupling.num_qubits > 10:
        raise ReproError(
            f"device {device!r} has {coupling.num_qubits} qubits; density-matrix "
            "experiment harnesses support at most 10 (use the large lattices "
            "for transpiler-level work only)"
        )
    if history is not None:
        if len(history) < num_days:
            raise ReproError(
                f"provided history has {len(history)} days; the scale needs "
                f"{num_days} (offline {scale.offline_days} + online {scale.online_days})"
            )
        if history[0].num_qubits != coupling.num_qubits:
            raise ReproError(
                f"provided history is for a {history[0].num_qubits}-qubit device; "
                f"{device!r} has {coupling.num_qubits} qubits"
            )
        history = history[:num_days]
    elif device_key in {"belem", "ibmq_belem"}:
        history = generate_belem_history(num_days, seed=scale.seed)
    elif device_key in {"jakarta", "ibm_jakarta"}:
        history = generate_jakarta_history(num_days, seed=scale.seed)
    else:
        history = generate_device_history(device_key, num_days, seed=scale.seed)
    offline_history, online_history = history.split(scale.offline_days)

    model = build_model_for_dataset(dataset_name, dataset, scale)
    model.bind_to_device(coupling, calibration=history[0], pass_manager=pass_manager)
    if train_base_model:
        train_base_model_for(model, dataset, scale)
    return ExperimentSetup(
        dataset_name=dataset_name,
        dataset=dataset,
        coupling=coupling,
        full_history=history,
        offline_history=offline_history,
        online_history=online_history,
        base_model=model,
        scale=scale,
        device=device_key,
    )
