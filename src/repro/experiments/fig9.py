"""Fig. 9: ablation studies on representative days.

(a) QuCAD versus the practical upper bound (noise-aware compression run
    fresh every day) and noise-aware training every day;
(b) noise-aware versus noise-agnostic compression, both run every day.

Both panels use a handful of representative (high-variance) days rather than
the whole history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.baselines import make_method
from repro.experiments.config import ExperimentScale
from repro.experiments.context import ExperimentSetup, prepare_experiment
from repro.experiments.longitudinal import run_longitudinal
from repro.calibration.history import CalibrationHistory
from repro.runtime import ExperimentRunner


@dataclass
class Fig9Result:
    """Per-day accuracy of each arm on the representative days."""

    days: list[int]
    dates: list[str]
    panel_a: dict[str, np.ndarray]
    panel_b: dict[str, np.ndarray]

    def upper_bound_gap(self) -> float:
        """Mean accuracy gap between compression-everyday and QuCAD (panel a)."""
        upper = self.panel_a["compression_everyday"].mean()
        qucad = self.panel_a["qucad"].mean()
        return float(upper - qucad)

    def noise_aware_gain(self) -> float:
        """Mean gain of noise-aware over noise-agnostic compression (panel b)."""
        aware = self.panel_b["compression_everyday"].mean()
        agnostic = self.panel_b["noise_agnostic_compression_everyday"].mean()
        return float(aware - agnostic)


def pick_representative_days(history: CalibrationHistory, count: int = 8) -> list[int]:
    """Pick ``count`` days spanning the range of total noise (low to high)."""
    matrix = history.to_matrix()
    totals = matrix.sum(axis=1)
    order = np.argsort(totals)
    picks = np.linspace(0, len(order) - 1, num=min(count, len(order))).astype(int)
    return sorted(int(order[i]) for i in picks)


def run_fig9(
    scale: Optional[ExperimentScale] = None,
    setup: Optional[ExperimentSetup] = None,
    dataset_name: str = "mnist4",
    representative_days: Optional[Sequence[int]] = None,
    num_days: int = 8,
    runner: Optional[ExperimentRunner] = None,
) -> Fig9Result:
    """Reproduce the Fig. 9 ablations."""
    scale = scale or ExperimentScale()
    if setup is None:
        setup = prepare_experiment(dataset_name, scale=scale)
    history = setup.online_history
    if representative_days is None:
        representative_days = pick_representative_days(history, count=num_days)
    representative_days = sorted(representative_days)
    subset_history = CalibrationHistory([history[d] for d in representative_days])

    # Swap the online history for the representative days only.
    ablation_setup = ExperimentSetup(
        dataset_name=setup.dataset_name,
        dataset=setup.dataset,
        coupling=setup.coupling,
        full_history=setup.full_history,
        offline_history=setup.offline_history,
        online_history=subset_history,
        base_model=setup.base_model,
        scale=scale,
    )

    panel_a_methods = [
        make_method("qucad"),
        make_method("compression_everyday"),
        make_method("noise_aware_train_everyday"),
    ]
    result_a = run_longitudinal(
        ablation_setup, panel_a_methods, num_days=len(subset_history), runner=runner
    )

    panel_b_methods = [
        make_method("compression_everyday"),
        make_method("noise_agnostic_compression_everyday"),
    ]
    result_b = run_longitudinal(
        ablation_setup, panel_b_methods, num_days=len(subset_history), runner=runner
    )

    return Fig9Result(
        days=list(representative_days),
        dates=[history[d].date or str(d) for d in representative_days],
        panel_a={run.method_name: run.daily_accuracy for run in result_a.runs},
        panel_b={run.method_name: run.daily_accuracy for run in result_b.runs},
    )
