"""Table II: ablation of the repository constructor's clustering distance.

The table compares plain L2 k-means against the proposed performance-weighted
L1 k-means (both with K = 6) using two metrics:

* *mean accuracy of clusters* — for each cluster, the accuracy of the model
  compressed on the cluster centroid evaluated under the centroid's noise,
  averaged over clusters;
* *mean accuracy of samples* — each day evaluated with the model of the
  cluster it belongs to, averaged over all offline days.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.calibration.snapshot import CalibrationSnapshot
from repro.core import NoiseAwareCompressor, cluster_calibrations
from repro.experiments.config import ExperimentScale
from repro.experiments.context import ExperimentSetup, prepare_experiment
from repro.runtime import ExperimentRunner, default_runner
from repro.simulator import NoiseModel
from repro.utils.rng import ensure_rng


@dataclass
class ClusterEvaluation:
    """Accuracy summary of one clustering variant."""

    metric: str
    num_clusters: int
    mean_cluster_accuracy: float
    mean_sample_accuracy: float


@dataclass
class Table2Result:
    """Both rows of Table II."""

    l2: ClusterEvaluation
    weighted_l1: ClusterEvaluation

    def rows(self) -> list[dict]:
        """Both Table II rows as report-ready dicts."""
        return [
            {
                "method": "K-Means with L2",
                "k": self.l2.num_clusters,
                "mean_cluster_accuracy": self.l2.mean_cluster_accuracy,
                "mean_sample_accuracy": self.l2.mean_sample_accuracy,
            },
            {
                "method": "Proposed K-Means with dist^w_L1",
                "k": self.weighted_l1.num_clusters,
                "mean_cluster_accuracy": self.weighted_l1.mean_cluster_accuracy,
                "mean_sample_accuracy": self.weighted_l1.mean_sample_accuracy,
            },
        ]

    @property
    def weighted_gain(self) -> float:
        """Gain of the proposed distance in mean sample accuracy."""
        return self.weighted_l1.mean_sample_accuracy - self.l2.mean_sample_accuracy


def _evaluate_clustering(
    setup: ExperimentSetup,
    metric: str,
    day_accuracies: np.ndarray,
    scale: ExperimentScale,
    runner: Optional[ExperimentRunner] = None,
) -> ClusterEvaluation:
    history = setup.offline_history
    matrix = history.to_matrix()
    clustering = cluster_calibrations(
        matrix,
        accuracies=day_accuracies,
        k=scale.num_clusters,
        metric=metric,
        seed=scale.seed,
    )
    compressor = NoiseAwareCompressor(scale.compression)
    train_features, train_labels = setup.method_context().training_subset()
    eval_subset = setup.eval_subset()
    template = history[0]
    rng = ensure_rng(scale.seed)
    runner = runner if runner is not None else default_runner()

    # Compress once per non-empty cluster (sequential — each run trains),
    # collecting the per-centroid evaluation bindings for one batched call.
    cluster_params: dict[int, np.ndarray] = {}
    centroid_models: list[NoiseModel] = []
    centroid_params: list[np.ndarray] = []
    centroid_seeds: list[int] = []
    centroid_dates: list[str] = []
    for cluster in range(clustering.num_clusters):
        if clustering.cluster_sizes[cluster] == 0:
            continue
        centroid = CalibrationSnapshot.from_vector(
            clustering.centroids[cluster], template, date=f"{metric}_centroid_{cluster}"
        )
        compressed = compressor.compress(
            setup.base_model, train_features, train_labels, calibration=centroid
        )
        cluster_params[cluster] = compressed.parameters
        centroid_models.append(NoiseModel.from_calibration(centroid))
        centroid_params.append(compressed.parameters)
        centroid_seeds.append(int(rng.integers(0, 2**31 - 1)))
        centroid_dates.append(centroid.date or "")
    cluster_accuracy = runner.evaluate_days(
        setup.base_model,
        eval_subset.test_features,
        eval_subset.test_labels,
        centroid_models,
        parameter_sets=centroid_params,
        shots=scale.shots,
        seeds=centroid_seeds,
        experiment=f"table2/{metric}/clusters",
        dates=centroid_dates,
    )

    # Every offline day evaluated with its cluster's model — one batched call.
    noise_models = setup.noise_models(history)
    day_models: list[NoiseModel] = []
    day_params: list[np.ndarray] = []
    day_seeds: list[int] = []
    day_dates: list[str] = []
    for day, (label, noise_model) in enumerate(zip(clustering.labels, noise_models)):
        parameters = cluster_params.get(int(label))
        if parameters is None:
            continue
        day_models.append(noise_model)
        day_params.append(parameters)
        day_seeds.append(int(rng.integers(0, 2**31 - 1)))
        day_dates.append(history[day].date or "")
    sample_accuracy = runner.evaluate_days(
        setup.base_model,
        eval_subset.test_features,
        eval_subset.test_labels,
        day_models,
        parameter_sets=day_params,
        shots=scale.shots,
        seeds=day_seeds,
        experiment=f"table2/{metric}/samples",
        dates=day_dates,
    )
    return ClusterEvaluation(
        metric=metric,
        num_clusters=len(cluster_params),
        mean_cluster_accuracy=float(np.mean(cluster_accuracy)) if len(cluster_accuracy) else float("nan"),
        mean_sample_accuracy=float(np.mean(sample_accuracy)) if len(sample_accuracy) else float("nan"),
    )


def run_table2(
    scale: Optional[ExperimentScale] = None,
    setup: Optional[ExperimentSetup] = None,
    dataset_name: str = "mnist4",
    runner: Optional[ExperimentRunner] = None,
) -> Table2Result:
    """Reproduce the Table II clustering ablation."""
    scale = scale or ExperimentScale()
    if setup is None:
        setup = prepare_experiment(dataset_name, scale=scale)
    # Per-day accuracy of the base model across the offline history drives
    # the performance-aware weights (shared by both variants).
    from repro.core.constructor import RepositoryConstructor

    constructor = RepositoryConstructor(
        eval_test_samples=scale.eval_samples, seed=scale.seed
    )
    day_accuracies = constructor.measure_day_accuracies(
        setup.base_model, setup.dataset, setup.offline_history
    )
    l2 = _evaluate_clustering(setup, "l2", day_accuracies, scale, runner=runner)
    weighted = _evaluate_clustering(
        setup, "weighted_l1", day_accuracies, scale, runner=runner
    )
    return Table2Result(l2=l2, weighted_l1=weighted)
