"""The parallel experiment runner: batched day evaluation + fan-out + cache.

Every longitudinal harness in this repository reduces to the same inner
loop: *for each day (and method), evaluate one parameter vector under one
noise model on one eval subset*.  :class:`ExperimentRunner` owns that loop:

* days are grouped into chunks and each chunk is evaluated as **one**
  vectorised multi-binding backend call
  (:func:`repro.qnn.evaluation.evaluate_noisy_batch`);
* chunks fan out over a ``concurrent.futures`` thread or process pool, each
  worker owning its own :class:`~repro.simulator.SimulationEngine` (the
  engine is not thread-safe, so workers never share one);
* results are keyed by content digests in an
  :class:`~repro.runtime.cache.EvaluationCache`, so repeated sweeps over
  the same (model, day, subset) triples skip simulation entirely;
* every unit of work leaves a :class:`~repro.runtime.records.RunRecord` in
  a JSONL artifact for machine-readable run history.

Chunking, pooling, and caching never change numbers: each day's result is
bit-identical to a standalone :func:`repro.qnn.evaluation.evaluate_noisy`
call with the same seed.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro.exceptions import ReproError
from repro.qnn.evaluation import DEFAULT_BATCH_BYTES, evaluate_noisy_batch
from repro.qnn.model import QNNModel
from repro.runtime.cache import (
    EvaluationCache,
    array_digest,
    evaluation_key,
    model_digest,
    noise_model_digest,
)
from repro.runtime.records import PathLike, RunRecord, RunRecordLog
from repro.simulator import DensityMatrixBackend, NoiseModel, SimulationEngine

#: Runner execution modes.
RUNNER_MODES = ("serial", "thread", "process", "pool")


def _evaluate_chunk(
    model: QNNModel,
    features: np.ndarray,
    labels: np.ndarray,
    noise_models: Sequence[NoiseModel],
    parameter_sets: Sequence[Optional[np.ndarray]],
    shots: Optional[int],
    seeds: Sequence,
    max_batch_bytes: int,
    backend: Optional[DensityMatrixBackend] = None,
) -> tuple[list[float], float]:
    """Worker body: evaluate one chunk of days on a private engine.

    Module-level (not a closure) so the process pool can pickle it.  When
    no ``backend`` is supplied each invocation builds its own over a fresh
    engine — pool workers never share compilation caches, which keeps the
    engine's thread-unsafety out of the pool.  Serial execution passes the
    runner's long-lived backend instead so compiled circuits stay warm
    across chunks and calls, like the pre-runtime sequential path.
    """
    if backend is None:
        backend = DensityMatrixBackend(engine=SimulationEngine())
    start = time.perf_counter()
    results = evaluate_noisy_batch(
        model,
        features,
        labels,
        noise_models,
        parameter_sets=list(parameter_sets),
        shots=shots,
        seeds=list(seeds),
        backend=backend,
        max_batch_bytes=max_batch_bytes,
    )
    duration = time.perf_counter() - start
    return [result.accuracy for result in results], duration


@dataclass
class RunnerStats:
    """Counters across every :meth:`ExperimentRunner.evaluate_days` call."""

    days_requested: int = 0
    days_evaluated: int = 0
    cache_hits: int = 0
    chunks: int = 0
    wall_seconds: float = 0.0


class ExperimentRunner:
    """Fans batched per-day evaluations out over a worker pool.

    Parameters
    ----------
    mode:
        ``"serial"`` (in-process, deterministic ordering), ``"thread"``
        (default; NumPy's BLAS kernels release the GIL, and each worker owns
        a private engine), ``"process"`` (full isolation; a fresh pool and
        re-pickled inputs per call), or ``"pool"`` (a persistent
        :class:`~repro.runtime.workers.WorkerPool`: long-lived workers that
        keep compiled engines warm across ``evaluate_days`` calls and
        receive the eval subset via shared memory — the fast path for
        longitudinal sweeps; call :meth:`close` when done).
    max_workers:
        Pool width; defaults to ``min(4, cpu_count)``.
    chunk_days:
        How many days each worker evaluates per task.  One chunk is one
        vectorised multi-binding backend call, so this also sets the
        vectorisation width (memory-capped by ``max_batch_bytes``).
    cache:
        Optional :class:`EvaluationCache` (or a path, to persist across
        processes); hits skip simulation and are guaranteed bit-identical.
    record_log:
        Optional :class:`RunRecordLog` (or a path) receiving one
        :class:`RunRecord` per day.
    """

    def __init__(
        self,
        mode: str = "thread",
        max_workers: Optional[int] = None,
        chunk_days: int = 16,
        cache: Union[EvaluationCache, PathLike, None] = None,
        record_log: Union[RunRecordLog, PathLike, None] = None,
        max_batch_bytes: int = DEFAULT_BATCH_BYTES,
    ):
        if mode not in RUNNER_MODES:
            raise ReproError(f"unknown runner mode {mode!r}; expected {RUNNER_MODES}")
        if chunk_days < 1:
            raise ReproError(f"chunk_days must be >= 1, got {chunk_days}")
        self.mode = mode
        self.max_workers = max_workers or min(4, os.cpu_count() or 1)
        self.chunk_days = chunk_days
        self.max_batch_bytes = max_batch_bytes
        if cache is not None and not isinstance(cache, EvaluationCache):
            cache = EvaluationCache(cache)
        self.cache = cache
        if record_log is not None and not isinstance(record_log, RunRecordLog):
            record_log = RunRecordLog(record_log)
        self.record_log = record_log
        self.stats = RunnerStats()
        # Long-lived backend for single-threaded execution; pool workers
        # build their own (the engine is not thread-safe).
        self._serial_backend: Optional[DensityMatrixBackend] = None
        # Persistent worker pool for ``pool`` mode, created on first use and
        # reused across evaluate_days calls.
        self._pool = None

    # ------------------------------------------------------------------
    def _ensure_pool(self):
        if self._pool is None or self._pool.closed:
            from repro.runtime.workers import WorkerPool

            self._pool = WorkerPool(max_workers=self.max_workers)
        return self._pool

    @property
    def pool(self):
        """The persistent worker pool (``pool`` mode only; ``None`` until used)."""
        return self._pool

    def close(self) -> None:
        """Release pooled resources (persistent workers, shared memory).

        Only ``pool`` mode holds any; for the other modes this is a no-op.
        """
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "ExperimentRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _executor(self):
        if self.mode == "thread":
            return ThreadPoolExecutor(max_workers=self.max_workers)
        return ProcessPoolExecutor(max_workers=self.max_workers)

    def map(self, fn: Callable, items: Sequence) -> list:
        """Order-preserving pool map (serial in ``serial`` mode)."""
        if self.mode == "serial" or len(items) <= 1:
            return [fn(item) for item in items]
        return self._fan_out([(fn, item) for item in items])

    def _fan_out(self, submissions: Sequence[tuple]) -> list:
        """Submit ``(fn, *args)`` tuples to the pool; collect results in order.

        Graceful shutdown contract: if collection is interrupted
        (``KeyboardInterrupt``) or any task fails, every not-yet-started
        task is cancelled, tasks already running are *drained* (the pool
        shuts down with ``wait=True``), and the exception propagates — so a
        Ctrl-C leaves no orphaned worker threads/processes behind and never
        kills a chunk mid-write.
        """
        pool = self._executor()
        futures = []
        try:
            futures = [pool.submit(fn, *args) for fn, *args in submissions]
            results = [future.result() for future in futures]
        except BaseException:
            for future in futures:
                future.cancel()
            pool.shutdown(wait=True, cancel_futures=True)
            raise
        pool.shutdown(wait=True)
        return results

    # ------------------------------------------------------------------
    def evaluate_days(
        self,
        model: QNNModel,
        features: np.ndarray,
        labels: np.ndarray,
        noise_models: Sequence[NoiseModel],
        parameter_sets: Optional[Sequence[Optional[np.ndarray]]] = None,
        shots: Optional[int] = None,
        seeds: Optional[Sequence] = None,
        *,
        experiment: str = "experiment",
        dates: Optional[Sequence[Optional[str]]] = None,
        scenario: Optional[str] = None,
    ) -> np.ndarray:
        """Per-day accuracies of ``model`` across ``noise_models``.

        Day ``i`` is evaluated with ``parameter_sets[i]`` (``None`` → the
        model's own parameters) under ``noise_models[i]`` using
        ``seeds[i]`` / ``shots`` for measurement sampling — bit-identical to
        the equivalent :func:`repro.qnn.evaluation.evaluate_noisy` loop, but
        chunked, vectorised, parallelised, and cached.  ``scenario`` (the
        drift-scenario name of a fleet cell) is stamped onto every run
        record so JSONL rows stay attributable across scenario sweeps.
        """
        started = time.perf_counter()
        count = len(noise_models)
        parameter_sets = (
            [None] * count if parameter_sets is None else list(parameter_sets)
        )
        seeds = [None] * count if seeds is None else list(seeds)
        dates = [None] * count if dates is None else list(dates)
        if not (len(parameter_sets) == len(seeds) == len(dates) == count):
            raise ReproError("evaluate_days received mismatched per-day sequences")
        self.stats.days_requested += count

        seeds = [None if seed is None else int(seed) for seed in seeds]

        accuracies: list[Optional[float]] = [None] * count
        cache_hits: list[bool] = [False] * count
        keys: list[Optional[str]] = [None] * count
        pending = list(range(count))
        if self.cache is not None:
            subset_key = f"{array_digest(features)}/{array_digest(labels)}"
            # Digests hash the full parameter vector / channel map, so derive
            # each one once and pass it through: one model digest per distinct
            # parameter binding (day sweeps share a single binding object) and
            # one noise digest per distinct noise-model object, instead of
            # re-deriving both for every day in this hot loop.
            model_keys: dict[int, str] = {}
            noise_keys: dict[int, str] = {}
            pending = []
            for index in range(count):
                if shots is not None and seeds[index] is None:
                    # Unseeded sampling is meant to be a fresh random draw
                    # every time; replaying a cached draw would silently
                    # correlate evaluations.  Such bindings bypass the cache.
                    pending.append(index)
                    continue
                parameters = parameter_sets[index]
                model_key = model_keys.get(id(parameters))
                if model_key is None:
                    model_key = model_digest(model, parameters=parameters)
                    model_keys[id(parameters)] = model_key
                noise_key = noise_keys.get(id(noise_models[index]))
                if noise_key is None:
                    noise_key = noise_model_digest(noise_models[index])
                    noise_keys[id(noise_models[index])] = noise_key
                keys[index] = evaluation_key(
                    model_key,
                    noise_key,
                    subset_key,
                    shots,
                    seeds[index],
                )
                hit = self.cache.get(keys[index])
                if hit is not None:
                    accuracies[index] = float(hit["accuracy"])
                    cache_hits[index] = True
                    self.stats.cache_hits += 1
                else:
                    pending.append(index)

        chunks = [
            pending[start : start + self.chunk_days]
            for start in range(0, len(pending), self.chunk_days)
        ]
        durations: dict[int, float] = {}

        def run_chunk(
            chunk: list[int], backend: Optional[DensityMatrixBackend] = None
        ) -> tuple[list[int], list[float], float]:
            chunk_accuracies, duration = _evaluate_chunk(
                model,
                features,
                labels,
                [noise_models[i] for i in chunk],
                [parameter_sets[i] for i in chunk],
                shots,
                [seeds[i] for i in chunk],
                self.max_batch_bytes,
                backend=backend,
            )
            return chunk, chunk_accuracies, duration

        if not chunks:
            outcomes = []
        elif self.mode == "pool":
            # Persistent workers: even a single chunk goes through the pool
            # so engines stay warm for the next call.
            pool = self._ensure_pool()
            payloads = [
                {
                    "noise_models": [noise_models[i] for i in chunk],
                    "parameter_sets": [parameter_sets[i] for i in chunk],
                    "shots": shots,
                    "seeds": [seeds[i] for i in chunk],
                    "max_batch_bytes": self.max_batch_bytes,
                }
                for chunk in chunks
            ]
            results = pool.run_chunks(model, features, labels, payloads)
            outcomes = [
                (chunk, *result) for chunk, result in zip(chunks, results)
            ]
        elif self.mode == "serial" or len(chunks) <= 1:
            # Everything runs in the calling thread: reuse one engine so
            # compiled circuits stay warm across chunks and calls.
            if self._serial_backend is None:
                self._serial_backend = DensityMatrixBackend(engine=SimulationEngine())
            outcomes = [run_chunk(chunk, self._serial_backend) for chunk in chunks]
        elif self.mode == "process":
            submissions = [
                (
                    _evaluate_chunk,
                    model,
                    features,
                    labels,
                    [noise_models[i] for i in chunk],
                    [parameter_sets[i] for i in chunk],
                    shots,
                    [seeds[i] for i in chunk],
                    self.max_batch_bytes,
                )
                for chunk in chunks
            ]
            results = self._fan_out(submissions)
            outcomes = [
                (chunk, *result) for chunk, result in zip(chunks, results)
            ]
        else:
            outcomes = self._fan_out([(run_chunk, chunk) for chunk in chunks])

        for chunk, chunk_accuracies, duration in outcomes:
            self.stats.chunks += 1
            per_day = duration / max(len(chunk), 1)
            for index, value in zip(chunk, chunk_accuracies):
                accuracies[index] = value
                durations[index] = per_day
                self.stats.days_evaluated += 1
                if self.cache is not None and keys[index] is not None:
                    self.cache.put(keys[index], {"accuracy": float(value)})

        if self.record_log is not None:
            self.record_log.extend(
                RunRecord(
                    experiment=experiment,
                    index=index,
                    date=dates[index],
                    scenario=scenario,
                    accuracy=float(accuracies[index]),
                    cache_hit=cache_hits[index],
                    duration_seconds=durations.get(index, 0.0),
                    extra={
                        "shots": None if shots is None else int(shots),
                        "seed": seeds[index],
                    },
                )
                for index in range(count)
            )
        self.stats.wall_seconds += time.perf_counter() - started
        return np.asarray(accuracies, dtype=float)


def default_runner() -> ExperimentRunner:
    """A runner configured from the environment.

    ``REPRO_RUNNER_MODE`` selects serial/thread/process/pool (default
    thread) and ``REPRO_RUNNER_WORKERS`` overrides the pool width — the
    knobs CI and the benchmark suite use without touching harness code.
    """
    mode = os.environ.get("REPRO_RUNNER_MODE", "thread").lower()
    workers = os.environ.get("REPRO_RUNNER_WORKERS")
    return ExperimentRunner(
        mode=mode,
        max_workers=int(workers) if workers else None,
    )
