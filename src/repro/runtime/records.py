"""Run-record persistence: every runner evaluation leaves a JSONL trail.

A longitudinal experiment is thousands of small evaluations spread over
days, methods, and datasets; when one is rerun at a different scale (or
crashes halfway) the only way to compare or resume is a machine-readable
record of what actually executed.  :class:`RunRecordLog` appends one JSON
object per line — the same format consumed by the cache warm-start and by
the ``BENCH_runtime.json`` tooling — and is safe to share across the
runner's worker threads.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Union


@dataclass
class RunRecord:
    """One unit of runner work, as persisted to the JSONL artifact.

    Attributes
    ----------
    experiment:
        Harness name (``"fig2"``, ``"table1/mnist4/qucad"``, ...).
    kind:
        Record type; day evaluations use ``"day_evaluation"``.
    index:
        Position of the unit within its sweep (e.g. the day index).
    date:
        Calendar label of the unit, when the sweep has one.
    scenario:
        Drift-scenario name the unit ran under (``None`` outside scenario
        sweeps) — what makes every fleet row attributable to its cell.
    accuracy:
        Evaluation outcome (``None`` for non-evaluation records).
    cache_hit:
        Whether the result came from the evaluation cache.
    duration_seconds:
        Wall time spent producing the result (0 for cache hits).
    extra:
        Free-form JSON-serialisable payload (method name, shots, ...).
    created_at:
        Unix timestamp at record creation.
    """

    experiment: str
    kind: str = "day_evaluation"
    index: Optional[int] = None
    date: Optional[str] = None
    scenario: Optional[str] = None
    accuracy: Optional[float] = None
    cache_hit: bool = False
    duration_seconds: float = 0.0
    extra: dict = field(default_factory=dict)
    created_at: float = field(default_factory=time.time)

    def to_json(self) -> str:
        """The record as one compact JSON line (no trailing newline)."""
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "RunRecord":
        """Parse a record from one JSONL line."""
        payload = json.loads(line)
        return cls(**payload)


PathLike = Union[str, Path]


class RunRecordLog:
    """Append-only, thread-safe JSONL writer for :class:`RunRecord` objects."""

    def __init__(self, path: PathLike):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()

    def append(self, record: RunRecord) -> None:
        """Append one record to the artifact."""
        self.extend([record])

    def extend(self, records: Iterable[RunRecord]) -> None:
        """Append several records atomically with respect to other writers."""
        lines = "".join(record.to_json() + "\n" for record in records)
        if not lines:
            return
        with self._lock:
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(lines)


def load_run_records(path: PathLike) -> list[RunRecord]:
    """Read every record from a JSONL artifact (missing file → empty list)."""
    path = Path(path)
    if not path.is_file():
        return []
    records = []
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(RunRecord.from_json(line))
    return records
