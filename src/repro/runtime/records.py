"""Run-record persistence: every runner evaluation leaves a JSONL trail.

A longitudinal experiment is thousands of small evaluations spread over
days, methods, and datasets; when one is rerun at a different scale (or
crashes halfway) the only way to compare or resume is a machine-readable
record of what actually executed.  The record itself is the typed
:class:`~repro.protocol.RunRecord` protocol message (one validated model
per line, ``type_name``/``type_version`` stamped); :class:`RunRecordLog`
appends one canonical JSON line per record — the same format consumed by
the cache warm-start and the ``BENCH_runtime.json`` tooling — and is
safe to share across the runner's worker threads.

Crash safety: appends flush and (by default) fsync once per batch, so a
SIGKILL can truncate at most the line being written.  Replay tolerates
exactly that — a torn *trailing* line is dropped with a warning, while
corruption anywhere earlier still raises, since that indicates real
damage rather than an interrupted append.
"""

from __future__ import annotations

import logging
import os
import threading
from pathlib import Path
from typing import Iterable, Union

from repro.exceptions import ReproError
from repro.protocol import RunRecord

__all__ = ["PathLike", "RunRecord", "RunRecordLog", "load_run_records"]

PathLike = Union[str, Path]

_logger = logging.getLogger(__name__)


class RunRecordLog:
    """Append-only, thread-safe JSONL writer for :class:`RunRecord` objects.

    Parameters
    ----------
    path:
        JSONL artifact location (parent directories are created).
    fsync:
        When true (the default), every :meth:`extend` batch is fsync'd
        after the write, so records survive a SIGKILL of the process.
        Set false for throwaway logs where durability doesn't matter.
    """

    def __init__(self, path: PathLike, fsync: bool = True):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self._lock = threading.Lock()

    def append(self, record: RunRecord) -> None:
        """Append one record to the artifact."""
        self.extend([record])

    def extend(self, records: Iterable[RunRecord]) -> None:
        """Append several records atomically with respect to other writers.

        The batch is written in one ``write`` call (so concurrent writers
        never interleave partial lines), flushed, and — under the default
        fsync policy — synced to disk before returning.
        """
        lines = "".join(record.to_json() + "\n" for record in records)
        if not lines:
            return
        with self._lock:
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(lines)
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())


def load_run_records(path: PathLike) -> list[RunRecord]:
    """Read every record from a JSONL artifact (missing file → empty list).

    A truncated *final* line — the signature of an append interrupted by
    a crash — is dropped with a warning.  A malformed line anywhere else
    raises :class:`~repro.exceptions.ReproError`: that is corruption, not
    an interrupted append, and silently skipping it would misreport what
    actually executed.
    """
    path = Path(path)
    if not path.is_file():
        return []
    with path.open("r", encoding="utf-8") as handle:
        lines = handle.readlines()
    records = []
    for lineno, line in enumerate(lines):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            record = RunRecord.from_json(stripped)
        except ReproError as error:
            trailing = all(not later.strip() for later in lines[lineno + 1 :])
            if trailing:
                _logger.warning(
                    "%s: dropping truncated trailing record (line %d): %s",
                    path,
                    lineno + 1,
                    stripped[:80],
                )
                break
            raise ReproError(
                f"{path}: corrupt run record on line {lineno + 1} "
                "(not the trailing line, so this is damage rather than an "
                f"interrupted append): {error}"
            ) from error
        records.append(record)
    return records
