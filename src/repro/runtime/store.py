"""Durable run store: SQLite (WAL) persistence for protocol messages.

The store is the crash-survival layer under the fleet harness (and any
other long sweep): every completed unit of work lands as one canonical
protocol message row, keyed by content digest, committed before the next
unit starts.  A SIGKILL'd run therefore loses at most the unit in
flight; restarting with ``--resume <run-id>`` reads the completed rows
back and skips them.

Layout: one ``runs`` table holding each run's
:class:`~repro.protocol.FleetRunManifest`, plus one table per message
family (``fleet_cells``, ``run_records``, ``watcher_actions``, ...) with
``(run_id, digest)`` primary keys — the digests are the same
content-addressed keys the evaluation cache already uses, so writes are
idempotent and a resumed run can re-store a row it already owns without
duplicating it.

Concurrency: WAL journal mode plus a busy timeout lets concurrent
writers (fleet cell threads, or two processes sharing one store file)
interleave safely; every public method takes an internal lock, so one
:class:`RunStore` instance can be shared across threads.
"""

from __future__ import annotations

import sqlite3
import threading
import time
from pathlib import Path
from typing import Optional, Union

from repro.exceptions import ReproError
from repro.protocol import (
    FleetCellResult,
    FleetRunManifest,
    ReproMessage,
    content_digest,
    decode,
    encode,
)

PathLike = Union[str, Path]

#: Message family -> store table.  Every registered message that can be
#: persisted per-run has exactly one table here.
MESSAGE_TABLES: dict[str, str] = {
    "run.record": "run_records",
    "fleet.cell.result": "fleet_cells",
    "fleet.report": "fleet_reports",
    "serving.watcher.action": "watcher_actions",
    "serving.shard.deploy": "shard_deploys",
    "serving.shard.state_op": "shard_state_ops",
    "serving.telemetry.snapshot": "telemetry_snapshots",
}

_TABLE_SCHEMA = """
CREATE TABLE IF NOT EXISTS {table} (
    run_id TEXT NOT NULL,
    digest TEXT NOT NULL,
    type_version TEXT NOT NULL,
    payload TEXT NOT NULL,
    created_at REAL NOT NULL,
    PRIMARY KEY (run_id, digest)
)
"""

_RUNS_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_id TEXT PRIMARY KEY,
    config_digest TEXT NOT NULL,
    status TEXT NOT NULL,
    manifest TEXT NOT NULL,
    created_at REAL NOT NULL,
    updated_at REAL NOT NULL
)
"""


class StoreError(ReproError):
    """A run-store operation failed (unknown run, config mismatch, ...)."""


class RunStore:
    """SQLite-backed durable store for protocol messages, keyed by run.

    Parameters
    ----------
    path:
        Store file location (parent directories are created).
    timeout:
        Seconds a writer waits on a locked database before giving up —
        both the sqlite connection timeout and the WAL busy timeout.
    """

    def __init__(self, path: PathLike, timeout: float = 30.0):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(
            str(self.path),
            timeout=timeout,
            check_same_thread=False,
            isolation_level=None,  # autocommit; explicit transactions below
        )
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute(f"PRAGMA busy_timeout={int(timeout * 1000)}")
        with self._lock:
            self._conn.execute(_RUNS_SCHEMA)
            for table in MESSAGE_TABLES.values():
                self._conn.execute(_TABLE_SCHEMA.format(table=table))

    # ------------------------------------------------------------------
    @property
    def journal_mode(self) -> str:
        """The active sqlite journal mode (``"wal"`` on normal filesystems)."""
        with self._lock:
            return str(self._conn.execute("PRAGMA journal_mode").fetchone()[0])

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Run lifecycle
    # ------------------------------------------------------------------
    def begin_run(self, manifest: FleetRunManifest) -> FleetRunManifest:
        """Register a run, or re-attach to it if it already exists.

        Re-attaching (the resume path) validates that the stored run's
        ``config_digest`` matches the requested configuration; mixing
        cells from different configurations is refused.
        """
        with self._lock:
            row = self._conn.execute(
                "SELECT manifest FROM runs WHERE run_id = ?", (manifest.run_id,)
            ).fetchone()
            if row is not None:
                stored = FleetRunManifest.from_json(row[0])
                if stored.config_digest != manifest.config_digest:
                    raise StoreError(
                        f"run {manifest.run_id!r} exists with config digest "
                        f"{stored.config_digest} but the requested configuration "
                        f"digests to {manifest.config_digest}; refusing to resume "
                        "across configurations"
                    )
                return stored
            now = time.time()
            self._conn.execute(
                "INSERT INTO runs (run_id, config_digest, status, manifest, "
                "created_at, updated_at) VALUES (?, ?, ?, ?, ?, ?)",
                (
                    manifest.run_id,
                    manifest.config_digest,
                    manifest.status,
                    encode(manifest),
                    now,
                    now,
                ),
            )
            return manifest

    def manifest(self, run_id: str) -> FleetRunManifest:
        """The stored manifest for ``run_id`` (:class:`StoreError` if absent)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT manifest FROM runs WHERE run_id = ?", (run_id,)
            ).fetchone()
        if row is None:
            raise StoreError(f"run {run_id!r} is not in the store")
        manifest = FleetRunManifest.from_json(row[0])
        assert isinstance(manifest, FleetRunManifest)
        return manifest

    def run_ids(self) -> list[str]:
        """Every run id in the store, oldest first."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT run_id FROM runs ORDER BY created_at"
            ).fetchall()
        return [row[0] for row in rows]

    def mark_run(self, run_id: str, status: str) -> None:
        """Update a run's status (``"running"`` / ``"complete"``)."""
        with self._lock:
            manifest_row = self._conn.execute(
                "SELECT manifest FROM runs WHERE run_id = ?", (run_id,)
            ).fetchone()
            if manifest_row is None:
                raise StoreError(f"run {run_id!r} is not in the store")
            manifest = FleetRunManifest.from_json(manifest_row[0])
            updated = manifest.model_copy(update={"status": status})
            self._conn.execute(
                "UPDATE runs SET status = ?, manifest = ?, updated_at = ? "
                "WHERE run_id = ?",
                (status, encode(updated), time.time(), run_id),
            )

    # ------------------------------------------------------------------
    # Message persistence
    # ------------------------------------------------------------------
    def _table_for(self, message: ReproMessage) -> str:
        table = MESSAGE_TABLES.get(message.type_name)
        if table is None:
            raise StoreError(
                f"message type {message.type_name!r} has no store table"
            )
        return table

    def put(
        self,
        run_id: str,
        message: ReproMessage,
        digest: Optional[str] = None,
    ) -> str:
        """Persist one message under ``run_id``; returns its digest key.

        The digest defaults to the content digest of the canonical
        encoding; writes are idempotent (``INSERT OR REPLACE`` on the
        ``(run_id, digest)`` key) and committed before returning, so a
        kill after :meth:`put` never loses the row.
        """
        table = self._table_for(message)
        payload = encode(message)
        if digest is None:
            digest = content_digest(message.to_canonical_dict())
        with self._lock:
            self._conn.execute(
                f"INSERT OR REPLACE INTO {table} "
                "(run_id, digest, type_version, payload, created_at) "
                "VALUES (?, ?, ?, ?, ?)",
                (run_id, digest, message.type_version, payload, time.time()),
            )
        return digest

    def get(self, run_id: str, type_name: str, digest: str) -> Optional[ReproMessage]:
        """One stored message by family and digest (``None`` if absent)."""
        table = MESSAGE_TABLES.get(type_name)
        if table is None:
            raise StoreError(f"message type {type_name!r} has no store table")
        with self._lock:
            row = self._conn.execute(
                f"SELECT payload FROM {table} WHERE run_id = ? AND digest = ?",
                (run_id, digest),
            ).fetchone()
        return None if row is None else decode(row[0])

    def messages(self, run_id: str, type_name: str) -> dict[str, ReproMessage]:
        """Every stored message of one family for a run, keyed by digest."""
        table = MESSAGE_TABLES.get(type_name)
        if table is None:
            raise StoreError(f"message type {type_name!r} has no store table")
        with self._lock:
            rows = self._conn.execute(
                f"SELECT digest, payload FROM {table} WHERE run_id = ? "
                "ORDER BY created_at",
                (run_id,),
            ).fetchall()
        return {digest: decode(payload) for digest, payload in rows}

    def count(self, type_name: str, run_id: Optional[str] = None) -> int:
        """Row count for one message family (optionally one run's)."""
        table = MESSAGE_TABLES.get(type_name)
        if table is None:
            raise StoreError(f"message type {type_name!r} has no store table")
        query = f"SELECT COUNT(*) FROM {table}"
        args: tuple = ()
        if run_id is not None:
            query += " WHERE run_id = ?"
            args = (run_id,)
        with self._lock:
            return int(self._conn.execute(query, args).fetchone()[0])

    # ------------------------------------------------------------------
    # Fleet-specific helpers
    # ------------------------------------------------------------------
    def completed_cells(self, run_id: str) -> dict[str, FleetCellResult]:
        """Every completed fleet cell for a run, keyed by cell digest."""
        cells = {}
        for digest, message in self.messages(run_id, "fleet.cell.result").items():
            assert isinstance(message, FleetCellResult)
            cells[digest] = message
        return cells


def fleet_cell_digest(config_digest: str, device: str, scenario: str) -> str:
    """The store key of one fleet cell: run configuration + coordinates."""
    return content_digest(
        {"config": config_digest, "device": device, "scenario": scenario}
    )
