"""Batched/parallel experiment runtime.

This package is the execution layer *above* the simulator: where
:mod:`repro.simulator` makes one circuit cheap and
:mod:`repro.qnn.evaluation` makes one day cheap, the runtime makes whole
experiments cheap — it chunks per-day evaluations into vectorised
multi-binding backend calls, fans the chunks out over worker pools, caches
(model, day, subset) results by content digest, and persists run records
as JSONL artifacts.  Every experiment harness under
:mod:`repro.experiments` drives its day loops through
:class:`ExperimentRunner`.
"""

from repro.runtime.cache import (
    DEFAULT_CACHE_CAPACITY,
    EvaluationCache,
    array_digest,
    evaluation_key,
    model_digest,
    noise_model_digest,
)
from repro.runtime.records import RunRecord, RunRecordLog, load_run_records
from repro.runtime.store import (
    MESSAGE_TABLES,
    RunStore,
    StoreError,
    fleet_cell_digest,
)
from repro.runtime.runner import (
    RUNNER_MODES,
    ExperimentRunner,
    RunnerStats,
    default_runner,
)
from repro.runtime.workers import (
    SharedArrayStore,
    WorkerPool,
    WorkerPoolStats,
    actor_main,
    attach_shared_array,
    spawn_actor,
)

__all__ = [
    "ExperimentRunner",
    "RunnerStats",
    "RUNNER_MODES",
    "default_runner",
    "SharedArrayStore",
    "WorkerPool",
    "WorkerPoolStats",
    "actor_main",
    "attach_shared_array",
    "spawn_actor",
    "DEFAULT_CACHE_CAPACITY",
    "EvaluationCache",
    "RunRecord",
    "RunRecordLog",
    "load_run_records",
    "MESSAGE_TABLES",
    "RunStore",
    "StoreError",
    "fleet_cell_digest",
    "array_digest",
    "evaluation_key",
    "model_digest",
    "noise_model_digest",
]
