"""Persistent spawn-context actor processes and the chunk-evaluation pool.

``concurrent.futures.ProcessPoolExecutor`` (the runner's ``process`` mode)
re-pickles the model and the evaluation subset for every chunk and tears the
pool down after every ``evaluate_days`` call, so each worker re-compiles the
circuit from scratch.  This module replaces that with long-lived workers
built around three reusable pieces:

* **A generic actor loop** — :func:`actor_main` runs in a spawned child
  process, instantiates a picklable *handler* class once, and then serves
  ``(task_id, payload) → (task_id, ok, result)`` request/response messages
  until the stop sentinel arrives.  The chunk-evaluation workload is one
  handler (:class:`ChunkEvaluator`); the serving shards
  (:mod:`repro.serving.shards`) are another.
* **Content-addressed shared memory** — :class:`SharedArrayStore` (parent
  side) exposes numpy arrays through ``multiprocessing.shared_memory``
  blocks keyed by content digest with LRU eviction; workers attach by name
  via :func:`attach_shared_array` and cache the mapping, so a payload that
  crosses twice ships zero bytes the second time.
* **Supervised dispatch** — :class:`WorkerPool` keeps the queue of pending
  chunks in the parent and hands each worker its next chunk only when the
  previous result arrives.  Crash recovery is then trivial: a dead worker
  has exactly one outstanding chunk, which is resubmitted to its respawned
  replacement.

Workers are daemonic ``spawn`` processes: ``spawn`` keeps the pool safe to
create from threaded harnesses (the fleet cells fan out over threads), and
daemonic workers can never outlive the parent even if ``close`` is skipped.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
import traceback
from collections import deque
from dataclasses import dataclass
from multiprocessing import get_context
from multiprocessing.shared_memory import SharedMemory
from typing import Optional, Sequence

import numpy as np

from repro.exceptions import ReproError

__all__ = [
    "ChunkEvaluator",
    "SharedArrayStore",
    "WorkerPool",
    "WorkerPoolStats",
    "actor_main",
    "attach_shared_array",
    "spawn_actor",
]

#: How many distinct (features, labels) arrays the pool keeps shared at once.
#: Day sweeps reuse one eval subset, so this only needs to absorb a few
#: concurrent subsets before the oldest block is unlinked.
SHARED_ARRAY_CAPACITY = 8

#: Exit code of the test-only crash hook (see ``_CRASH_KEY``).
_CRASH_EXIT_CODE = 17

#: Payload key that makes a worker die before evaluating — a deterministic
#: stand-in for a segfaulting worker, used by the lifecycle tests.  The
#: parent strips the key when it resubmits the chunk to the respawned
#: worker, so the chunk crashes exactly once.
_CRASH_KEY = "_crash"

#: How many times one chunk may take a worker down before the run is
#: declared failed.  Keeps a chunk that deterministically kills its worker
#: (or an environment where workers cannot start at all) from respawning
#: forever.
MAX_TASK_ATTEMPTS = 3


def attach_shared_array(meta: dict, cache: dict) -> np.ndarray:
    """Attach to a parent-owned shared-memory array (worker side, cached).

    ``meta`` is the descriptor produced by :meth:`SharedArrayStore.share`;
    ``cache`` maps block names to attached ``SharedMemory`` objects and is
    owned by the calling handler so repeat payloads skip the re-attach.
    """
    name = meta["name"]
    entry = cache.get(name)
    if entry is None:
        try:
            block = SharedMemory(name=name, track=False)  # Python >= 3.13
        except TypeError:
            # Older Pythons register every attach with the resource tracker
            # (shared with the parent), which would erase the parent's own
            # registration when this process exits and then double-unlink.
            # The parent owns the block — suppress registration entirely.
            from multiprocessing import resource_tracker

            original_register = resource_tracker.register
            resource_tracker.register = lambda *args, **kwargs: None
            try:
                block = SharedMemory(name=name)
            finally:
                resource_tracker.register = original_register
        cache[name] = entry = block
    array = np.ndarray(
        tuple(meta["shape"]), dtype=np.dtype(meta["dtype"]), buffer=entry.buf
    )
    # Worker-side consumers must never scribble on the parent's buffer.
    array.flags.writeable = False
    return array


class ChunkEvaluator:
    """Actor handler for day-chunk evaluation (the :class:`WorkerPool` job).

    One instance lives per worker process; it caches the unpickled model and
    a warm engine per model digest, so compiled programs, bound circuits,
    and day-stacked walk plans survive across chunks *and* across
    ``evaluate_days`` calls.
    """

    def __init__(self) -> None:
        self._models: dict[str, tuple] = {}
        self._blocks: dict[str, SharedMemory] = {}

    def __call__(self, payload: dict):
        """Evaluate one chunk payload; returns ``(accuracies, duration)``."""
        from repro.runtime.runner import _evaluate_chunk
        from repro.simulator import DensityMatrixBackend, SimulationEngine

        digest = payload["model_digest"]
        entry = self._models.get(digest)
        if entry is None:
            model = pickle.loads(payload["model_bytes"])
            backend = DensityMatrixBackend(engine=SimulationEngine())
            self._models[digest] = entry = (model, backend)
        model, backend = entry
        features = attach_shared_array(payload["features"], self._blocks)
        labels = attach_shared_array(payload["labels"], self._blocks)
        return _evaluate_chunk(
            model,
            features,
            labels,
            payload["noise_models"],
            payload["parameter_sets"],
            payload["shots"],
            payload["seeds"],
            payload["max_batch_bytes"],
            backend=backend,
        )

    def close(self) -> None:
        """Detach from every shared-memory block (process exit)."""
        for block in self._blocks.values():
            try:
                block.close()
            except Exception:
                pass


def actor_main(inbox, outbox, handler_cls, handler_kwargs: Optional[dict] = None):
    """Generic child-process loop: serve request/response messages.

    ``handler_cls`` is instantiated once (with ``handler_kwargs``) inside the
    child; each ``(task_id, payload)`` message is answered with
    ``(task_id, True, handler(payload))`` or ``(task_id, False, traceback)``.
    A ``None`` message stops the loop; the test-only ``_CRASH_KEY`` payload
    kills the process without replying, emulating a segfault.
    """
    handler = handler_cls(**(handler_kwargs or {}))
    try:
        while True:
            message = inbox.get()
            if message is None:
                break
            task_id, payload = message
            if isinstance(payload, dict) and payload.get(_CRASH_KEY):
                os._exit(_CRASH_EXIT_CODE)
            try:
                outbox.put((task_id, True, handler(payload)))
            except BaseException:
                outbox.put((task_id, False, traceback.format_exc()))
    finally:
        close = getattr(handler, "close", None)
        if close is not None:
            try:
                close()
            except Exception:
                pass


def spawn_actor(
    context,
    outbox,
    handler_cls,
    handler_kwargs: Optional[dict] = None,
    name: str = "repro-actor",
):
    """Start one daemonic actor process; returns ``(process, inbox)``."""
    inbox = context.Queue()
    process = context.Process(
        target=actor_main,
        args=(inbox, outbox, handler_cls, handler_kwargs),
        daemon=True,
        name=name,
    )
    process.start()
    return process, inbox


class SharedArrayStore:
    """Parent-side content-addressed shared-memory LRU for numpy arrays.

    :meth:`share` exposes an array through a ``SharedMemory`` block keyed by
    its content digest and returns the small descriptor dict workers pass to
    :func:`attach_shared_array`.  Re-sharing identical content returns the
    cached descriptor without copying; the oldest blocks are unlinked once
    ``capacity`` distinct arrays are held.

    ``share(..., pin=True)`` additionally takes a reference on the block
    that exempts it from LRU eviction until a matching :meth:`release` — so
    a block with an in-flight consumer can never be unlinked before the
    consumer attaches, no matter how many other arrays are shared in
    between.  Pinned blocks may hold the store above ``capacity``; the
    excess is trimmed as pins are released.
    """

    def __init__(self, capacity: int = SHARED_ARRAY_CAPACITY):
        if capacity < 1:
            raise ReproError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: dict[str, tuple[SharedMemory, dict]] = {}
        self._order: deque[str] = deque()
        #: block name -> outstanding pin count (eviction exemptions).
        self._pins: dict[str, int] = {}
        #: Distinct arrays shared since construction (monotonic counter).
        self.arrays_shared = 0

    def share(self, array: np.ndarray, pin: bool = False) -> dict:
        """Expose ``array`` via shared memory (content-addressed, cached).

        With ``pin=True`` the returned block is protected from eviction
        until :meth:`release` is called with its name; each pinned share
        takes one reference, so concurrent consumers of identical content
        each release independently.
        """
        array = np.ascontiguousarray(array)
        digest = hashlib.blake2b(
            array.tobytes() + str(array.dtype).encode() + str(array.shape).encode(),
            digest_size=16,
        ).hexdigest()
        cached = self._entries.get(digest)
        if cached is not None:
            if pin:
                name = cached[1]["name"]
                self._pins[name] = self._pins.get(name, 0) + 1
            return cached[1]
        block = SharedMemory(create=True, size=max(1, array.nbytes))
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=block.buf)
        view[...] = array
        meta = {
            "name": block.name,
            "shape": tuple(int(s) for s in array.shape),
            "dtype": str(array.dtype),
        }
        self._entries[digest] = (block, meta)
        self._order.append(digest)
        if pin:
            self._pins[block.name] = 1
        self.arrays_shared += 1
        self._trim()
        return meta

    def release(self, name: Optional[str]) -> None:
        """Drop one pin on the named block (no-op for unknown names)."""
        count = self._pins.get(name)
        if count is None:
            return
        if count <= 1:
            del self._pins[name]
            self._trim()
        else:
            self._pins[name] = count - 1

    def _trim(self) -> None:
        """Unlink oldest unpinned blocks until within capacity."""
        while len(self._order) > self.capacity:
            evicted = next(
                (
                    digest
                    for digest in self._order
                    if self._entries[digest][1]["name"] not in self._pins
                ),
                None,
            )
            if evicted is None:
                return  # every block has an in-flight consumer; stay over
            self._order.remove(evicted)
            old_block, _ = self._entries.pop(evicted)
            self._unlink(old_block)

    def names(self) -> list[str]:
        """Names of the shared-memory blocks the store currently owns."""
        return [meta["name"] for _block, meta in self._entries.values()]

    @staticmethod
    def _unlink(block: SharedMemory) -> None:
        try:
            block.close()
        except Exception:
            pass
        try:
            block.unlink()
        except Exception:
            pass

    def close(self) -> None:
        """Unlink every block the store owns (idempotent)."""
        for block, _ in self._entries.values():
            self._unlink(block)
        self._entries.clear()
        self._order.clear()
        self._pins.clear()


@dataclass
class WorkerPoolStats:
    """Lifecycle counters of a :class:`WorkerPool` (used by tests/benchmarks)."""

    workers_spawned: int = 0
    workers_respawned: int = 0
    tasks_completed: int = 0
    tasks_resubmitted: int = 0
    models_shipped: int = 0
    arrays_shared: int = 0


class _Worker:
    """Parent-side handle: process, private inbox, and shipped-model set."""

    __slots__ = ("process", "inbox", "known_models", "current_task")

    def __init__(self, process, inbox):
        self.process = process
        self.inbox = inbox
        self.known_models: set[str] = set()
        #: ``(task_id, chunk_index, payload)`` of the one in-flight chunk.
        self.current_task: Optional[tuple[int, int, dict]] = None


class WorkerPool:
    """Long-lived evaluation workers fed one chunk at a time.

    Parameters
    ----------
    max_workers:
        Number of worker processes; defaults to ``min(4, cpu_count)``.
    poll_seconds:
        How often the collector wakes to check worker liveness while waiting
        for results (crash detection latency).
    """

    def __init__(self, max_workers: Optional[int] = None, poll_seconds: float = 0.25):
        self.max_workers = max_workers or min(4, os.cpu_count() or 1)
        if self.max_workers < 1:
            raise ReproError(f"max_workers must be >= 1, got {self.max_workers}")
        self.poll_seconds = poll_seconds
        self.stats = WorkerPoolStats()
        self._context = get_context("spawn")
        self._outbox = self._context.Queue()
        self._workers: list[_Worker] = []
        self._store = SharedArrayStore(capacity=SHARED_ARRAY_CAPACITY)
        self._task_counter = 0
        self._active: dict[int, _Worker] = {}
        self._lock = threading.RLock()
        self._closed = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def pids(self) -> list[int]:
        """PIDs of the current worker processes (spawned lazily)."""
        return [w.process.pid for w in self._workers if w.process.pid is not None]

    def shared_memory_names(self) -> list[str]:
        """Names of the shared-memory blocks the pool currently owns."""
        return self._store.names()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run; a closed pool rejects new work."""
        return self._closed

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _spawn_worker(self) -> _Worker:
        process, inbox = spawn_actor(
            self._context, self._outbox, ChunkEvaluator, name="repro-eval-worker"
        )
        self.stats.workers_spawned += 1
        return _Worker(process, inbox)

    def _ensure_workers(self) -> None:
        if self._closed:
            raise ReproError("worker pool is closed")
        while len(self._workers) < self.max_workers:
            self._workers.append(self._spawn_worker())

    def _respawn(self, worker: _Worker) -> None:
        """Replace a dead worker in place, preserving its queue position."""
        try:
            worker.process.join(timeout=0)
        except Exception:
            pass
        replacement = self._spawn_worker()
        worker.process = replacement.process
        worker.inbox = replacement.inbox
        worker.known_models = set()
        self.stats.workers_respawned += 1

    # ------------------------------------------------------------------
    # Dispatch / collect
    # ------------------------------------------------------------------
    def _dispatch(self, worker: _Worker, task: tuple[int, int, dict]) -> None:
        task_id, _, payload = task
        if not worker.process.is_alive():
            self._respawn(worker)
        digest = payload["model_digest"]
        if digest in worker.known_models:
            message_payload = {k: v for k, v in payload.items() if k != "model_bytes"}
        else:
            message_payload = payload
            worker.known_models.add(digest)
            self.stats.models_shipped += 1
        worker.current_task = task
        self._active[task_id] = worker
        worker.inbox.put((task_id, message_payload))

    def run_chunks(
        self,
        model,
        features: np.ndarray,
        labels: np.ndarray,
        chunk_payloads: Sequence[dict],
    ) -> list[tuple[list[float], float]]:
        """Evaluate chunks on the pool; returns one ``(accuracies, duration)``
        per chunk, in submission order.

        Each payload dict carries ``noise_models`` / ``parameter_sets`` /
        ``shots`` / ``seeds`` / ``max_batch_bytes`` for one chunk (the
        argument set of :func:`repro.runtime.runner._evaluate_chunk`).  A
        worker that dies mid-chunk is respawned and its chunk resubmitted,
        so the call always returns complete results.
        """
        with self._lock:
            self._ensure_workers()
            model_bytes = pickle.dumps(model, protocol=pickle.HIGHEST_PROTOCOL)
            model_digest = hashlib.blake2b(model_bytes, digest_size=16).hexdigest()
            features_meta = self._store.share(features)
            labels_meta = self._store.share(labels)
            self.stats.arrays_shared = self._store.arrays_shared
            pending: deque[tuple[int, int, dict]] = deque()
            for chunk_index, chunk_payload in enumerate(chunk_payloads):
                payload = dict(chunk_payload)
                payload["model_digest"] = model_digest
                payload["model_bytes"] = model_bytes
                payload["features"] = features_meta
                payload["labels"] = labels_meta
                self._task_counter += 1
                pending.append((self._task_counter, chunk_index, payload))
            results: dict[int, tuple[list[float], float]] = {}
            expected = {task_id: index for task_id, index, _ in pending}
            total = len(pending)
            attempts: dict[int, int] = {}

            while len(results) < total:
                for worker in self._workers:
                    if pending and worker.current_task is None:
                        self._dispatch(worker, pending.popleft())
                try:
                    task_id, ok, value = self._outbox.get(timeout=self.poll_seconds)
                except Exception:
                    self._recover_dead_workers(attempts)
                    continue
                worker = self._active.pop(task_id, None)
                if worker is not None and worker.current_task is not None and (
                    worker.current_task[0] == task_id
                ):
                    worker.current_task = None
                if task_id not in expected:
                    # Straggler from an aborted earlier call — drop it.
                    continue
                if not ok:
                    raise ReproError(f"worker chunk evaluation failed:\n{value}")
                results[task_id] = value
                self.stats.tasks_completed += 1
            return [results[task_id] for task_id, _ in sorted(expected.items())]

    def _recover_dead_workers(self, attempts: dict[int, int]) -> None:
        """Respawn dead workers; resubmit the chunk each one was holding."""
        for worker in self._workers:
            if worker.process.is_alive():
                continue
            task = worker.current_task
            self._respawn(worker)
            if task is not None:
                task_id, chunk_index, payload = task
                attempts[task_id] = attempts.get(task_id, 1) + 1
                if attempts[task_id] > MAX_TASK_ATTEMPTS:
                    raise ReproError(
                        f"worker chunk {chunk_index} killed its worker "
                        f"{MAX_TASK_ATTEMPTS} times; giving up"
                    )
                self._active.pop(task_id, None)
                worker.current_task = None
                payload = {k: v for k, v in payload.items() if k != _CRASH_KEY}
                self.stats.tasks_resubmitted += 1
                self._dispatch(worker, (task_id, chunk_index, payload))

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def close(self, wait: bool = True) -> None:
        """Stop the workers and release every shared-memory block.

        With ``wait=True`` (default) the call first waits for any in-flight
        :meth:`run_chunks` to finish — both hold the pool lock — so no chunk
        is ever dropped mid-evaluation; ``wait=False`` terminates the
        workers immediately.
        """
        if self._closed:
            return
        if wait:
            self._lock.acquire()
        try:
            self._closed = True
            for worker in self._workers:
                if wait and worker.process.is_alive():
                    try:
                        worker.inbox.put(None)
                    except Exception:
                        pass
            for worker in self._workers:
                if wait:
                    worker.process.join(timeout=5.0)
                if worker.process.is_alive():
                    worker.process.terminate()
                    worker.process.join(timeout=5.0)
            self._workers.clear()
            self._active.clear()
            self._store.close()
        finally:
            if wait:
                self._lock.release()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        try:
            if not self._closed:
                self.close(wait=False)
        except Exception:
            pass
