"""Digest helpers and the evaluation-result cache used by the runner.

The longitudinal harnesses repeatedly evaluate the *same* (model
parameters, calibration day, eval subset) triples — e.g. Table I and
Fig. 7 share every QuCAD day, and reruns at the same scale repeat all of
them.  The cache keys each evaluation on content digests of exactly the
inputs that determine its outcome, so a hit is guaranteed to reproduce the
original numbers bit-for-bit, and can optionally persist to a JSONL file so
later processes warm-start from earlier runs.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.circuits import circuit_structure_digest
from repro.qnn.model import QNNModel
from repro.simulator import NoiseModel
from repro.utils.lru import lru_get, lru_put


def array_digest(array: Optional[np.ndarray]) -> str:
    """Content digest of an array (shape-aware; ``None`` digests distinctly)."""
    hasher = hashlib.blake2b(digest_size=16)
    if array is None:
        hasher.update(b"<none>")
    else:
        array = np.ascontiguousarray(array)
        hasher.update(str(array.shape).encode())
        hasher.update(str(array.dtype).encode())
        hasher.update(array.tobytes())
    return hasher.hexdigest()


def model_digest(model: QNNModel, parameters: Optional[np.ndarray] = None) -> str:
    """Digest of everything about ``model`` that affects an evaluation.

    Covers the ansatz structure, the effective parameter vector (an explicit
    ``parameters`` argument overrides the model's own, mirroring the
    evaluation APIs), the readout/logit configuration, the encoder, and —
    via :meth:`repro.transpiler.TranspiledCircuit.compilation_digest` — the
    device binding (routed structure, initial layout, final mapping, device
    topology).  Joining the compilation digest means a recompilation that
    landed on different artifacts changes every evaluation key, while an
    incremental recompile that provably reused yesterday's layout keeps
    yesterday's cache entries valid.
    """
    hasher = hashlib.blake2b(digest_size=16)
    hasher.update(circuit_structure_digest(model.ansatz).encode())
    effective = model.parameters if parameters is None else np.asarray(parameters)
    hasher.update(array_digest(effective).encode())
    hasher.update(str(model.readout_qubits).encode())
    hasher.update(repr(float(model.logit_scale)).encode())
    hasher.update(
        f"{model.encoder.num_qubits}|{model.encoder.num_features}|{model.encoder.scale!r}".encode()
    )
    if model.transpiled is not None:
        hasher.update(model.transpiled.compilation_digest().encode())
    return hasher.hexdigest()


def noise_model_digest(noise_model: Optional[NoiseModel]) -> str:
    """Digest of a noise model's channel strengths (order-independent)."""
    hasher = hashlib.blake2b(digest_size=16)
    if noise_model is None:
        hasher.update(b"<ideal>")
        return hasher.hexdigest()
    hasher.update(str(noise_model.num_qubits).encode())
    for qubit, error in sorted(noise_model.single_qubit_error.items()):
        hasher.update(f"sq:{qubit}:{error!r};".encode())
    for pair, error in sorted(noise_model.two_qubit_error.items()):
        hasher.update(f"cx:{pair}:{error!r};".encode())
    for qubit, error in sorted(noise_model.readout_error.items()):
        hasher.update(
            f"ro:{qubit}:{error.prob_1_given_0!r}:{error.prob_0_given_1!r};".encode()
        )
    return hasher.hexdigest()


def evaluation_key(
    model_key: str,
    noise_key: str,
    subset_key: str,
    shots: Optional[int],
    seed,
) -> str:
    """Compose the cache key for one (model, day, subset, sampling) binding."""
    return f"{model_key}/{noise_key}/{subset_key}/shots={shots}/seed={seed}"


PathLike = Union[str, Path]


#: Default in-memory entry bound of an :class:`EvaluationCache`.  An entry
#: is one small dict, so the bound is generous — its job is keeping a
#: long-lived server process from growing without limit, not squeezing
#: memory.
DEFAULT_CACHE_CAPACITY: int = 4096


class EvaluationCache:
    """Thread-safe (model, day, subset) → result cache with JSONL persistence.

    Values are JSON-serialisable dicts (the runner stores
    ``{"accuracy": float}``).  When constructed with a ``path``, existing
    entries are loaded eagerly and every ``put`` is appended, so a cache file
    doubles as a machine-readable record of all distinct evaluations.  The
    runner never caches unseeded sampled evaluations (``shots`` set,
    ``seed`` ``None``) — those are fresh random draws by contract.

    The in-memory side is bounded: at most ``capacity`` entries are held
    under an LRU discipline (shared :mod:`repro.utils.lru` helpers), so a
    long-lived process — the serving loop, a paper-scale sweep — cannot grow
    without bound.  Eviction only drops the *memory* copy; the JSONL backing
    file keeps every entry ever written (an evicted key re-misses and is
    recomputed, never served stale).
    """

    def __init__(
        self,
        path: Optional[PathLike] = None,
        capacity: int = DEFAULT_CACHE_CAPACITY,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._entries: OrderedDict[str, dict] = OrderedDict()
        self._lock = threading.Lock()
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.path = Path(path) if path is not None else None
        if self.path is not None and self.path.is_file():
            with self.path.open("r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    payload = json.loads(line)
                    # Replaying the append-only file in order leaves the
                    # most recently written entries resident.  Load-time
                    # trims are not runtime evictions, so the counter
                    # starts at zero below.
                    lru_put(
                        self._entries, payload["key"], payload["value"], capacity
                    )
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Optional[dict]:
        """The cached value for ``key``, or ``None`` (counts hit/miss stats)."""
        with self._lock:
            value = lru_get(self._entries, key)
            if value is None:
                self.misses += 1
            else:
                self.hits += 1
            return value

    def put(self, key: str, value: dict) -> None:
        """Store ``value`` under ``key`` (and append to the backing file)."""
        with self._lock:
            self.evictions += lru_put(self._entries, key, value, self.capacity)
            if self.path is not None:
                with self.path.open("a", encoding="utf-8") as handle:
                    handle.write(json.dumps({"key": key, "value": value}) + "\n")

    def stats(self) -> dict:
        """JSON-ready counters for the CLI stats block."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": self.hits / total if total else 0.0,
            }
