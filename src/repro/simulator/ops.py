"""Low-level batched tensor operations shared by both simulators.

State convention
----------------
Qubit 0 is the *most significant* bit of the computational-basis index
(big-endian): for ``n`` qubits, basis state ``|q0 q1 ... q_{n-1}>`` has index
``sum(bit_q << (n-1-q))``.

Batching convention
-------------------
Statevectors are arrays of shape ``(batch, 2**n)``; density matrices are
``(batch, 2**n, 2**n)``.  Gate matrices may be a single ``(d, d)`` array or a
per-sample stack ``(batch, d, d)`` (used by data-encoding layers whose angles
differ per sample).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.exceptions import SimulationError


def _check_qubits(qubits: Sequence[int], num_qubits: int) -> tuple[int, ...]:
    qubits = tuple(int(q) for q in qubits)
    if len(set(qubits)) != len(qubits):
        raise SimulationError(f"duplicate qubits {qubits}")
    for q in qubits:
        if not 0 <= q < num_qubits:
            raise SimulationError(f"qubit {q} out of range for {num_qubits} qubits")
    return qubits


def apply_unitary_statevector(
    states: np.ndarray,
    unitary: np.ndarray,
    qubits: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Apply ``unitary`` on ``qubits`` to a batch of statevectors.

    ``unitary`` may be ``(2**k, 2**k)`` or a per-sample stack
    ``(batch, 2**k, 2**k)`` where ``k = len(qubits)``.
    """
    qubits = _check_qubits(qubits, num_qubits)
    k = len(qubits)
    dim = 2**k
    batch = states.shape[0]
    if unitary.shape[-1] != dim:
        raise SimulationError(
            f"unitary of dimension {unitary.shape[-1]} does not match {k} qubits"
        )
    tensor = states.reshape((batch,) + (2,) * num_qubits)
    axes = [1 + q for q in qubits]
    tensor = np.moveaxis(tensor, axes, range(1, 1 + k))
    tensor = tensor.reshape(batch, dim, -1)
    if unitary.ndim == 3:
        tensor = np.einsum("bij,bjr->bir", unitary, tensor)
    else:
        tensor = np.einsum("ij,bjr->bir", unitary, tensor)
    tensor = tensor.reshape((batch,) + (2,) * num_qubits)
    tensor = np.moveaxis(tensor, range(1, 1 + k), axes)
    return tensor.reshape(batch, 2**num_qubits)


def apply_fused_statevector(
    states: np.ndarray,
    operations: Sequence,
    num_qubits: int,
) -> np.ndarray:
    """Apply a fused program to a batch of statevectors.

    ``operations`` is a sequence of ``(qubits, matrix)`` pairs (or objects
    unpacking to one, e.g. :class:`repro.simulator.engine.FusedGate`), each a
    multi-qubit unitary produced by gate fusion.  Applying them in order is
    equivalent to applying the source circuit gate-by-gate, with far fewer
    (and denser) tensor contractions.
    """
    for qubits, matrix in operations:
        states = apply_unitary_statevector(states, matrix, qubits, num_qubits)
    return states


def apply_fused_density(
    rho: np.ndarray,
    operations: Sequence,
    num_qubits: int,
) -> np.ndarray:
    """Apply a fused program to a batch of density matrices (noise-free)."""
    for qubits, matrix in operations:
        rho = apply_unitary_density(rho, matrix, qubits, num_qubits)
    return rho


def statevector_axis_permutation(
    qubits: Sequence[int], num_qubits: int
) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Precompute the tensor transposition for one fused-gate application.

    Returns ``(perm, inverse)``: ``perm`` brings the batch axis first and the
    target-qubit axes next (in gate order); ``inverse`` undoes it.  Computing
    these once at circuit-compile time removes the per-call ``moveaxis``
    bookkeeping from the execution hot loop.
    """
    qubits = _check_qubits(qubits, num_qubits)
    target_axes = [1 + q for q in qubits]
    rest = [axis for axis in range(1, 1 + num_qubits) if axis not in target_axes]
    perm = (0, *target_axes, *rest)
    inverse = tuple(int(i) for i in np.argsort(perm))
    return perm, inverse


def apply_compiled_statevector(
    states: np.ndarray,
    steps: Sequence[tuple[np.ndarray, int, tuple[int, ...], tuple[int, ...]]],
    num_qubits: int,
) -> np.ndarray:
    """Apply a fully precompiled program to a batch of statevectors.

    Each step is ``(matrix, dim, perm, inverse)`` with the permutations from
    :func:`statevector_axis_permutation`.  The batch stays in tensor form for
    the whole program (one reshape in, one out) and each fused unitary is a
    single broadcast ``matmul`` — this is the engine's cache-hit fast path.
    """
    batch = states.shape[0]
    tensor_shape = (batch,) + (2,) * num_qubits
    tensor = states.reshape(tensor_shape)
    for matrix, dim, perm, inverse in steps:
        moved = tensor.transpose(perm)
        flat = moved.reshape(batch, dim, -1)
        flat = matrix @ flat
        tensor = flat.reshape(moved.shape).transpose(inverse)
    return tensor.reshape(batch, 2**num_qubits)


def apply_compiled_statevector_multi(
    states: np.ndarray,
    steps: Sequence[tuple[np.ndarray, int, tuple[int, ...], tuple[int, ...]]],
    num_qubits: int,
) -> np.ndarray:
    """Apply a *stacked* compiled program to stacked statevector batches.

    ``states`` has shape ``(groups, batch, 2**n)`` — one batch of samples per
    parameter binding (group).  Each step is ``(matrices, dim, perm, inverse)``
    where ``matrices`` is a ``(groups, d, d)`` stack holding group ``g``'s
    fused unitary, and ``perm`` / ``inverse`` are the single-program
    permutations from :func:`statevector_axis_permutation` (they are shifted
    by one axis here to skip the leading group axis).

    Every elementary product is the same broadcast ``matmul`` the
    single-program path performs, so the result is bit-identical to running
    :func:`apply_compiled_statevector` once per group.
    """
    groups, batch = states.shape[0], states.shape[1]
    tensor = states.reshape((groups, batch) + (2,) * num_qubits)
    for matrices, dim, perm, inverse in steps:
        gperm = (0,) + tuple(p + 1 for p in perm)
        ginverse = (0,) + tuple(p + 1 for p in inverse)
        moved = tensor.transpose(gperm)
        flat = moved.reshape(groups, batch, dim, -1)
        if matrices.ndim == 2:
            flat = matrices @ flat
        else:
            flat = np.matmul(matrices[:, None, :, :], flat)
        tensor = flat.reshape(moved.shape).transpose(ginverse)
    return tensor.reshape(groups, batch, 2**num_qubits)


def _move_density_axes(
    rho: np.ndarray, qubits: Sequence[int], num_qubits: int
) -> tuple[np.ndarray, int]:
    """Reshape a density batch so the target qubits' row/col axes lead.

    Returns the reshaped tensor of shape ``(batch, d, d, rest)`` where
    ``d = 2**len(qubits)`` and ``rest`` collects all remaining row and column
    indices, plus the value of ``d``.  Used by the gate, Kraus, and
    depolarizing appliers.
    """
    k = len(qubits)
    d = 2**k
    batch = rho.shape[0]
    tensor = rho.reshape((batch,) + (2,) * (2 * num_qubits))
    row_axes = [1 + q for q in qubits]
    col_axes = [1 + num_qubits + q for q in qubits]
    tensor = np.moveaxis(tensor, row_axes + col_axes, list(range(1, 1 + 2 * k)))
    tensor = tensor.reshape(batch, d, d, -1)
    return tensor, d


def _restore_density_axes(
    tensor: np.ndarray, qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Inverse of :func:`_move_density_axes`."""
    k = len(qubits)
    batch = tensor.shape[0]
    tensor = tensor.reshape((batch,) + (2,) * (2 * num_qubits))
    row_axes = [1 + q for q in qubits]
    col_axes = [1 + num_qubits + q for q in qubits]
    tensor = np.moveaxis(tensor, list(range(1, 1 + 2 * k)), row_axes + col_axes)
    dim = 2**num_qubits
    return tensor.reshape(batch, dim, dim)


def _diagonal_of(unitary: np.ndarray):
    """The diagonal(s) of a (stack of) matrices, or ``None`` if not diagonal."""
    eye = np.eye(unitary.shape[-1], dtype=bool)
    if unitary.ndim == 2:
        if np.any(unitary[~eye]):
            return None
        return np.diagonal(unitary)
    if np.any(unitary[:, ~eye]):
        return None
    return np.diagonal(unitary, axis1=1, axis2=2)


def _apply_diagonal_density(
    rho: np.ndarray, diag: np.ndarray, qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """``U rho U^dagger`` for diagonal ``U`` as one elementwise phase pass.

    Roughly half the gates of a basis-translated circuit are virtual ``rz``
    rotations (diagonal), so skipping the tensor transposition/contraction
    machinery for them dominates the noisy walk's throughput.
    """
    dim = rho.shape[-1]
    k = len(qubits)
    indices = np.arange(dim)
    sub = np.zeros(dim, dtype=np.int64)
    for position, qubit in enumerate(qubits):
        sub |= ((indices >> (num_qubits - 1 - qubit)) & 1) << (k - 1 - position)
    # The phase outer product must be bound to a name before the multiply:
    # a refcount-1 temporary lets numpy elide it into an in-place multiply
    # (for operands >= the elision size threshold), whose complex kernel
    # rounds the last bit differently — making the result depend on batch
    # size and breaking the bit-identity contract between the stacked and
    # per-binding paths.
    if diag.ndim == 1:
        row = diag[sub]
        phase = (row[:, None] * row.conj()[None, :])[None, :, :]
        return rho * phase
    row = diag[:, sub]
    phase = row[:, :, None] * row.conj()[:, None, :]
    return rho * phase


def _monomial_of(unitary: np.ndarray):
    """``(perm, phases)`` of a monomial matrix (one entry per row/column).

    ``U[i, perm[i]] == phases[i]`` and every other entry is exactly zero;
    returns ``None`` for anything else.  CNOT / X / SWAP are monomial, so a
    basis-translated circuit's two-qubit layer takes this path.
    """
    nonzero = unitary != 0
    if not np.array_equal(nonzero.sum(axis=0), np.ones(unitary.shape[-1], dtype=np.intp)):
        return None
    if not np.array_equal(nonzero.sum(axis=1), np.ones(unitary.shape[-1], dtype=np.intp)):
        return None
    perm = nonzero.argmax(axis=1)
    phases = unitary[np.arange(unitary.shape[-1]), perm]
    return perm, phases


def _full_register_subindex(
    qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """For each basis index, the sub-index formed by the target qubits' bits."""
    dim = 2**num_qubits
    k = len(qubits)
    indices = np.arange(dim)
    sub = np.zeros(dim, dtype=np.int64)
    for position, qubit in enumerate(qubits):
        sub |= ((indices >> (num_qubits - 1 - qubit)) & 1) << (k - 1 - position)
    return sub


def _monomial_full_permutation(
    perm: np.ndarray,
    phases: np.ndarray,
    qubits: Sequence[int],
    num_qubits: int,
) -> tuple[np.ndarray, Optional[np.ndarray]]:
    """Lift a k-qubit monomial gate to the full register.

    Returns ``(full_perm, full_phases)`` such that
    ``(U rho U^dagger)[i, j] = full_phases[i] conj(full_phases[j])
    rho[full_perm[i], full_perm[j]]``; ``full_phases`` is ``None`` when every
    phase is exactly one (a pure permutation, e.g. CNOT).
    """
    dim = 2**num_qubits
    num = num_qubits
    sub = _full_register_subindex(qubits, num)
    target_sub = perm[sub]
    k = len(qubits)
    cleared = np.arange(dim)
    for qubit in qubits:
        cleared &= ~(1 << (num - 1 - qubit))
    full_perm = cleared.copy()
    for position, qubit in enumerate(qubits):
        full_perm |= ((target_sub >> (k - 1 - position)) & 1) << (num - 1 - qubit)
    full_phases = phases[sub]
    if np.array_equal(full_phases, np.ones(dim)):
        return full_perm, None
    return full_perm, full_phases


def _apply_monomial_density(
    rho: np.ndarray,
    perm: np.ndarray,
    phases: np.ndarray,
    qubits: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """``U rho U^dagger`` for monomial ``U`` as one gather (+ phase) pass.

    ``(U rho U^dagger)[i, j] = phases[i] conj(phases[j]) rho[perm[i], perm[j]]``
    lifted to the full register, so a CNOT costs an indexed copy instead of
    two tensor contractions.
    """
    full_perm, full_phases = _monomial_full_permutation(
        perm, phases, qubits, num_qubits
    )
    gathered = rho[:, full_perm[:, None], full_perm[None, :]]
    if full_phases is None:
        return gathered
    # Named to defeat numpy temporary elision — see _apply_diagonal_density.
    phase = full_phases[:, None] * full_phases.conj()[None, :]
    return gathered * phase


def apply_unitary_density(
    rho: np.ndarray,
    unitary: np.ndarray,
    qubits: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Apply ``U rho U^dagger`` on ``qubits`` to a batch of density matrices.

    Diagonal unitaries (``rz`` and friends) take a one-pass elementwise
    phase path, monomial unitaries (CNOT / X / SWAP) a one-pass gather;
    everything else goes through the general tensor contraction.
    """
    qubits = _check_qubits(qubits, num_qubits)
    dim = 2 ** len(qubits)
    if unitary.shape[-1] != dim:
        raise SimulationError(
            f"unitary of dimension {unitary.shape[-1]} does not match {len(qubits)} qubits"
        )
    diag = _diagonal_of(unitary)
    if diag is not None:
        return _apply_diagonal_density(rho, diag, qubits, num_qubits)
    if unitary.ndim == 2:
        monomial = _monomial_of(unitary)
        if monomial is not None:
            return _apply_monomial_density(
                rho, monomial[0], monomial[1], qubits, num_qubits
            )
    tensor, _ = _move_density_axes(rho, qubits, num_qubits)
    if unitary.ndim == 3:
        tensor = np.einsum("bij,bjkr->bikr", unitary, tensor)
        tensor = np.einsum("bikr,bjk->bijr", tensor, unitary.conj())
    else:
        tensor = np.einsum("ij,bjkr->bikr", unitary, tensor)
        tensor = np.einsum("bikr,jk->bijr", tensor, unitary.conj())
    return _restore_density_axes(tensor, qubits, num_qubits)


def apply_kraus_density(
    rho: np.ndarray,
    kraus_operators: Sequence[np.ndarray],
    qubits: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Apply a Kraus channel ``sum_k K rho K^dagger`` on ``qubits``."""
    qubits = _check_qubits(qubits, num_qubits)
    tensor, _ = _move_density_axes(rho, qubits, num_qubits)
    result = np.zeros_like(tensor)
    for kraus in kraus_operators:
        # Operators arrive complex128 from the channel definitions; cast to
        # the state's precision so the contraction never upcasts mid-walk
        # (a no-op on the float64 default path).
        kraus = np.asarray(kraus).astype(tensor.dtype, copy=False)
        term = np.einsum("ij,bjkr->bikr", kraus, tensor)
        term = np.einsum("bikr,jk->bijr", term, kraus.conj())
        result += term
    return _restore_density_axes(result, qubits, num_qubits)


def apply_depolarizing_density(
    rho: np.ndarray,
    probability,
    qubits: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Apply a depolarizing channel with "replace" probability ``probability``.

    ``rho -> (1 - p) rho + p * (I/d)_Q (x) Tr_Q(rho)`` where ``Q`` is the set
    of target qubits.  This closed form avoids enumerating Pauli Kraus
    operators, which matters because the channel follows every noisy gate.

    ``probability`` may be a scalar (one channel strength for the whole
    batch) or a ``(batch,)`` array assigning each batch element its own
    strength — the form the batched multi-noise-model execution path uses to
    evolve many calibration days in one call.
    """
    probability = np.asarray(probability, dtype=float)
    if np.any(probability < 0) or np.any(probability > 1):
        raise SimulationError(f"depolarizing probability {probability} outside [0, 1]")
    if not np.any(probability):
        return rho
    if probability.ndim not in (0, 1):
        raise SimulationError("depolarizing probability must be a scalar or 1-D array")
    if probability.ndim == 1:
        if probability.shape[0] != rho.shape[0]:
            raise SimulationError(
                f"per-sample probabilities of length {probability.shape[0]} do not "
                f"match batch size {rho.shape[0]}"
            )
        # A uniform vector blends bit-identically to its scalar, and the
        # scalar path is markedly cheaper — collapse eagerly.
        if np.all(probability == probability[0]):
            probability = probability[0]
    qubits = _check_qubits(qubits, num_qubits)
    tensor, d = _move_density_axes(rho, qubits, num_qubits)
    traced = np.einsum("biir->br", tensor)
    mixed = np.zeros_like(tensor)
    identity_indices = np.arange(d)
    mixed[:, identity_indices, identity_indices, :] = traced[:, None, :] / d
    if probability.ndim == 1:
        probability = probability[:, None, None, None]
    # Blend in the state's real precision: a float64 coefficient times a
    # complex64 tensor would silently upcast the whole walk (NEP 50).  At
    # the float64 default this cast is a bit-identical no-op.
    probability = probability.astype(tensor.real.dtype, copy=False)
    blended = (1.0 - probability) * tensor + probability * mixed
    return _restore_density_axes(blended, qubits, num_qubits)


# ---------------------------------------------------------------------------
# Day-stacked walk kernels
# ---------------------------------------------------------------------------
#
# The longitudinal sweeps evaluate one bound circuit across many calibration
# days at once.  The kernels below let the engine walk that day-stacked
# super-batch without the per-gate transpose/allocate traffic of the generic
# appliers: dense gates contract in place via precomputed einsum subscripts,
# diagonal/monomial gates become one elementwise (or gather) pass, and the
# depolarizing channel updates the density batch in place through
# diagonal-block views.  Every kernel is bit-identical to its out-of-place
# counterpart above, up to the sign of zeros.

_EINSUM_LETTERS = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"


def density_gate_subscripts(
    qubits: Sequence[int], num_qubits: int
) -> tuple[str, str]:
    """Einsum subscripts applying ``U . U^dagger`` on a tensorised batch.

    The density batch is viewed as ``(batch,) + (2,) * (2 * num_qubits)``
    (row axes, then column axes).  The first subscript contracts ``U`` into
    the target qubits' row axes, the second contracts ``conj(U)`` into their
    column axes; both preserve the axis order of the input, so the result can
    be written straight into a same-shape ``out=`` buffer with no transpose
    copies.  The gate operand must be reshaped to ``(2,) * (2 * k)``.
    """
    qubits = _check_qubits(qubits, num_qubits)
    k = len(qubits)
    needed = 1 + 2 * num_qubits + 2 * k
    if needed > len(_EINSUM_LETTERS):
        raise SimulationError(
            f"day-stacked gate subscripts need {needed} einsum labels for "
            f"{num_qubits} qubits; only {len(_EINSUM_LETTERS)} exist"
        )
    axes = list(_EINSUM_LETTERS[: 1 + 2 * num_qubits])
    out_labels = _EINSUM_LETTERS[1 + 2 * num_qubits : 1 + 2 * num_qubits + k]
    sum_labels = _EINSUM_LETTERS[1 + 2 * num_qubits + k : needed]

    def subscript(offset: int) -> str:
        source = list(axes)
        target = list(axes)
        for position, qubit in enumerate(qubits):
            source[offset + qubit] = sum_labels[position]
            target[offset + qubit] = out_labels[position]
        return f"{out_labels}{sum_labels},{''.join(source)}->{''.join(target)}"

    return subscript(1), subscript(1 + num_qubits)


def density_diagonal_row(
    diag: np.ndarray, qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Lift a k-qubit diagonal to the full register: ``row[i] = diag[sub(i)]``.

    ``row[:, None] * row.conj()[None, :]`` is then the elementwise factor a
    diagonal gate applies to a density matrix (the factor
    :func:`_apply_diagonal_density` builds internally).
    """
    qubits = _check_qubits(qubits, num_qubits)
    return diag[_full_register_subindex(qubits, num_qubits)]


def density_monomial_gather(
    perm: np.ndarray,
    phases: np.ndarray,
    qubits: Sequence[int],
    num_qubits: int,
) -> tuple[np.ndarray, Optional[np.ndarray]]:
    """Precompute the flat gather a monomial gate performs on a density batch.

    Returns ``(gather, phase_row)``: ``gather`` indexes the flattened
    ``(dim * dim,)`` view of each density matrix so that
    ``rho_flat[:, gather]`` equals the gathered matrix of
    :func:`_apply_monomial_density`, and ``phase_row`` is the full-register
    phase vector (``None`` for pure permutations).
    """
    qubits = _check_qubits(qubits, num_qubits)
    full_perm, full_phases = _monomial_full_permutation(
        perm, phases, qubits, num_qubits
    )
    dim = full_perm.shape[0]
    gather = (full_perm[:, None] * dim + full_perm[None, :]).ravel()
    return gather, full_phases


def apply_depolarizing_density_stacked(
    rho: np.ndarray,
    probability,
    qubits: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """In-place depolarizing channel on a day-stacked density super-batch.

    Same channel as :func:`apply_depolarizing_density` — bit-identical up to
    the sign of zeros (off-diagonal entries keep their signed zeros instead
    of being canonicalised by an explicit ``+ p * 0``) — but it mutates
    ``rho`` through diagonal-block views instead of materialising the mixed
    state, removing two super-batch-sized allocations and the axis-move
    copies from the hot walk.  ``rho`` must be a C-contiguous
    ``(batch, 2**n, 2**n)`` array the caller owns; it is returned mutated.
    """
    probability = np.asarray(probability, dtype=float)
    if np.any(probability < 0) or np.any(probability > 1):
        raise SimulationError(f"depolarizing probability {probability} outside [0, 1]")
    if not np.any(probability):
        return rho
    if probability.ndim not in (0, 1):
        raise SimulationError("depolarizing probability must be a scalar or 1-D array")
    batch = rho.shape[0]
    if probability.ndim == 1 and probability.shape[0] != batch:
        raise SimulationError(
            f"per-sample probabilities of length {probability.shape[0]} do not "
            f"match batch size {batch}"
        )
    qubits = _check_qubits(qubits, num_qubits)
    k = len(qubits)
    d = 2**k
    tensor = rho.reshape((batch,) + (2,) * (2 * num_qubits))
    # One view per diagonal sub-block of the target qubits: row bits == col
    # bits == s.  Summing them in s order reproduces the partial trace of
    # the out-of-place path (einsum accumulates the traced index in the same
    # order), and adding the blended term back through the views writes the
    # mixed state exactly where the dense ``mixed`` array is non-zero.
    views = []
    for state in range(d):
        index: list = [slice(None)] * (1 + 2 * num_qubits)
        for position, qubit in enumerate(qubits):
            bit = (state >> (k - 1 - position)) & 1
            index[1 + qubit] = bit
            index[1 + num_qubits + qubit] = bit
        views.append(tensor[tuple(index)])
    traced = views[0] + views[1]
    for state in range(2, d):
        traced = traced + views[state]
    # Keep the channel coefficients in the state's real precision so the
    # in-place multiplies never upcast a complex64 walk (no-op at float64).
    probability = probability.astype(rho.real.dtype, copy=False)
    if probability.ndim == 1:
        scale = probability.reshape((batch,) + (1,) * (traced.ndim - 1))
        term = scale * (traced / d)
        np.multiply(rho, (1.0 - probability)[:, None, None], out=rho)
    else:
        term = probability * (traced / d)
        np.multiply(rho, 1.0 - probability, out=rho)
    for view in views:
        view += term
    return rho


def partial_trace(
    rho: np.ndarray, keep_qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Trace out every qubit not in ``keep_qubits``.

    The kept qubits appear in the output in the order given.
    """
    keep = _check_qubits(keep_qubits, num_qubits)
    remove = [q for q in range(num_qubits) if q not in keep]
    if not remove:
        return rho
    tensor, _ = _move_density_axes(rho, remove, num_qubits)
    traced = np.einsum("biir->br", tensor)
    kept = len(keep)
    batch = rho.shape[0]
    # After tracing, the remaining axes are the kept row indices followed by
    # the kept column indices, ordered by original qubit index.
    remaining_order = sorted(keep)
    traced = traced.reshape((batch,) + (2,) * (2 * kept))
    # Reorder kept qubits to the requested order.
    perm = [remaining_order.index(q) for q in keep]
    row_src = [1 + remaining_order.index(q) for q in keep]
    col_src = [1 + kept + remaining_order.index(q) for q in keep]
    traced = np.moveaxis(traced, row_src + col_src, list(range(1, 1 + 2 * kept)))
    dim = 2**kept
    return traced.reshape(batch, dim, dim)


def statevector_probabilities(states: np.ndarray) -> np.ndarray:
    """Computational-basis probabilities of a batch of statevectors."""
    return np.abs(states) ** 2


def density_probabilities(rho: np.ndarray) -> np.ndarray:
    """Computational-basis probabilities (diagonal) of density matrices."""
    diag = np.einsum("bii->bi", rho).real
    return np.clip(diag, 0.0, None)


def apply_readout_confusion(
    probabilities: np.ndarray,
    confusion: dict[int, np.ndarray],
    num_qubits: int,
) -> np.ndarray:
    """Apply per-qubit readout confusion matrices to basis probabilities.

    ``confusion[q]`` is a 2x2 matrix ``M`` with ``M[reported, true]``; qubits
    missing from the dict are read out perfectly.
    """
    batch = probabilities.shape[0]
    tensor = probabilities.reshape((batch,) + (2,) * num_qubits)
    for qubit, matrix in confusion.items():
        if not 0 <= qubit < num_qubits:
            raise SimulationError(f"readout qubit {qubit} out of range")
        axis = 1 + qubit
        tensor = np.moveaxis(tensor, axis, 1)
        shape = tensor.shape
        flat = tensor.reshape(batch, 2, -1)
        flat = np.einsum(
            "ij,bjr->bir", np.asarray(matrix, dtype=probabilities.dtype), flat
        )
        tensor = flat.reshape(shape)
        tensor = np.moveaxis(tensor, 1, axis)
    return tensor.reshape(batch, 2**num_qubits)


def expectation_z(probabilities: np.ndarray, qubit: int, num_qubits: int) -> np.ndarray:
    """Expectation value of Pauli-Z on ``qubit`` from basis probabilities."""
    indices = np.arange(probabilities.shape[-1])
    bits = (indices >> (num_qubits - 1 - qubit)) & 1
    signs = (1.0 - 2.0 * bits).astype(probabilities.dtype, copy=False)
    return probabilities @ signs


def marginal_probabilities(
    probabilities: np.ndarray, qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Marginal distribution over ``qubits`` (in the given order)."""
    qubits = _check_qubits(qubits, num_qubits)
    batch = probabilities.shape[0]
    tensor = probabilities.reshape((batch,) + (2,) * num_qubits)
    axes = [1 + q for q in qubits]
    tensor = np.moveaxis(tensor, axes, range(1, 1 + len(qubits)))
    tensor = tensor.reshape(batch, 2 ** len(qubits), -1)
    return tensor.sum(axis=-1)


def sample_counts(
    probabilities: np.ndarray, shots: int, rng: np.random.Generator
) -> np.ndarray:
    """Sample measurement counts for each batch element.

    Returns an integer array with the same shape as ``probabilities`` whose
    rows sum to ``shots``.
    """
    if shots <= 0:
        raise SimulationError(f"shots must be positive, got {shots}")
    # Normalise in float64 regardless of the walk's precision:
    # ``rng.multinomial`` rejects pvals that sum above 1, which float32
    # rows can do once cast up.  Bit-identical for float64 input.
    normalized = np.asarray(probabilities, dtype=np.float64)
    normalized = normalized / normalized.sum(axis=-1, keepdims=True)
    counts = np.empty_like(normalized, dtype=np.int64)
    for index, row in enumerate(normalized):
        counts[index] = rng.multinomial(shots, row)
    return counts
