"""Batched noise-free statevector simulator.

Used for training (fast adjoint gradients) and as the 'perfect environment'
reference ``W_p(theta)`` in the paper's formulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.circuits import QuantumCircuit
from repro.exceptions import SimulationError
from repro.simulator import ops


@dataclass
class StatevectorResult:
    """Final states of a batched statevector simulation."""

    states: np.ndarray
    num_qubits: int

    def probabilities(self) -> np.ndarray:
        """Computational-basis probabilities, shape ``(batch, 2**n)``."""
        return ops.statevector_probabilities(self.states)

    def expectation_z(self, qubits: Sequence[int]) -> np.ndarray:
        """Pauli-Z expectations on ``qubits``, shape ``(batch, len(qubits))``."""
        probs = self.probabilities()
        columns = [ops.expectation_z(probs, q, self.num_qubits) for q in qubits]
        return np.stack(columns, axis=1)


class StatevectorSimulator:
    """Apply a bound circuit to a batch of initial statevectors.

    ``dtype`` is the complex working precision; the float64 default
    (complex128) is bit-identical to the historical behaviour, while
    complex64 is the engine's fast tier.
    """

    def __init__(self, num_qubits: int, dtype=np.complex128):
        if num_qubits <= 0:
            raise SimulationError(f"num_qubits must be positive, got {num_qubits}")
        self.num_qubits = num_qubits
        self.dim = 2**num_qubits
        self.dtype = np.dtype(dtype)
        if self.dtype.kind != "c":
            raise SimulationError(f"statevector dtype must be complex, got {dtype!r}")

    def zero_state(self, batch: int = 1) -> np.ndarray:
        """The ``|0...0>`` state replicated ``batch`` times."""
        states = np.zeros((batch, self.dim), dtype=self.dtype)
        states[:, 0] = 1.0
        return states

    def run(
        self,
        circuit: QuantumCircuit,
        initial_states: Optional[np.ndarray] = None,
        batch: int = 1,
    ) -> StatevectorResult:
        """Execute ``circuit`` and return the final states.

        Parameters
        ----------
        circuit:
            A fully bound circuit (no unbound ``param_ref``).
        initial_states:
            Optional ``(batch, 2**n)`` array of initial states; defaults to
            ``|0...0>``.
        batch:
            Batch size when ``initial_states`` is omitted.
        """
        if circuit.num_qubits != self.num_qubits:
            raise SimulationError(
                f"circuit has {circuit.num_qubits} qubits, simulator expects "
                f"{self.num_qubits}"
            )
        if initial_states is None:
            states = self.zero_state(batch)
        else:
            states = np.array(initial_states, dtype=self.dtype, copy=True)
            if states.ndim == 1:
                states = states[None, :]
            if states.shape[-1] != self.dim:
                raise SimulationError(
                    f"initial states of dimension {states.shape[-1]} do not match "
                    f"{self.num_qubits} qubits"
                )
        for gate in circuit.gates:
            states = ops.apply_unitary_statevector(
                states,
                gate.matrix().astype(self.dtype, copy=False),
                gate.qubits,
                self.num_qubits,
            )
        return StatevectorResult(states=states, num_qubits=self.num_qubits)

    def apply_feature_rotations(
        self,
        states: np.ndarray,
        gate_name: str,
        qubit: int,
        angles: np.ndarray,
    ) -> np.ndarray:
        """Apply one rotation gate with a *per-sample* angle.

        Data-encoding layers rotate each sample by its own feature value, so
        the unitary is a ``(batch, 2, 2)`` stack, built in one vectorised
        shot by :func:`repro.gates.matrices.rotation_stack`.
        """
        matrices = _feature_rotation_stack(gate_name, angles)
        matrices = matrices.astype(states.dtype, copy=False)
        return ops.apply_unitary_statevector(states, matrices, [qubit], self.num_qubits)


def _feature_rotation_stack(gate_name: str, angles: np.ndarray) -> np.ndarray:
    """Validated ``(batch, 2, 2)`` stack for a per-sample encoding rotation.

    Uses the vectorised constructors for the standard rotation axes and
    falls back to a per-sample loop for any other single-qubit parametric
    gate registered later.
    """
    from repro.gates import GATE_REGISTRY
    from repro.gates.matrices import rotation_stack

    spec = GATE_REGISTRY[gate_name]
    if spec.num_params != 1 or spec.num_qubits != 1:
        raise SimulationError(
            f"feature rotations require a single-qubit parametric gate, got {gate_name!r}"
        )
    try:
        return rotation_stack(gate_name, angles)
    except KeyError:
        return np.stack([spec.matrix_fn(float(a)) for a in angles])
