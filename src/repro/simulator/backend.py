"""Unified execution backends: one ``execute`` entry point for every path.

Historically each consumer (``qnn/model.py``, ``qnn/trainer.py``,
``core/manager.py``, ...) constructed its own
:class:`~repro.simulator.statevector.StatevectorSimulator` or
:class:`~repro.simulator.density_matrix.DensityMatrixSimulator` ad hoc, so
nothing was shared or cached between calls.  This module funnels all of them
through a single protocol::

    backend = get_execution_backend("statevector")
    result = backend.execute(circuit, initial_states, parameters=theta)
    logits = result.expectation_z(readout_qubits)

Three backends cover the paper's three execution regimes:

* :class:`StatevectorBackend` — the ideal environment ``W_p(theta)``
  (noise-free statevector simulation, compiled + fused via the
  :class:`~repro.simulator.engine.SimulationEngine`);
* :class:`DensityMatrixBackend` — the noisy environment ``W_n(theta)``
  (density matrices under a calibration-derived noise model);
* :class:`TrajectoryBackend` — hardware emulation: ideal evolution followed
  by shot sampling of the measurement distribution (the Fig. 8 regime).

Every backend shares one :class:`SimulationEngine`, so compiled programs are
reused across models, trainers, and the repository manager.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, Sequence, Union, runtime_checkable

import numpy as np

from repro.circuits import QuantumCircuit
from repro.exceptions import SimulationError
from repro.simulator import ops
from repro.simulator.density_matrix import DensityMatrixResult, DensityMatrixSimulator
from repro.simulator.engine import (
    SimulationEngine,
    circuit_structure_digest,
    default_engine,
    parameter_digest,
)
from repro.simulator.noise_model import NoiseModel
from repro.simulator.statevector import StatevectorResult, StatevectorSimulator
from repro.utils.rng import SeedLike, ensure_rng

CircuitOrCircuits = Union[QuantumCircuit, Sequence[QuantumCircuit]]

NoiseModelOrModels = Union[None, NoiseModel, Sequence[Optional[NoiseModel]]]


@runtime_checkable
class Backend(Protocol):
    """The unified execution interface.

    ``execute`` accepts a single circuit (returning a single result) or a
    sequence of circuits (returning a list of results, one per circuit, all
    sharing the same initial states).  Results expose ``probabilities()`` and
    ``expectation_z(qubits)`` regardless of the underlying representation.

    ``execute_batch`` is the vectorised many-bindings entry point: one
    circuit structure, many parameter bindings / noise models / seeds, one
    result per binding.  Backends without a vectorised path satisfy the
    protocol through the per-item loop fallback, which is also the
    correctness reference the vectorised paths must bit-match.
    """

    name: str

    def execute(
        self,
        circuits: CircuitOrCircuits,
        initial_states: Optional[np.ndarray] = None,
        *,
        parameters: Optional[np.ndarray] = None,
        batch: int = 1,
        noise_model: Optional[NoiseModel] = None,
        shots: Optional[int] = None,
        seed: SeedLike = None,
    ):
        """Run the circuit(s) and return result object(s)."""
        ...

    def execute_batch(
        self,
        circuits: CircuitOrCircuits,
        parameter_sets: Optional[Sequence[Optional[np.ndarray]]] = None,
        initial_states: Optional[np.ndarray] = None,
        *,
        batch: int = 1,
        noise_models: NoiseModelOrModels = None,
        shots: Optional[int] = None,
        seeds: Optional[Sequence[SeedLike]] = None,
    ) -> list:
        """Run many bindings of one program; one result per binding."""
        ...

    def simulator(self, num_qubits: int):
        """A (cached) low-level simulator for state preparation/encoding."""
        ...


class _EngineBackend:
    """Shared plumbing: engine handle, simulator cache, list dispatch."""

    name = "abstract"
    #: Rank of one *shared* initial-state array (statevectors: ``(batch, dim)``
    #: is rank 2; density matrices: rank 3).  One rank higher means the caller
    #: supplied per-binding stacks.
    _state_rank = 2

    def __init__(self, engine: Optional[SimulationEngine] = None):
        self.engine = engine if engine is not None else default_engine()
        self._simulators: dict[int, object] = {}

    def _make_simulator(self, num_qubits: int):
        raise NotImplementedError

    def simulator(self, num_qubits: int):
        """Per-qubit-count simulator, constructed once and reused."""
        simulator = self._simulators.get(num_qubits)
        if simulator is None:
            simulator = self._make_simulator(num_qubits)
            self._simulators[num_qubits] = simulator
        return simulator

    def execute(
        self,
        circuits: CircuitOrCircuits,
        initial_states: Optional[np.ndarray] = None,
        *,
        parameters: Optional[np.ndarray] = None,
        batch: int = 1,
        noise_model: Optional[NoiseModel] = None,
        shots: Optional[int] = None,
        seed: SeedLike = None,
    ):
        if isinstance(circuits, QuantumCircuit):
            return self._execute_one(
                circuits,
                initial_states,
                parameters=parameters,
                batch=batch,
                noise_model=noise_model,
                shots=shots,
                seed=seed,
            )
        return [
            self._execute_one(
                circuit,
                initial_states,
                parameters=parameters,
                batch=batch,
                noise_model=noise_model,
                shots=shots,
                seed=seed,
            )
            for circuit in circuits
        ]

    def _execute_one(self, circuit, initial_states, **kwargs):
        raise NotImplementedError

    # -- batched execution ----------------------------------------------
    def _normalize_batch(
        self,
        circuits: CircuitOrCircuits,
        parameter_sets,
        initial_states,
        noise_models,
        seeds,
    ):
        """Broadcast the batch arguments to per-binding lists.

        Returns ``(circuits, parameter_sets, initial_states, noise_models,
        seeds)`` where every element is a list of the common batch length and
        ``initial_states`` is either ``None``, a shared array, or a
        per-binding list of arrays.
        """
        lengths = []
        if not isinstance(circuits, QuantumCircuit):
            circuits = list(circuits)
            lengths.append(len(circuits))
        if parameter_sets is not None:
            parameter_sets = list(parameter_sets)
            lengths.append(len(parameter_sets))
        if isinstance(noise_models, Sequence):
            noise_models = list(noise_models)
            lengths.append(len(noise_models))
        if seeds is not None:
            seeds = list(seeds)
            lengths.append(len(seeds))
        per_item_states = None
        if initial_states is not None:
            initial_states = np.asarray(initial_states)
            if initial_states.ndim > self._state_rank:
                per_item_states = list(initial_states)
                lengths.append(len(per_item_states))
        if not lengths:
            raise SimulationError(
                "execute_batch needs at least one per-binding sequence "
                "(parameter_sets, circuits, noise_models, seeds, or stacked "
                "initial states)"
            )
        count = lengths[0]
        if any(length != count for length in lengths):
            raise SimulationError(
                f"execute_batch received mismatched batch lengths {lengths}"
            )
        if isinstance(circuits, QuantumCircuit):
            circuits = [circuits] * count
        if parameter_sets is None:
            parameter_sets = [None] * count
        if not isinstance(noise_models, list):
            noise_models = [noise_models] * count
        if seeds is None:
            seeds = [None] * count
        if per_item_states is not None:
            states = per_item_states
        else:
            states = [initial_states] * count
        return circuits, parameter_sets, states, noise_models, seeds

    def execute_batch(
        self,
        circuits: CircuitOrCircuits,
        parameter_sets: Optional[Sequence[Optional[np.ndarray]]] = None,
        initial_states: Optional[np.ndarray] = None,
        *,
        batch: int = 1,
        noise_models: NoiseModelOrModels = None,
        shots: Optional[int] = None,
        seeds: Optional[Sequence[SeedLike]] = None,
    ) -> list:
        """Per-binding loop fallback: one ``_execute_one`` call per binding.

        Subclasses override this with vectorised paths; the fallback is the
        behavioural contract they must match bit-for-bit.
        """
        circuits, parameter_sets, states, noise_models, seeds = self._normalize_batch(
            circuits, parameter_sets, initial_states, noise_models, seeds
        )
        return [
            self._execute_one(
                circuit,
                item_states,
                parameters=parameters,
                batch=batch,
                noise_model=noise_model,
                shots=shots,
                seed=seed,
            )
            for circuit, parameters, item_states, noise_model, seed in zip(
                circuits, parameter_sets, states, noise_models, seeds
            )
        ]


class StatevectorBackend(_EngineBackend):
    """Ideal (noise-free) execution — the paper's ``W_p(theta)``.

    Circuits are compiled through the engine's fusion + LRU pipeline, so
    re-executing the same structure with the same parameters costs only the
    fused matrix applications.
    """

    name = "statevector"

    def _make_simulator(self, num_qubits: int) -> StatevectorSimulator:
        return StatevectorSimulator(num_qubits, dtype=self.engine.complex_dtype)

    def _prepare_states(
        self, circuit: QuantumCircuit, initial_states, batch: int
    ) -> np.ndarray:
        simulator = self.simulator(circuit.num_qubits)
        if initial_states is None:
            return simulator.zero_state(batch)
        states = np.array(initial_states, dtype=self.engine.complex_dtype, copy=True)
        if states.ndim == 1:
            states = states[None, :]
        if states.shape[-1] != simulator.dim:
            raise SimulationError(
                f"initial states of dimension {states.shape[-1]} do not match "
                f"{circuit.num_qubits} qubits"
            )
        return states

    def _execute_one(
        self,
        circuit: QuantumCircuit,
        initial_states,
        *,
        parameters=None,
        batch: int = 1,
        noise_model=None,
        shots=None,
        seed=None,
    ) -> StatevectorResult:
        if noise_model is not None:
            raise SimulationError(
                "the statevector backend is noise-free; use the density_matrix "
                "backend for noisy execution"
            )
        states = self._prepare_states(circuit, initial_states, batch)
        states = self.engine.run_statevector(circuit, states, parameters)
        return StatevectorResult(states=states, num_qubits=circuit.num_qubits)

    def _evolve_batch(
        self, circuits, parameter_sets, per_item_states, batch: int
    ) -> list[np.ndarray]:
        """Evolve every binding, vectorised when the structures allow it.

        Returns one evolved ``(batch, dim)`` array per binding.  Bindings
        with heterogeneous structures (or batch shapes) fall back to one
        engine run per binding.
        """
        try:
            stacked = np.stack(
                [
                    self._prepare_states(circuit, item, batch)
                    for circuit, item in zip(circuits, per_item_states)
                ]
            )
            evolved = self.engine.run_statevector_multi(
                circuits, stacked, parameter_sets
            )
            return list(evolved)
        except (SimulationError, ValueError):
            return [
                self.engine.run_statevector(
                    circuit, self._prepare_states(circuit, item, batch), parameters
                )
                for circuit, parameters, item in zip(
                    circuits, parameter_sets, per_item_states
                )
            ]

    def execute_batch(
        self,
        circuits: CircuitOrCircuits,
        parameter_sets: Optional[Sequence[Optional[np.ndarray]]] = None,
        initial_states: Optional[np.ndarray] = None,
        *,
        batch: int = 1,
        noise_models: NoiseModelOrModels = None,
        shots: Optional[int] = None,
        seeds: Optional[Sequence[SeedLike]] = None,
    ) -> list[StatevectorResult]:
        """Vectorised multi-binding execution (single stacked-matmul sweep).

        All bindings must share one circuit structure; when they don't, the
        per-binding loop fallback handles the batch instead.  Bit-identical
        to the fallback by construction (same elementary matmuls).
        """
        circuits, parameter_sets, states, noise_models, seeds = self._normalize_batch(
            circuits, parameter_sets, initial_states, noise_models, seeds
        )
        if any(model is not None for model in noise_models):
            raise SimulationError(
                "the statevector backend is noise-free; use the density_matrix "
                "backend for noisy execution"
            )
        evolved = self._evolve_batch(circuits, parameter_sets, states, batch)
        return [
            StatevectorResult(states=group, num_qubits=circuit.num_qubits)
            for circuit, group in zip(circuits, evolved)
        ]


@dataclass
class SampledStatevectorResult:
    """Shot-sampled view of an ideal statevector execution.

    Outcomes are drawn once (multinomially, ``shots`` per batch element) and
    reused by every query, so ``probabilities`` and ``expectation_z`` are
    mutually consistent — the same contract a counts dictionary from real
    hardware would give.
    """

    states: np.ndarray
    num_qubits: int
    shots: int
    seed: SeedLike = None
    _empirical: Optional[np.ndarray] = None

    def probabilities(self) -> np.ndarray:
        """Empirical basis frequencies, shape ``(batch, 2**n)``."""
        if self._empirical is None:
            rng = ensure_rng(self.seed)
            exact = ops.statevector_probabilities(self.states)
            counts = ops.sample_counts(exact, self.shots, rng)
            self._empirical = counts / float(self.shots)
        return self._empirical

    def expectation_z(self, qubits: Sequence[int]) -> np.ndarray:
        """Shot-noise Pauli-Z estimates, shape ``(batch, len(qubits))``."""
        probs = self.probabilities()
        columns = [ops.expectation_z(probs, q, self.num_qubits) for q in qubits]
        return np.stack(columns, axis=1)


class TrajectoryBackend(StatevectorBackend):
    """Sampled-trajectory execution: ideal evolution + finite shots.

    Emulates submitting the circuit to hardware and reading back counts;
    ``shots`` defaults to the backend-level setting when not passed to
    ``execute``.  The backend-level ``seed`` seeds a generator from which
    every ``execute`` call draws an *independent* child seed, so repeated
    calls see fresh shot noise while the whole sequence stays reproducible;
    a per-call ``seed`` overrides that draw.
    """

    name = "trajectory"

    def __init__(
        self,
        engine: Optional[SimulationEngine] = None,
        shots: int = 1024,
        seed: SeedLike = None,
    ):
        super().__init__(engine=engine)
        if shots <= 0:
            raise SimulationError(f"shots must be positive, got {shots}")
        self.shots = shots
        self._rng = ensure_rng(seed)

    def _execute_one(
        self,
        circuit: QuantumCircuit,
        initial_states,
        *,
        parameters=None,
        batch: int = 1,
        noise_model=None,
        shots=None,
        seed=None,
    ) -> SampledStatevectorResult:
        ideal = super()._execute_one(
            circuit,
            initial_states,
            parameters=parameters,
            batch=batch,
            noise_model=noise_model,
        )
        return SampledStatevectorResult(
            states=ideal.states,
            num_qubits=ideal.num_qubits,
            shots=shots if shots is not None else self.shots,
            seed=seed if seed is not None else int(self._rng.integers(2**63 - 1)),
        )

    def execute_batch(
        self,
        circuits: CircuitOrCircuits,
        parameter_sets: Optional[Sequence[Optional[np.ndarray]]] = None,
        initial_states: Optional[np.ndarray] = None,
        *,
        batch: int = 1,
        noise_models: NoiseModelOrModels = None,
        shots: Optional[int] = None,
        seeds: Optional[Sequence[SeedLike]] = None,
    ) -> list[SampledStatevectorResult]:
        """Vectorised ideal evolution plus per-binding shot sampling.

        Each binding samples from its *own* seed stream: an explicit entry in
        ``seeds`` wins, otherwise an independent child seed is drawn from the
        backend-level generator in binding order — so a batched call consumes
        the backend stream exactly like the equivalent sequence of
        single-binding ``execute`` calls, and re-running a seeded backend
        reproduces every binding's counts.
        """
        circuits, parameter_sets, states, noise_models, seeds = self._normalize_batch(
            circuits, parameter_sets, initial_states, noise_models, seeds
        )
        if any(model is not None for model in noise_models):
            raise SimulationError(
                "the trajectory backend is noise-free; use the density_matrix "
                "backend for noisy execution"
            )
        evolved = self._evolve_batch(circuits, parameter_sets, states, batch)
        resolved_seeds = [
            seed if seed is not None else int(self._rng.integers(2**63 - 1))
            for seed in seeds
        ]
        return [
            SampledStatevectorResult(
                states=group,
                num_qubits=circuit.num_qubits,
                shots=shots if shots is not None else self.shots,
                seed=item_seed,
            )
            for circuit, group, item_seed in zip(circuits, evolved, resolved_seeds)
        ]


class DensityMatrixBackend(_EngineBackend):
    """Noisy execution — the paper's ``W_n(theta)``.

    A noise model can be fixed at construction (e.g. one backend per
    calibration day) or passed per call; the per-call model wins.  Without
    any noise model the engine's fused program is used; with one, cached
    per-gate matrices are walked so every gate's depolarizing channel lands
    in the right place.
    """

    name = "density_matrix"
    _state_rank = 3

    def __init__(
        self,
        engine: Optional[SimulationEngine] = None,
        noise_model: Optional[NoiseModel] = None,
    ):
        super().__init__(engine=engine)
        self.noise_model = noise_model

    def _make_simulator(self, num_qubits: int) -> DensityMatrixSimulator:
        return DensityMatrixSimulator(num_qubits, dtype=self.engine.complex_dtype)

    def _prepare_rho(self, circuit: QuantumCircuit, initial_states, batch: int) -> np.ndarray:
        simulator = self.simulator(circuit.num_qubits)
        if initial_states is None:
            return simulator.zero_state(batch)
        rho = np.array(initial_states, dtype=self.engine.complex_dtype, copy=True)
        if rho.ndim == 2:
            rho = rho[None, :, :]
        if rho.shape[-1] != simulator.dim:
            raise SimulationError(
                f"initial density matrices of dimension {rho.shape[-1]} do "
                f"not match {circuit.num_qubits} qubits"
            )
        return rho

    def execute_batch(
        self,
        circuits: CircuitOrCircuits,
        parameter_sets: Optional[Sequence[Optional[np.ndarray]]] = None,
        initial_states: Optional[np.ndarray] = None,
        *,
        batch: int = 1,
        noise_models: NoiseModelOrModels = None,
        shots: Optional[int] = None,
        seeds: Optional[Sequence[SeedLike]] = None,
    ) -> list[DensityMatrixResult]:
        """Vectorised multi-binding noisy execution.

        All bindings (e.g. calibration days) are flattened into one
        super-batch: every gate is applied once across all bindings, and each
        gate's depolarizing channel carries per-binding strengths.  Bindings
        whose circuit structures differ fall back to the per-binding loop.
        ``shots`` / ``seeds`` do not affect evolution here — sampling happens
        on the returned results (``sample_expectation_z``).
        """
        circuits, parameter_sets, states, noise_models, seeds = self._normalize_batch(
            circuits, parameter_sets, initial_states, noise_models, seeds
        )
        models = [
            model if model is not None else self.noise_model
            for model in noise_models
        ]
        try:
            prepared = [
                self._prepare_rho(circuit, item, batch)
                for circuit, item in zip(circuits, states)
            ]
            # Bindings that share one bound circuit (same structure *and*
            # parameters — e.g. one model across many calibration days)
            # evolve under broadcast 2-D gate matrices, the cheap vectorised
            # regime; group them so no binding pays for per-sample matrix
            # stacks, and a batch of all-distinct bindings degenerates to
            # the per-binding loop instead of something slower.  A
            # single-binding batch skips the digest bookkeeping entirely.
            groups: dict[tuple[str, str], list[int]] = {}
            if len(circuits) == 1:
                groups[("", "")] = [0]
            elif all(c is circuits[0] for c in circuits[1:]) and all(
                p is parameter_sets[0] for p in parameter_sets[1:]
            ):
                # The day-sweep regime: every binding shares one physical
                # circuit object and one parameter binding, so the whole
                # batch is one group — skip the per-binding digests (they
                # hash the full gate list and dominate small batches).
                groups[("", "")] = list(range(len(circuits)))
            else:
                for index, (circuit, parameters) in enumerate(
                    zip(circuits, parameter_sets)
                ):
                    key = (
                        circuit_structure_digest(circuit),
                        parameter_digest(circuit, parameters),
                    )
                    groups.setdefault(key, []).append(index)
            results: list[Optional[DensityMatrixResult]] = [None] * len(circuits)
            for indices in groups.values():
                stacked = np.stack([prepared[index] for index in indices])
                evolved = self.engine.run_density_multi(
                    [circuits[index] for index in indices],
                    stacked,
                    noise_models=[models[index] for index in indices],
                    parameter_sets=[parameter_sets[index] for index in indices],
                )
                for index, group in zip(indices, evolved):
                    results[index] = DensityMatrixResult(
                        rho=group,
                        num_qubits=circuits[index].num_qubits,
                        noise_model=models[index],
                    )
            return results
        except (SimulationError, ValueError):
            return [
                self._execute_one(
                    circuit,
                    item,
                    parameters=parameters,
                    batch=batch,
                    noise_model=model,
                )
                for circuit, parameters, item, model in zip(
                    circuits, parameter_sets, states, models
                )
            ]

    def _execute_one(
        self,
        circuit: QuantumCircuit,
        initial_states,
        *,
        parameters=None,
        batch: int = 1,
        noise_model=None,
        shots=None,
        seed=None,
    ) -> DensityMatrixResult:
        model = noise_model if noise_model is not None else self.noise_model
        simulator = self.simulator(circuit.num_qubits)
        if initial_states is None:
            rho = simulator.zero_state(batch)
        else:
            rho = np.array(initial_states, dtype=self.engine.complex_dtype, copy=True)
            if rho.ndim == 2:
                rho = rho[None, :, :]
            if rho.shape[-1] != simulator.dim:
                raise SimulationError(
                    f"initial density matrices of dimension {rho.shape[-1]} do "
                    f"not match {circuit.num_qubits} qubits"
                )
        rho = self.engine.run_density(circuit, rho, noise_model=model, parameters=parameters)
        return DensityMatrixResult(
            rho=rho, num_qubits=circuit.num_qubits, noise_model=model
        )


# ---------------------------------------------------------------------------
# Registry and shared defaults
# ---------------------------------------------------------------------------

#: Accepted aliases for each backend kind.
BACKEND_ALIASES: dict[str, str] = {
    "statevector": "statevector",
    "ideal": "statevector",
    "density_matrix": "density_matrix",
    "noisy": "density_matrix",
    "trajectory": "trajectory",
    "sampled": "trajectory",
}


def backend_kind(name: str) -> str:
    """Resolve a backend name/alias to its canonical kind.

    Raises :class:`SimulationError` for unknown names.
    """
    kind = BACKEND_ALIASES.get(name.lower())
    if kind is None:
        raise SimulationError(
            f"unknown backend {name!r}; expected one of {sorted(BACKEND_ALIASES)}"
        )
    return kind


def get_execution_backend(
    name: str, engine: Optional[SimulationEngine] = None, **kwargs
) -> Backend:
    """Construct an execution backend by name.

    Canonical names: ``statevector`` / ``density_matrix`` / ``trajectory``;
    aliases: ``ideal`` -> statevector, ``noisy`` -> density_matrix,
    ``sampled`` -> trajectory.  Extra keyword arguments go to the backend
    constructor (e.g. ``shots`` for the trajectory backend).

    Named ``get_execution_backend`` (not ``get_backend``) to stay distinct
    from :func:`repro.calibration.get_backend`, which returns a *device
    description* (:class:`~repro.calibration.backends.BackendSpec`), not an
    executor.
    """
    kind = backend_kind(name)
    if kind == "statevector":
        return StatevectorBackend(engine=engine, **kwargs)
    if kind == "density_matrix":
        return DensityMatrixBackend(engine=engine, **kwargs)
    return TrajectoryBackend(engine=engine, **kwargs)


_default_statevector: Optional[StatevectorBackend] = None
_default_density: Optional[DensityMatrixBackend] = None


def default_statevector_backend() -> StatevectorBackend:
    """Process-wide ideal backend (shares :func:`default_engine`)."""
    global _default_statevector
    if _default_statevector is None or _default_statevector.engine is not default_engine():
        _default_statevector = StatevectorBackend()
    return _default_statevector


def default_density_backend() -> DensityMatrixBackend:
    """Process-wide noisy backend (shares :func:`default_engine`)."""
    global _default_density
    if _default_density is None or _default_density.engine is not default_engine():
        _default_density = DensityMatrixBackend()
    return _default_density
