"""Noise-channel definitions.

Channels are lightweight frozen dataclasses that know how to apply
themselves to a batch of density matrices.  The density-matrix simulator
receives them from a :class:`~repro.simulator.noise_model.NoiseModel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import SimulationError
from repro.simulator import ops


def _validate_probability(value: float, name: str) -> float:
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise SimulationError(f"{name} must lie in [0, 1], got {value}")
    return value


@dataclass(frozen=True)
class DepolarizingChannel:
    """Depolarizing channel: with probability ``probability`` replace the
    state of the target qubits with the maximally mixed state."""

    probability: float
    num_qubits: int = 1

    def __post_init__(self) -> None:
        _validate_probability(self.probability, "depolarizing probability")
        if self.num_qubits not in (1, 2):
            raise SimulationError("depolarizing channel supports 1 or 2 qubits")

    def apply(self, rho: np.ndarray, qubits: Sequence[int], num_qubits: int) -> np.ndarray:
        """Apply the channel to ``rho`` on ``qubits``."""
        if len(qubits) != self.num_qubits:
            raise SimulationError(
                f"channel expects {self.num_qubits} qubits, got {len(qubits)}"
            )
        return ops.apply_depolarizing_density(rho, self.probability, qubits, num_qubits)

    @staticmethod
    def from_gate_error(error_rate: float, num_qubits: int) -> "DepolarizingChannel":
        """Convert an average gate infidelity into a depolarizing probability.

        For a depolarizing channel with replace-probability ``p`` on a
        ``d``-dimensional space the average gate infidelity is
        ``r = p (d - 1) / d``, so ``p = r d / (d - 1)``.  Values are clipped
        to 1 so badly mis-calibrated error rates stay physical.
        """
        dim = 2**num_qubits
        probability = min(1.0, max(0.0, float(error_rate)) * dim / (dim - 1))
        return DepolarizingChannel(probability=probability, num_qubits=num_qubits)


@dataclass(frozen=True)
class BitFlipChannel:
    """Apply Pauli-X with probability ``probability``."""

    probability: float

    def __post_init__(self) -> None:
        _validate_probability(self.probability, "bit-flip probability")

    def kraus_operators(self) -> list[np.ndarray]:
        """The channel's Kraus operators."""
        p = self.probability
        return [
            np.sqrt(1 - p) * np.eye(2, dtype=complex),
            np.sqrt(p) * np.array([[0, 1], [1, 0]], dtype=complex),
        ]

    def apply(self, rho: np.ndarray, qubits: Sequence[int], num_qubits: int) -> np.ndarray:
        """Apply the channel to ``rho`` on ``qubits``."""
        return ops.apply_kraus_density(rho, self.kraus_operators(), qubits, num_qubits)


@dataclass(frozen=True)
class PhaseFlipChannel:
    """Apply Pauli-Z with probability ``probability``."""

    probability: float

    def __post_init__(self) -> None:
        _validate_probability(self.probability, "phase-flip probability")

    def kraus_operators(self) -> list[np.ndarray]:
        """The channel's Kraus operators."""
        p = self.probability
        return [
            np.sqrt(1 - p) * np.eye(2, dtype=complex),
            np.sqrt(p) * np.diag([1.0, -1.0]).astype(complex),
        ]

    def apply(self, rho: np.ndarray, qubits: Sequence[int], num_qubits: int) -> np.ndarray:
        """Apply the channel to ``rho`` on ``qubits``."""
        return ops.apply_kraus_density(rho, self.kraus_operators(), qubits, num_qubits)


@dataclass(frozen=True)
class AmplitudeDampingChannel:
    """Energy relaxation toward ``|0>`` with damping parameter ``gamma``."""

    gamma: float

    def __post_init__(self) -> None:
        _validate_probability(self.gamma, "amplitude damping gamma")

    def kraus_operators(self) -> list[np.ndarray]:
        """The channel's Kraus operators."""
        g = self.gamma
        return [
            np.array([[1, 0], [0, np.sqrt(1 - g)]], dtype=complex),
            np.array([[0, np.sqrt(g)], [0, 0]], dtype=complex),
        ]

    def apply(self, rho: np.ndarray, qubits: Sequence[int], num_qubits: int) -> np.ndarray:
        """Apply the channel to ``rho`` on ``qubits``."""
        return ops.apply_kraus_density(rho, self.kraus_operators(), qubits, num_qubits)


@dataclass(frozen=True)
class PhaseDampingChannel:
    """Pure dephasing with damping parameter ``gamma``."""

    gamma: float

    def __post_init__(self) -> None:
        _validate_probability(self.gamma, "phase damping gamma")

    def kraus_operators(self) -> list[np.ndarray]:
        """The channel's Kraus operators."""
        g = self.gamma
        return [
            np.array([[1, 0], [0, np.sqrt(1 - g)]], dtype=complex),
            np.array([[0, 0], [0, np.sqrt(g)]], dtype=complex),
        ]

    def apply(self, rho: np.ndarray, qubits: Sequence[int], num_qubits: int) -> np.ndarray:
        """Apply the channel to ``rho`` on ``qubits``."""
        return ops.apply_kraus_density(rho, self.kraus_operators(), qubits, num_qubits)


@dataclass(frozen=True)
class ReadoutError:
    """Symmetric or asymmetric measurement assignment error on one qubit.

    ``prob_1_given_0`` is the probability of reporting 1 when the true state
    is 0, and vice versa for ``prob_0_given_1``.
    """

    prob_1_given_0: float
    prob_0_given_1: float

    def __post_init__(self) -> None:
        _validate_probability(self.prob_1_given_0, "readout P(1|0)")
        _validate_probability(self.prob_0_given_1, "readout P(0|1)")

    @staticmethod
    def symmetric(error_rate: float) -> "ReadoutError":
        """Readout error with equal flip probability in both directions."""
        return ReadoutError(prob_1_given_0=error_rate, prob_0_given_1=error_rate)

    def confusion_matrix(self) -> np.ndarray:
        """2x2 matrix ``M[reported, true]``."""
        return np.array(
            [
                [1.0 - self.prob_1_given_0, self.prob_0_given_1],
                [self.prob_1_given_0, 1.0 - self.prob_0_given_1],
            ],
            dtype=float,
        )
