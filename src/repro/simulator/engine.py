"""Compiled-circuit execution engine: gate fusion + program caching.

The online phase of the paper evaluates the *same* circuit structure
thousands of times — once per day per strategy in the longitudinal studies
(Fig. 2, Fig. 7, Table I) — while only the bound rotation angles and the
data batches change.  The naive path re-materialises every gate matrix and
applies the gates one by one on every call.  This module amortises that
per-call setup the same way short-block DAC decoders amortise per-block
setup cost:

1. **Fusion plan** (structure level): adjacent single-qubit gates on the
   same wire are merged, and runs of two-qubit gates on the same pair —
   together with the single-qubit gates caught between them — are contracted
   into single 4x4 unitaries.  The plan depends only on gate names and qubit
   indices, so it is computed once per circuit *structure* and reused across
   every parameter binding.
2. **Compiled program** (binding level): the plan's blocks are materialised
   into concrete fused matrices for one set of bound angles.  Programs are
   held in an LRU cache keyed on ``(circuit_id, parameter_digest)`` so
   repeated evaluations with different data batches skip recompilation
   entirely.
3. **Bound circuits** (gate level): per-gate matrices (plus daggers and
   lazily-memoised derivative matrices) are cached under the same key for
   consumers that need per-gate granularity — the adjoint gradient's
   backward sweep and the noisy density-matrix path, where a depolarizing
   channel after every physical gate forbids fusing across gates.

The public entry points are :class:`SimulationEngine` and the module-level
:func:`default_engine` singleton shared by the high-level
:mod:`repro.simulator.backend` API.
"""

from __future__ import annotations

import os

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence, Union

import numpy as np

from repro.circuits import QuantumCircuit, circuit_structure_digest, parameter_digest
from repro.exceptions import SimulationError
from repro.gates import CROSS_PATH_GATES, Gate
from repro.gates.matrices import I2, SWAP
from repro.simulator import ops
from repro.simulator.kernels import get_kernels
from repro.utils.lru import lru_get, lru_put

# circuit_structure_digest / parameter_digest live in repro.circuits.digests
# (they depend only on the IR) and are re-exported here for existing callers.
__all__ = [
    "circuit_structure_digest",
    "parameter_digest",
    "resolve_precision",
    "FusionBlock",
    "FusionPlan",
    "build_fusion_plan",
    "FusedGate",
    "CompiledProgram",
    "BoundGateRecord",
    "BoundCircuit",
    "StackedWalkStep",
    "build_stacked_walk",
    "materialize_program",
    "EngineStats",
    "SimulationEngine",
    "default_engine",
    "set_default_engine",
]


# ---------------------------------------------------------------------------
# Precision / kernel / fusion-width defaults
# ---------------------------------------------------------------------------
#
# Engines resolve unset knobs from the environment so one process-level
# switch (the CLI's ``--dtype`` / ``--kernel`` flags export these variables)
# reaches every engine construction site — including worker-pool children
# and serving shard processes, which inherit the environment on spawn.

#: Environment variable naming the default precision (``float64``/``float32``).
DTYPE_ENV_VAR = "REPRO_DTYPE"
#: Environment variable naming the default kernel suite (``numpy``/``numba``).
KERNEL_ENV_VAR = "REPRO_KERNEL"
#: Environment variable setting the default fusion width (``2`` or ``3``).
FUSION_WIDTH_ENV_VAR = "REPRO_FUSION_WIDTH"

_PRECISIONS: dict[str, np.dtype] = {
    "float64": np.dtype(np.complex128),
    "complex128": np.dtype(np.complex128),
    "double": np.dtype(np.complex128),
    "float32": np.dtype(np.complex64),
    "complex64": np.dtype(np.complex64),
    "single": np.dtype(np.complex64),
}


def resolve_precision(dtype: Union[None, str, np.dtype, type]) -> tuple[str, np.dtype]:
    """Resolve a precision knob to ``(canonical_name, complex_dtype)``.

    ``None`` falls back to the :data:`DTYPE_ENV_VAR` environment variable and
    then to ``float64``.  Accepts the real-precision names the public API
    uses (``"float64"`` / ``"float32"``) plus their complex spellings.
    """
    if dtype is None:
        dtype = os.environ.get(DTYPE_ENV_VAR) or "float64"
    if isinstance(dtype, (np.dtype, type)):
        name = np.dtype(dtype).name
    else:
        name = str(dtype).lower()
    resolved = _PRECISIONS.get(name)
    if resolved is None:
        raise SimulationError(
            f"unknown precision {dtype!r}; expected one of {sorted(_PRECISIONS)}"
        )
    canonical = "float64" if resolved == np.dtype(np.complex128) else "float32"
    return canonical, resolved


# ---------------------------------------------------------------------------
# Fusion plan (structure level)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FusionBlock:
    """One fused block of the plan: a qubit set and the gates it absorbs.

    ``qubits`` fixes the basis of the fused matrix (first qubit = most
    significant tensor factor, matching the convention of
    :mod:`repro.gates.matrices`); ``gate_indices`` are positions in the
    source circuit's gate list, in circuit order.
    """

    qubits: tuple[int, ...]
    gate_indices: tuple[int, ...]


@dataclass(frozen=True)
class FusionPlan:
    """Structure-level fusion schedule: an ordered tuple of blocks."""

    num_qubits: int
    blocks: tuple[FusionBlock, ...]
    source_gate_count: int

    @property
    def fused_gate_count(self) -> int:
        """Number of matrix applications after fusion."""
        return len(self.blocks)


class _OpenBlock:
    """Mutable block under construction during the fusion sweep."""

    __slots__ = ("qubits", "indices")

    def __init__(self, qubits: tuple[int, ...], indices: list[int]):
        self.qubits = qubits
        self.indices = indices


def build_fusion_plan(circuit: QuantumCircuit, max_width: int = 2) -> FusionPlan:
    """Greedy gate fusion into blocks of at most ``max_width`` qubits.

    The sweep keeps at most one *open* block per wire.  A gate joins the open
    block covering its wires when the combined support stays within two
    qubits; otherwise the conflicting blocks are closed (they keep their
    emission position) and a fresh block opens.  Whenever a gate joins an
    existing block, that block moves to the end of the emission order — this
    is safe because open blocks are pairwise wire-disjoint (each wire maps to
    at most one open block), every closed block passed during the move is
    wire-disjoint from the moving block at move time, and wire-disjoint
    unitaries commute.  A block that later *grows* onto a closed block's wire
    only absorbs gates that postdate that closed block while staying after it
    in emission order, so widening preserves the ordering argument.

    With ``max_width > 2`` the sweep additionally absorbs diagonal/monomial
    two-qubit gates (:data:`repro.gates.CROSS_PATH_GATES`) across an open
    block boundary: a ``cz``/``rzz``/``cx`` bridging a dense block would
    normally close it and split the plan, but folding the bridge into the
    neighbouring fused matrix — growing it up to ``max_width`` qubits —
    strictly shrinks ``fused_gate_count``.  The default width 2 reproduces
    the original plans bit-for-bit.
    """
    if max_width < 2:
        raise SimulationError(f"fusion width must be >= 2, got {max_width}")
    blocks: list[_OpenBlock] = []
    open_by_wire: dict[int, _OpenBlock] = {}

    def close(block: _OpenBlock) -> None:
        for wire in block.qubits:
            if open_by_wire.get(wire) is block:
                del open_by_wire[wire]

    def move_to_end(block: _OpenBlock) -> None:
        blocks.remove(block)
        blocks.append(block)

    for index, gate in enumerate(circuit.gates):
        wires = gate.qubits
        if len(wires) == 1:
            wire = wires[0]
            block = open_by_wire.get(wire)
            if block is None:
                block = _OpenBlock((wire,), [index])
                open_by_wire[wire] = block
                blocks.append(block)
            else:
                move_to_end(block)
                block.indices.append(index)
            continue

        if len(wires) != 2:  # pragma: no cover - registry only has 1q/2q gates
            raise SimulationError(
                f"fusion supports gates on at most 2 qubits, got {gate.name!r}"
            )
        wire_a, wire_b = wires
        block_a = open_by_wire.get(wire_a)
        block_b = open_by_wire.get(wire_b)

        if block_a is not None and block_a is block_b:
            # An open block already covers both wires of this pair.
            move_to_end(block_a)
            block_a.indices.append(index)
            continue

        if (
            max_width > 2
            and gate.name in CROSS_PATH_GATES
            and (block_a is not None or block_b is not None)
        ):
            # Cross-path absorption: a diagonal/monomial bridge between open
            # blocks would normally force a plan split; fold it (and, when
            # both wires are open, the smaller neighbour) into one wider
            # block as long as the union stays within ``max_width``.
            union = set(wires)
            if block_a is not None:
                union.update(block_a.qubits)
            if block_b is not None:
                union.update(block_b.qubits)
            if len(union) <= max_width:
                host = block_a if block_a is not None else block_b
                move_to_end(host)
                other = block_b if host is block_a else None
                if other is not None:
                    blocks.remove(other)
                    for wire in other.qubits:
                        if open_by_wire.get(wire) is other:
                            del open_by_wire[wire]
                    # The two open blocks are wire-disjoint, so sorting the
                    # merged indices preserves each wire's internal order.
                    host.indices = sorted(host.indices + other.indices)
                host.indices.append(index)
                host.qubits = tuple(sorted(union))
                for wire in host.qubits:
                    open_by_wire[wire] = host
                continue

        # Close any open block whose support would exceed two qubits.
        if block_a is not None and not set(block_a.qubits) <= {wire_a, wire_b}:
            close(block_a)
            block_a = None
        if block_b is not None and not set(block_b.qubits) <= {wire_a, wire_b}:
            close(block_b)
            block_b = None

        if block_a is not None and block_b is not None:
            # Two single-qubit blocks on the two wires: merge them.  Their
            # gates act on disjoint wires, so sorting the merged indices
            # preserves each wire's internal order and overall correctness.
            move_to_end(block_a)
            blocks.remove(block_b)
            block_a.indices = sorted(block_a.indices + block_b.indices)
            block_a.indices.append(index)
            block_a.qubits = wires
            open_by_wire[wire_a] = block_a
            open_by_wire[wire_b] = block_a
        elif block_a is not None or block_b is not None:
            host = block_a if block_a is not None else block_b
            move_to_end(host)
            host.indices.append(index)
            host.qubits = wires
            open_by_wire[wire_a] = host
            open_by_wire[wire_b] = host
        else:
            host = _OpenBlock(wires, [index])
            open_by_wire[wire_a] = host
            open_by_wire[wire_b] = host
            blocks.append(host)

    return FusionPlan(
        num_qubits=circuit.num_qubits,
        blocks=tuple(
            FusionBlock(qubits=tuple(b.qubits), gate_indices=tuple(b.indices))
            for b in blocks
        ),
        source_gate_count=len(circuit.gates),
    )


# ---------------------------------------------------------------------------
# Compiled programs (binding level)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FusedGate:
    """One fused unitary ready for application: ``(qubits, matrix)``."""

    qubits: tuple[int, ...]
    matrix: np.ndarray

    def __iter__(self) -> Iterator:
        """Unpack as ``qubits, matrix`` (the pair form used by ``ops``)."""
        yield self.qubits
        yield self.matrix


@dataclass(frozen=True)
class CompiledProgram:
    """A circuit compiled for one parameter binding.

    ``operations`` is the fused gate sequence; applying it left-to-right is
    mathematically identical to applying the source circuit gate-by-gate.
    ``steps`` is the same sequence in the precompiled form consumed by
    :func:`repro.simulator.ops.apply_compiled_statevector` — matrices paired
    with tensor-axis permutations computed once at compile time.
    """

    num_qubits: int
    operations: tuple[FusedGate, ...]
    steps: tuple[tuple[np.ndarray, int, tuple[int, ...], tuple[int, ...]], ...]
    circuit_id: str
    parameter_key: str
    source_gate_count: int

    @property
    def fused_gate_count(self) -> int:
        """Number of matrix applications the program performs."""
        return len(self.operations)


@dataclass
class BoundGateRecord:
    """Cached per-gate data for consumers needing gate granularity."""

    gate: Gate
    qubits: tuple[int, ...]
    matrix: np.ndarray
    dagger: np.ndarray


@dataclass
class BoundCircuit:
    """A circuit with all gate matrices (and daggers) materialised once.

    Used by the adjoint-gradient backward sweep and the noisy
    density-matrix path, both of which must walk gate-by-gate.  Derivative
    matrices are memoised on first request per gate index, and the
    day-stacked walk plan (see :class:`StackedWalkStep`) on first use.
    """

    num_qubits: int
    gates: tuple[BoundGateRecord, ...]
    dtype: np.dtype = np.dtype(np.complex128)
    _derivatives: dict[int, np.ndarray] = field(default_factory=dict)
    #: ``None`` = not built yet; ``False`` = some gate is unsupported (fall
    #: back to the generic grouped walk); otherwise the step tuple.
    _stacked_walk: object = field(default=None, repr=False)

    def derivative(self, index: int) -> np.ndarray:
        """``d(matrix)/d(angle)`` of gate ``index``, memoised."""
        cached = self._derivatives.get(index)
        if cached is None:
            cached = self.gates[index].gate.derivative_matrix()
            cached = cached.astype(self.dtype, copy=False)
            self._derivatives[index] = cached
        return cached


@dataclass(frozen=True)
class StackedWalkStep:
    """One gate of a day-stacked density walk, fully precomputed.

    ``kind`` selects the kernel: ``"diagonal"`` multiplies the super-batch by
    the full-register phase factor built from ``phase_row``; ``"monomial"``
    gathers through the flat ``gather`` indices (phase-corrected via
    ``phase_row`` when present); ``"dense"`` runs the two precompiled einsum
    contractions ``row_subscripts`` / ``col_subscripts`` with the tensorised
    ``matrix`` / ``dagger`` operands.
    """

    kind: str
    qubits: tuple[int, ...]
    phase_row: Optional[np.ndarray] = None
    gather: Optional[np.ndarray] = None
    matrix: Optional[np.ndarray] = None
    dagger: Optional[np.ndarray] = None
    row_subscripts: Optional[str] = None
    col_subscripts: Optional[str] = None


def build_stacked_walk(bound: BoundCircuit) -> Optional[tuple[StackedWalkStep, ...]]:
    """Precompute the day-stacked walk steps for one bound circuit.

    Returns ``None`` when a gate cannot take a precompiled path (e.g. the
    register is too wide for einsum labels), in which case callers fall back
    to the generic grouped walk.
    """
    num_qubits = bound.num_qubits
    steps = []
    for record in bound.gates:
        qubits = record.qubits
        diag = ops._diagonal_of(record.matrix)
        if diag is not None:
            steps.append(
                StackedWalkStep(
                    kind="diagonal",
                    qubits=qubits,
                    phase_row=ops.density_diagonal_row(diag, qubits, num_qubits),
                )
            )
            continue
        monomial = ops._monomial_of(record.matrix)
        if monomial is not None:
            gather, phase_row = ops.density_monomial_gather(
                monomial[0], monomial[1], qubits, num_qubits
            )
            steps.append(
                StackedWalkStep(
                    kind="monomial", qubits=qubits, gather=gather, phase_row=phase_row
                )
            )
            continue
        try:
            row_subscripts, col_subscripts = ops.density_gate_subscripts(
                qubits, num_qubits
            )
        except SimulationError:
            return None
        shape = (2,) * (2 * len(qubits))
        steps.append(
            StackedWalkStep(
                kind="dense",
                qubits=qubits,
                matrix=np.ascontiguousarray(record.matrix).reshape(shape),
                dagger=np.ascontiguousarray(record.matrix.conj()).reshape(shape),
                row_subscripts=row_subscripts,
                col_subscripts=col_subscripts,
            )
        )
    return tuple(steps)


def _embed_general(
    matrix: np.ndarray, gate_qubits: tuple[int, ...], block_qubits: tuple[int, ...]
) -> np.ndarray:
    """Lift a gate matrix into an arbitrary block basis by axis permutation.

    Pads the gate with identities on the block's remaining qubits, then
    permutes tensor factors from ``gate_qubits + missing`` order into
    ``block_qubits`` order.  Used only for blocks wider than two qubits (the
    opt-in wider-fusion tier); the two-qubit paths keep their original
    closed forms so default plans stay bit-identical.
    """
    missing = [q for q in block_qubits if q not in gate_qubits]
    full = matrix
    if missing:
        full = np.kron(matrix, np.eye(2 ** len(missing), dtype=matrix.dtype))
    order = list(gate_qubits) + missing
    perm = tuple(order.index(q) for q in block_qubits)
    k = len(block_qubits)
    tensor = full.reshape((2,) * (2 * k))
    tensor = tensor.transpose(perm + tuple(k + p for p in perm))
    return np.ascontiguousarray(tensor).reshape(2**k, 2**k)


def _embed_into_block(
    gate: Gate, matrix: np.ndarray, block_qubits: tuple[int, ...]
) -> np.ndarray:
    """Lift a gate matrix into the basis of its host fusion block."""
    if gate.qubits == block_qubits:
        return matrix
    if len(block_qubits) == 1:
        return matrix
    if len(block_qubits) > 2:
        return _embed_general(matrix, gate.qubits, block_qubits)
    if len(gate.qubits) == 1:
        if gate.qubits[0] == block_qubits[0]:
            return np.kron(matrix, I2)
        return np.kron(I2, matrix)
    # Two-qubit gate listed in the reverse order of the block basis: conjugate
    # by SWAP to exchange the tensor factors.
    return SWAP @ matrix @ SWAP


def materialize_program(
    plan: FusionPlan,
    bound_gates: Sequence[Gate],
    circuit_id: str,
    parameter_key: str,
    dtype: np.dtype = np.complex128,
) -> CompiledProgram:
    """Turn a structure-level plan into concrete fused matrices.

    ``dtype`` is the engine's complex precision: fused matrices are
    materialised directly in it so the walk never mixes precisions.  At the
    complex128 default every cast is a no-op and the program is bit-identical
    to the historical behaviour.
    """
    dtype = np.dtype(dtype)
    operations = []
    for block in plan.blocks:
        if len(block.gate_indices) == 1 and len(block.qubits) == len(
            bound_gates[block.gate_indices[0]].qubits
        ):
            gate = bound_gates[block.gate_indices[0]]
            matrix = gate.matrix().astype(dtype, copy=False)
            operations.append(FusedGate(qubits=gate.qubits, matrix=matrix))
            continue
        dim = 2 ** len(block.qubits)
        fused = np.eye(dim, dtype=dtype)
        for gate_index in block.gate_indices:
            gate = bound_gates[gate_index]
            embedded = _embed_into_block(gate, gate.matrix(), block.qubits)
            fused = embedded.astype(dtype, copy=False) @ fused
        operations.append(FusedGate(qubits=block.qubits, matrix=fused))
    steps = []
    for fused_gate in operations:
        perm, inverse = ops.statevector_axis_permutation(
            fused_gate.qubits, plan.num_qubits
        )
        steps.append(
            (
                np.ascontiguousarray(fused_gate.matrix),
                2 ** len(fused_gate.qubits),
                perm,
                inverse,
            )
        )
    return CompiledProgram(
        num_qubits=plan.num_qubits,
        operations=tuple(operations),
        steps=tuple(steps),
        circuit_id=circuit_id,
        parameter_key=parameter_key,
        source_gate_count=plan.source_gate_count,
    )


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


@dataclass
class EngineStats:
    """Cache counters of a :class:`SimulationEngine`.

    ``program_hits / (program_hits + program_misses)`` is the fraction of
    executions that skipped compilation entirely — the quantity the Fig. 7
    throughput benchmark exercises.
    """

    plan_builds: int = 0
    plan_hits: int = 0
    program_builds: int = 0
    program_hits: int = 0
    bound_builds: int = 0
    bound_hits: int = 0

    @property
    def program_misses(self) -> int:
        """Alias for ``program_builds`` (every miss triggers one build)."""
        return self.program_builds

    @property
    def program_hit_rate(self) -> float:
        """Fraction of compile requests served from the program cache."""
        total = self.program_hits + self.program_builds
        return self.program_hits / total if total else 0.0


class SimulationEngine:
    """Compiles circuits into fused programs and caches the results.

    Parameters
    ----------
    max_programs:
        LRU capacity of the compiled-program and bound-circuit caches
        (entries are keyed ``(circuit_id, parameter_digest)``).
    max_plans:
        LRU capacity of the structure-level fusion-plan cache.
    fusion:
        Disable to compile identity programs (one block per gate); used by
        tests and the throughput benchmark to isolate the fusion gain.
    dtype:
        Execution precision: ``"float64"`` (the bit-identical default) or
        ``"float32"`` (the fast tier — complex64 fused matrices and walks).
        ``None`` reads ``REPRO_DTYPE`` from the environment.
    kernel:
        Name of the statevector kernel suite (see
        :mod:`repro.simulator.kernels`); ``None`` reads ``REPRO_KERNEL`` and
        defaults to ``"numpy"``.  Only the suite *name* is stored, so
        engines stay picklable.
    fusion_width:
        Maximum fused-block width.  The default 2 reproduces historical
        plans bit-for-bit; 3 enables cross-path absorption of
        diagonal/monomial bridges into wider fused matrices.  ``None``
        reads ``REPRO_FUSION_WIDTH``.
    """

    def __init__(
        self,
        max_programs: int = 256,
        max_plans: int = 128,
        fusion: bool = True,
        dtype: Union[None, str, np.dtype, type] = None,
        kernel: Optional[str] = None,
        fusion_width: Optional[int] = None,
    ):
        if max_programs < 1 or max_plans < 1:
            raise SimulationError("engine cache sizes must be >= 1")
        self.max_programs = max_programs
        self.max_plans = max_plans
        self.fusion = fusion
        self.dtype, self.complex_dtype = resolve_precision(dtype)
        if kernel is None:
            kernel = os.environ.get(KERNEL_ENV_VAR) or "numpy"
        self.kernel = str(kernel)
        get_kernels(self.kernel)  # fail fast on unknown suites
        if fusion_width is None:
            fusion_width = int(os.environ.get(FUSION_WIDTH_ENV_VAR, "2"))
        if fusion_width < 2:
            raise SimulationError(f"fusion width must be >= 2, got {fusion_width}")
        self.fusion_width = fusion_width
        self.stats = EngineStats()
        self._plans: OrderedDict[str, FusionPlan] = OrderedDict()
        self._programs: OrderedDict[tuple[str, str], CompiledProgram] = OrderedDict()
        self._bound: OrderedDict[tuple[str, str], BoundCircuit] = OrderedDict()

    @property
    def kernels(self):
        """The engine's kernel suite, resolved lazily from its name."""
        return get_kernels(self.kernel)

    # -- cache plumbing -------------------------------------------------
    @staticmethod
    def _lru_get(cache: OrderedDict, key):
        return lru_get(cache, key)

    @staticmethod
    def _lru_put(cache: OrderedDict, key, value, capacity: int) -> None:
        lru_put(cache, key, value, capacity)

    def clear(self) -> None:
        """Drop every cached plan, program, and bound circuit."""
        self._plans.clear()
        self._programs.clear()
        self._bound.clear()

    def cache_sizes(self) -> dict[str, int]:
        """Current number of entries per cache (for introspection/tests)."""
        return {
            "plans": len(self._plans),
            "programs": len(self._programs),
            "bound": len(self._bound),
        }

    # -- compilation ----------------------------------------------------
    def plan_for(self, circuit: QuantumCircuit) -> tuple[str, FusionPlan]:
        """The fusion plan for ``circuit``'s structure (cached by digest)."""
        circuit_id = circuit_structure_digest(circuit)
        plan = self._lru_get(self._plans, circuit_id)
        if plan is None:
            if self.fusion:
                plan = build_fusion_plan(circuit, max_width=self.fusion_width)
            else:
                plan = FusionPlan(
                    num_qubits=circuit.num_qubits,
                    blocks=tuple(
                        FusionBlock(qubits=g.qubits, gate_indices=(i,))
                        for i, g in enumerate(circuit.gates)
                    ),
                    source_gate_count=len(circuit.gates),
                )
            self._lru_put(self._plans, circuit_id, plan, self.max_plans)
            self.stats.plan_builds += 1
        else:
            self.stats.plan_hits += 1
        return circuit_id, plan

    def _bind(
        self, circuit: QuantumCircuit, parameters: Optional[np.ndarray]
    ) -> QuantumCircuit:
        if parameters is None:
            return circuit
        return circuit.bind_parameters(parameters)

    def compile(
        self, circuit: QuantumCircuit, parameters: Optional[np.ndarray] = None
    ) -> CompiledProgram:
        """Compile ``circuit`` (bound, or bindable via ``parameters``).

        Returns a cached :class:`CompiledProgram` when the same structure has
        already been compiled with an identical effective parameter binding.
        """
        circuit_id, plan = self.plan_for(circuit)
        parameter_key = parameter_digest(circuit, parameters)
        cache_key = (circuit_id, parameter_key)
        program = self._lru_get(self._programs, cache_key)
        if program is not None:
            self.stats.program_hits += 1
            return program
        bound = self._bind(circuit, parameters)
        program = materialize_program(
            plan, bound.gates, circuit_id, parameter_key, dtype=self.complex_dtype
        )
        self._lru_put(self._programs, cache_key, program, self.max_programs)
        self.stats.program_builds += 1
        return program

    def bound_circuit(
        self, circuit: QuantumCircuit, parameters: Optional[np.ndarray] = None
    ) -> BoundCircuit:
        """Per-gate matrices (with daggers) for ``circuit``, cached."""
        circuit_id = circuit_structure_digest(circuit)
        parameter_key = parameter_digest(circuit, parameters)
        cache_key = (circuit_id, parameter_key)
        bound = self._lru_get(self._bound, cache_key)
        if bound is not None:
            self.stats.bound_hits += 1
            return bound
        bound_source = self._bind(circuit, parameters)
        records = []
        for gate in bound_source.gates:
            matrix = gate.matrix().astype(self.complex_dtype, copy=False)
            records.append(
                BoundGateRecord(
                    gate=gate,
                    qubits=gate.qubits,
                    matrix=matrix,
                    dagger=matrix.conj().T,
                )
            )
        bound = BoundCircuit(
            num_qubits=circuit.num_qubits,
            gates=tuple(records),
            dtype=self.complex_dtype,
        )
        self._lru_put(self._bound, cache_key, bound, self.max_programs)
        self.stats.bound_builds += 1
        return bound

    # -- batched compilation --------------------------------------------
    def compile_many(
        self,
        circuits: Sequence[QuantumCircuit],
        parameter_sets: Sequence[Optional[np.ndarray]],
    ) -> list[CompiledProgram]:
        """Compile one program per ``(circuit, parameters)`` pair.

        All pairs must share the same circuit *structure* (the condition for
        stacking their fused matrices); a :class:`SimulationError` is raised
        otherwise so callers can fall back to the per-item loop.
        """
        if len(circuits) != len(parameter_sets):
            raise SimulationError("circuits and parameter_sets length mismatch")
        programs = [
            self.compile(circuit, parameters)
            for circuit, parameters in zip(circuits, parameter_sets)
        ]
        first = programs[0].circuit_id
        if any(p.circuit_id != first for p in programs):
            raise SimulationError(
                "cannot stack programs with different circuit structures"
            )
        return programs

    @staticmethod
    def stack_programs(
        programs: Sequence[CompiledProgram],
    ) -> tuple[tuple[np.ndarray, int, tuple[int, ...], tuple[int, ...]], ...]:
        """Stack per-binding compiled steps into multi-group steps.

        Returns steps consumable by
        :func:`repro.simulator.ops.apply_compiled_statevector_multi`: when all
        programs share one binding the original 2-D matrices are reused
        (broadcast over groups); otherwise each step's matrix becomes a
        ``(groups, d, d)`` stack.
        """
        first = programs[0]
        if all(p.parameter_key == first.parameter_key for p in programs):
            return first.steps
        stacked = []
        for step_index, (_, dim, perm, inverse) in enumerate(first.steps):
            matrices = np.stack(
                [program.steps[step_index][0] for program in programs]
            )
            stacked.append((matrices, dim, perm, inverse))
        return tuple(stacked)

    # -- execution ------------------------------------------------------
    def run_statevector(
        self,
        circuit: QuantumCircuit,
        states: np.ndarray,
        parameters: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Apply the compiled program for ``circuit`` to ``states``.

        States are cast onto the engine's precision tier first (a no-op at
        the float64 default), so a float32 engine runs the whole walk in
        single precision regardless of the caller's allocation.
        """
        program = self.compile(circuit, parameters)
        states = np.asarray(states).astype(self.complex_dtype, copy=False)
        return self.kernels.apply_program(program, states)

    def run_statevector_multi(
        self,
        circuits: Sequence[QuantumCircuit],
        states: np.ndarray,
        parameter_sets: Optional[Sequence[Optional[np.ndarray]]] = None,
    ) -> np.ndarray:
        """Apply many bindings of one structure to stacked state batches.

        ``states`` has shape ``(groups, batch, 2**n)``; group ``g`` evolves
        under ``circuits[g]`` bound with ``parameter_sets[g]``.  All circuits
        must share one structure.  Bit-identical to calling
        :meth:`run_statevector` once per group.
        """
        if parameter_sets is None:
            parameter_sets = [None] * len(circuits)
        programs = self.compile_many(circuits, parameter_sets)
        steps = self.stack_programs(programs)
        states = np.asarray(states).astype(self.complex_dtype, copy=False)
        return self.kernels.apply_program_multi(steps, states, programs[0].num_qubits)

    def run_density_multi(
        self,
        circuits: Sequence[QuantumCircuit],
        rho: np.ndarray,
        noise_models: Optional[Sequence] = None,
        parameter_sets: Optional[Sequence[Optional[np.ndarray]]] = None,
    ) -> np.ndarray:
        """Apply many bindings of one structure to stacked density batches.

        ``rho`` has shape ``(groups, batch, 2**n, 2**n)``; group ``g``
        evolves under ``circuits[g]`` bound with ``parameter_sets[g]`` and —
        when ``noise_models`` is given — under ``noise_models[g]``'s channels.
        The walk flattens groups into one ``(groups * batch)`` super-batch so
        each gate (and each depolarizing channel, with per-group strengths) is
        a single vectorised application.  Bit-identical (up to the sign of
        zeros) to calling :meth:`run_density` once per group.
        """
        groups, batch = rho.shape[0], rho.shape[1]
        if parameter_sets is None:
            parameter_sets = [None] * len(circuits)
        if len(circuits) != groups or len(parameter_sets) != groups:
            raise SimulationError("group count mismatch between rho and circuits")
        if noise_models is not None and len(noise_models) != groups:
            raise SimulationError("group count mismatch between rho and noise models")
        if groups == 1:
            # A single binding is exactly one plain run — skip the grouping
            # plumbing (it would only rebuild the same walk with overhead).
            evolved = self.run_density(
                circuits[0],
                rho[0],
                noise_model=None if noise_models is None else noise_models[0],
                parameters=parameter_sets[0],
            )
            return evolved[None, ...]
        num_qubits = circuits[0].num_qubits
        flat = rho.reshape((groups * batch,) + rho.shape[2:])

        if noise_models is None or all(m is None for m in noise_models):
            programs = self.compile_many(circuits, parameter_sets)
            for step_index in range(programs[0].fused_gate_count):
                qubits = programs[0].operations[step_index].qubits
                matrices = [p.operations[step_index].matrix for p in programs]
                flat = self._apply_density_group_matrices(
                    flat, matrices, qubits, num_qubits, batch
                )
            return flat.reshape(rho.shape)

        if all(c is circuits[0] for c in circuits[1:]) and self._shared_binding(
            parameter_sets
        ):
            # The day-sweep regime: one bound circuit across every group, so
            # binding (and digesting) once suffices.
            bounds = [self.bound_circuit(circuits[0], parameter_sets[0])] * groups
        else:
            bounds = [
                self.bound_circuit(circuit, parameters)
                for circuit, parameters in zip(circuits, parameter_sets)
            ]
        reference = bounds[0]
        for bound in bounds[1:]:
            if bound is reference:
                continue
            if len(bound.gates) != len(reference.gates) or any(
                a.gate.name != b.gate.name or a.qubits != b.qubits
                for a, b in zip(bound.gates, reference.gates)
            ):
                raise SimulationError(
                    "cannot batch density execution across different structures"
                )
        if all(bound is reference for bound in bounds[1:]):
            steps = self._stacked_walk_for(reference)
            if steps is not None:
                probabilities = np.array(
                    [
                        [
                            self._channel_probability(model, record.gate)
                            for model in noise_models
                        ]
                        for record in reference.gates
                    ]
                )
                walked = self._run_density_stacked(
                    reference, steps, flat.copy(), probabilities, batch
                )
                return walked.reshape(rho.shape)
        for gate_index in range(len(reference.gates)):
            records = [bound.gates[gate_index] for bound in bounds]
            qubits = records[0].qubits
            flat = self._apply_density_group_matrices(
                flat, [r.matrix for r in records], qubits, num_qubits, batch
            )
            probabilities = np.array(
                [
                    self._channel_probability(model, record.gate)
                    for model, record in zip(noise_models, records)
                ]
            )
            if np.any(probabilities):
                flat = ops.apply_depolarizing_density(
                    flat, np.repeat(probabilities, batch), qubits, num_qubits
                )
        return flat.reshape(rho.shape)

    @staticmethod
    def _channel_probability(noise_model, gate) -> float:
        if noise_model is None:
            return 0.0
        channel = noise_model.channel_for_gate(gate)
        return channel.probability if channel is not None else 0.0

    @staticmethod
    def _shared_binding(parameter_sets) -> bool:
        """True when every group binds the same effective parameter vector."""
        first = parameter_sets[0]
        for parameters in parameter_sets[1:]:
            if parameters is first:
                continue
            if parameters is None or first is None:
                return False
            if not np.array_equal(parameters, first):
                return False
        return True

    @staticmethod
    def _stacked_walk_for(bound: BoundCircuit) -> Optional[tuple[StackedWalkStep, ...]]:
        """The bound circuit's day-stacked walk plan, built once and memoised."""
        plan = bound._stacked_walk
        if plan is None:
            plan = build_stacked_walk(bound)
            bound._stacked_walk = False if plan is None else plan
        return None if plan is False else plan

    @staticmethod
    def _run_density_stacked(
        bound: BoundCircuit,
        steps: tuple[StackedWalkStep, ...],
        flat: np.ndarray,
        probabilities: np.ndarray,
        batch: int,
    ) -> np.ndarray:
        """Walk one bound circuit over a day-stacked super-batch in place.

        ``flat`` is an owned, C-contiguous ``(groups * batch, dim, dim)``
        array (it is mutated); ``probabilities`` holds per-gate per-group
        channel strengths, shape ``(num_gates, groups)``.  Bit-identical (up
        to the sign of zeros) to the generic per-gate grouped walk: the
        kernels perform the same elementary products and sums, only without
        the transpose and allocation traffic.
        """
        num_qubits = bound.num_qubits
        dim = 2**num_qubits
        total = flat.shape[0]
        tensor_shape = (total,) + (2,) * (2 * num_qubits)
        rho = flat
        spare = np.empty_like(rho)
        for step, gate_probabilities in zip(steps, probabilities):
            if step.kind == "diagonal":
                row = step.phase_row
                np.multiply(
                    rho, (row[:, None] * row.conj()[None, :])[None, :, :], out=rho
                )
            elif step.kind == "monomial":
                np.take(
                    rho.reshape(total, dim * dim),
                    step.gather,
                    axis=1,
                    out=spare.reshape(total, dim * dim),
                )
                if step.phase_row is not None:
                    row = step.phase_row
                    np.multiply(
                        spare,
                        (row[:, None] * row.conj()[None, :])[None, :, :],
                        out=spare,
                    )
                rho, spare = spare, rho
            else:
                np.einsum(
                    step.row_subscripts,
                    step.matrix,
                    rho.reshape(tensor_shape),
                    out=spare.reshape(tensor_shape),
                )
                rho, spare = spare, rho
                np.einsum(
                    step.col_subscripts,
                    step.dagger,
                    rho.reshape(tensor_shape),
                    out=spare.reshape(tensor_shape),
                )
                rho, spare = spare, rho
            if np.any(gate_probabilities):
                ops.apply_depolarizing_density_stacked(
                    rho,
                    np.repeat(gate_probabilities, batch),
                    step.qubits,
                    num_qubits,
                )
        return rho

    @staticmethod
    def _apply_density_group_matrices(
        flat: np.ndarray,
        matrices: Sequence[np.ndarray],
        qubits: tuple[int, ...],
        num_qubits: int,
        batch: int,
    ) -> np.ndarray:
        """Apply per-group gate matrices to a flattened group super-batch."""
        first = matrices[0]
        if all(m is first or np.array_equal(m, first) for m in matrices[1:]):
            return ops.apply_unitary_density(flat, first, qubits, num_qubits)
        per_sample = np.repeat(np.stack(matrices), batch, axis=0)
        return ops.apply_unitary_density(flat, per_sample, qubits, num_qubits)

    def run_density(
        self,
        circuit: QuantumCircuit,
        rho: np.ndarray,
        noise_model=None,
        parameters: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Apply ``circuit`` to density matrices, with optional noise.

        Without a noise model the fused program is used.  With one, every
        physical gate is followed by its calibrated channel, which forbids
        fusing across gates — the engine then walks the cached per-gate
        matrices instead, so the matrix-construction cost is still amortised.
        """
        if noise_model is None:
            program = self.compile(circuit, parameters)
            return ops.apply_fused_density(rho, program.operations, program.num_qubits)
        bound = self.bound_circuit(circuit, parameters)
        num_qubits = bound.num_qubits
        for record in bound.gates:
            rho = ops.apply_unitary_density(rho, record.matrix, record.qubits, num_qubits)
            channel = noise_model.channel_for_gate(record.gate)
            if channel is not None:
                rho = channel.apply(rho, record.qubits, num_qubits)
        return rho


# ---------------------------------------------------------------------------
# Shared default engine
# ---------------------------------------------------------------------------

_default_engine: Optional[SimulationEngine] = None


def default_engine() -> SimulationEngine:
    """The process-wide engine shared by the default backends."""
    global _default_engine
    if _default_engine is None:
        _default_engine = SimulationEngine()
    return _default_engine


def set_default_engine(engine: Optional[SimulationEngine]) -> None:
    """Replace the process-wide engine (``None`` resets to a fresh one)."""
    global _default_engine
    _default_engine = engine
