"""Batched density-matrix simulator with calibrated noise channels.

This is the 'noisy environment' ``W_n(theta)`` of the paper: every physical
gate is followed by a depolarizing channel whose strength comes from the
day's calibration snapshot, and measurement applies per-qubit readout
confusion matrices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.circuits import QuantumCircuit
from repro.exceptions import SimulationError
from repro.simulator import ops
from repro.simulator.noise_model import NoiseModel
from repro.utils.rng import SeedLike, ensure_rng


@dataclass
class DensityMatrixResult:
    """Final density matrices of a batched noisy simulation."""

    rho: np.ndarray
    num_qubits: int
    noise_model: Optional[NoiseModel] = None

    def probabilities(self, apply_readout_error: bool = True) -> np.ndarray:
        """Measurement probabilities, optionally through readout confusion."""
        probs = ops.density_probabilities(self.rho)
        totals = probs.sum(axis=-1, keepdims=True)
        probs = np.divide(probs, totals, out=np.zeros_like(probs), where=totals > 0)
        if apply_readout_error and self.noise_model is not None:
            confusion = self.noise_model.readout_confusion()
            if confusion:
                probs = ops.apply_readout_confusion(probs, confusion, self.num_qubits)
        return probs

    def expectation_z(
        self, qubits: Sequence[int], apply_readout_error: bool = True
    ) -> np.ndarray:
        """Pauli-Z expectations on ``qubits``, shape ``(batch, len(qubits))``."""
        probs = self.probabilities(apply_readout_error=apply_readout_error)
        columns = [ops.expectation_z(probs, q, self.num_qubits) for q in qubits]
        return np.stack(columns, axis=1)

    def sample_expectation_z(
        self,
        qubits: Sequence[int],
        shots: int,
        seed: SeedLike = None,
        apply_readout_error: bool = True,
    ) -> np.ndarray:
        """Shot-noise estimate of Pauli-Z expectations (hardware emulation)."""
        rng = ensure_rng(seed)
        probs = self.probabilities(apply_readout_error=apply_readout_error)
        counts = ops.sample_counts(probs, shots, rng)
        empirical = counts / float(shots)
        columns = [ops.expectation_z(empirical, q, self.num_qubits) for q in qubits]
        return np.stack(columns, axis=1)


class DensityMatrixSimulator:
    """Apply a bound physical circuit to a batch of density matrices.

    ``dtype`` is the complex working precision; the float64 default
    (complex128) is bit-identical to the historical behaviour, while
    complex64 is the engine's fast tier.
    """

    def __init__(self, num_qubits: int, dtype=np.complex128):
        if num_qubits <= 0:
            raise SimulationError(f"num_qubits must be positive, got {num_qubits}")
        self.num_qubits = num_qubits
        self.dim = 2**num_qubits
        self.dtype = np.dtype(dtype)
        if self.dtype.kind != "c":
            raise SimulationError(f"density dtype must be complex, got {dtype!r}")

    def zero_state(self, batch: int = 1) -> np.ndarray:
        """Density matrix of ``|0...0><0...0|`` replicated ``batch`` times."""
        rho = np.zeros((batch, self.dim, self.dim), dtype=self.dtype)
        rho[:, 0, 0] = 1.0
        return rho

    @staticmethod
    def from_statevectors(states: np.ndarray) -> np.ndarray:
        """Outer products ``|psi><psi|`` for a batch of statevectors."""
        return np.einsum("bi,bj->bij", states, states.conj())

    def run(
        self,
        circuit: QuantumCircuit,
        noise_model: Optional[NoiseModel] = None,
        initial_rho: Optional[np.ndarray] = None,
        batch: int = 1,
    ) -> DensityMatrixResult:
        """Execute ``circuit`` under ``noise_model``.

        Each gate is applied as a unitary, then (if the noise model assigns
        the gate a non-zero error rate) followed by a depolarizing channel on
        the gate's qubits.
        """
        if circuit.num_qubits != self.num_qubits:
            raise SimulationError(
                f"circuit has {circuit.num_qubits} qubits, simulator expects "
                f"{self.num_qubits}"
            )
        if initial_rho is None:
            rho = self.zero_state(batch)
        else:
            rho = np.array(initial_rho, dtype=self.dtype, copy=True)
            if rho.ndim == 2:
                rho = rho[None, :, :]
            if rho.shape[-1] != self.dim:
                raise SimulationError(
                    f"initial density matrices of dimension {rho.shape[-1]} do not "
                    f"match {self.num_qubits} qubits"
                )
        for gate in circuit.gates:
            rho = ops.apply_unitary_density(
                rho,
                gate.matrix().astype(self.dtype, copy=False),
                gate.qubits,
                self.num_qubits,
            )
            if noise_model is not None:
                channel = noise_model.channel_for_gate(gate)
                if channel is not None:
                    rho = channel.apply(rho, gate.qubits, self.num_qubits)
        return DensityMatrixResult(
            rho=rho, num_qubits=self.num_qubits, noise_model=noise_model
        )

    def apply_feature_rotations(
        self,
        rho: np.ndarray,
        gate_name: str,
        qubit: int,
        angles: np.ndarray,
        noise_model: Optional[NoiseModel] = None,
    ) -> np.ndarray:
        """Apply one encoding rotation with per-sample angles plus its noise.

        The ``(batch, 2, 2)`` unitary stack is built vectorised (see
        :func:`repro.gates.matrices.rotation_stack`) rather than one sample
        at a time.
        """
        from repro.gates import Gate
        from repro.simulator.statevector import _feature_rotation_stack

        matrices = _feature_rotation_stack(gate_name, angles)
        matrices = matrices.astype(rho.dtype, copy=False)
        rho = ops.apply_unitary_density(rho, matrices, [qubit], self.num_qubits)
        if noise_model is not None:
            probe = Gate(gate_name, (qubit,), param=0.0)
            channel = noise_model.channel_for_gate(probe)
            if channel is not None:
                rho = channel.apply(rho, [qubit], self.num_qubits)
        return rho
