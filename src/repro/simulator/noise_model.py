"""Device noise model assembled from calibration data.

A :class:`NoiseModel` answers one question for the density-matrix simulator:
*which channels follow this physical gate?*  It is built from a
:class:`~repro.calibration.CalibrationSnapshot` so that every day of the
fluctuating-noise history yields its own noise model, exactly as the paper
builds Qiskit noise models from pulled IBM calibrations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.exceptions import SimulationError
from repro.gates import Gate
from repro.simulator.noise_channels import DepolarizingChannel, ReadoutError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.calibration.snapshot import CalibrationSnapshot

#: Gates executed virtually (frame changes) on IBM-style hardware; they are
#: noiseless and cost zero pulses.
VIRTUAL_GATES = frozenset({"rz", "id", "z", "s", "sdg", "t", "tdg", "p"})


@dataclass
class NoiseModel:
    """Per-qubit / per-coupler error channels for a device.

    Attributes
    ----------
    num_qubits:
        Number of physical qubits on the device.
    single_qubit_error:
        Map physical qubit -> average single-qubit gate error rate.
    two_qubit_error:
        Map directed or undirected qubit pair -> CNOT error rate.  Lookups
        fall back to the reversed pair so both orientations work.
    readout_error:
        Map physical qubit -> :class:`ReadoutError`.
    """

    num_qubits: int
    single_qubit_error: dict[int, float] = field(default_factory=dict)
    two_qubit_error: dict[tuple[int, int], float] = field(default_factory=dict)
    readout_error: dict[int, ReadoutError] = field(default_factory=dict)

    def is_noiseless(self) -> bool:
        """True if the model carries no error channels at all."""
        return (
            not self.single_qubit_error
            and not self.two_qubit_error
            and not self.readout_error
        )

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def gate_error_rate(self, gate: Gate) -> float:
        """Raw error rate associated with a physical gate (0 for virtual)."""
        if gate.name in VIRTUAL_GATES:
            return 0.0
        if gate.num_qubits == 1:
            return float(self.single_qubit_error.get(gate.qubits[0], 0.0))
        pair = (gate.qubits[0], gate.qubits[1])
        if pair in self.two_qubit_error:
            return float(self.two_qubit_error[pair])
        reversed_pair = (pair[1], pair[0])
        if reversed_pair in self.two_qubit_error:
            return float(self.two_qubit_error[reversed_pair])
        return 0.0

    def channel_for_gate(self, gate: Gate) -> Optional[DepolarizingChannel]:
        """Depolarizing channel following ``gate``, or ``None`` if noiseless."""
        error_rate = self.gate_error_rate(gate)
        if error_rate <= 0.0:
            return None
        return DepolarizingChannel.from_gate_error(error_rate, gate.num_qubits)

    def readout_confusion(self) -> dict[int, np.ndarray]:
        """Per-qubit confusion matrices for measured qubits."""
        return {
            qubit: error.confusion_matrix()
            for qubit, error in self.readout_error.items()
        }

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def ideal(cls, num_qubits: int) -> "NoiseModel":
        """A noise model with no errors (useful as an explicit 'perfect' device)."""
        return cls(num_qubits=num_qubits)

    @classmethod
    def from_calibration(cls, snapshot: "CalibrationSnapshot") -> "NoiseModel":
        """Build the channel set for one calibration snapshot."""
        single = {q: float(e) for q, e in snapshot.single_qubit_error.items()}
        two = {tuple(pair): float(e) for pair, e in snapshot.two_qubit_error.items()}
        readout = {
            q: ReadoutError.symmetric(float(e))
            for q, e in snapshot.readout_error.items()
        }
        return cls(
            num_qubits=snapshot.num_qubits,
            single_qubit_error=single,
            two_qubit_error=two,
            readout_error=readout,
        )

    def scaled(self, factor: float) -> "NoiseModel":
        """Return a copy with every error rate multiplied by ``factor``.

        Used by ablations that sweep the overall noise level.
        """
        if factor < 0:
            raise SimulationError(f"scale factor must be non-negative, got {factor}")
        return NoiseModel(
            num_qubits=self.num_qubits,
            single_qubit_error={q: min(1.0, e * factor) for q, e in self.single_qubit_error.items()},
            two_qubit_error={p: min(1.0, e * factor) for p, e in self.two_qubit_error.items()},
            readout_error={
                q: ReadoutError(
                    min(1.0, r.prob_1_given_0 * factor),
                    min(1.0, r.prob_0_given_1 * factor),
                )
                for q, r in self.readout_error.items()
            },
        )

    def mean_error_summary(self) -> dict[str, float]:
        """Aggregate statistics used in reports and noise-injection training."""
        single = list(self.single_qubit_error.values())
        two = list(self.two_qubit_error.values())
        readout = [
            0.5 * (r.prob_1_given_0 + r.prob_0_given_1)
            for r in self.readout_error.values()
        ]
        return {
            "mean_single_qubit_error": float(np.mean(single)) if single else 0.0,
            "mean_two_qubit_error": float(np.mean(two)) if two else 0.0,
            "mean_readout_error": float(np.mean(readout)) if readout else 0.0,
        }
