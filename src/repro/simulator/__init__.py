"""Quantum-state simulators, noise models, and the compiled execution engine.

Layer map:

* :mod:`~repro.simulator.ops` — low-level batched tensor contractions;
* :mod:`~repro.simulator.statevector` / :mod:`~repro.simulator.density_matrix`
  — the two state representations (ideal ``W_p`` and noisy ``W_n``);
* :mod:`~repro.simulator.engine` — gate fusion + compiled-circuit LRU cache;
* :mod:`~repro.simulator.backend` — the unified ``Backend.execute`` API that
  the qnn and core layers route through.
"""

from repro.simulator.backend import (
    Backend,
    DensityMatrixBackend,
    SampledStatevectorResult,
    StatevectorBackend,
    TrajectoryBackend,
    backend_kind,
    default_density_backend,
    default_statevector_backend,
    get_execution_backend,
)
from repro.simulator.density_matrix import DensityMatrixResult, DensityMatrixSimulator
from repro.simulator.engine import (
    BoundCircuit,
    CompiledProgram,
    EngineStats,
    FusedGate,
    FusionBlock,
    FusionPlan,
    SimulationEngine,
    build_fusion_plan,
    circuit_structure_digest,
    default_engine,
    parameter_digest,
    resolve_precision,
    set_default_engine,
)
from repro.simulator.kernels import (
    KernelSuite,
    available_kernels,
    get_kernels,
    numba_available,
    register_kernels,
)
from repro.simulator.noise_channels import (
    AmplitudeDampingChannel,
    BitFlipChannel,
    DepolarizingChannel,
    PhaseDampingChannel,
    PhaseFlipChannel,
    ReadoutError,
)
from repro.simulator.noise_model import VIRTUAL_GATES, NoiseModel
from repro.simulator.statevector import StatevectorResult, StatevectorSimulator
from repro.simulator import ops

__all__ = [
    "Backend",
    "BoundCircuit",
    "CompiledProgram",
    "DensityMatrixBackend",
    "DensityMatrixResult",
    "DensityMatrixSimulator",
    "EngineStats",
    "FusedGate",
    "FusionBlock",
    "FusionPlan",
    "KernelSuite",
    "SampledStatevectorResult",
    "SimulationEngine",
    "StatevectorBackend",
    "StatevectorResult",
    "StatevectorSimulator",
    "TrajectoryBackend",
    "NoiseModel",
    "VIRTUAL_GATES",
    "DepolarizingChannel",
    "BitFlipChannel",
    "PhaseFlipChannel",
    "AmplitudeDampingChannel",
    "PhaseDampingChannel",
    "ReadoutError",
    "available_kernels",
    "backend_kind",
    "build_fusion_plan",
    "circuit_structure_digest",
    "default_density_backend",
    "default_engine",
    "default_statevector_backend",
    "get_execution_backend",
    "get_kernels",
    "numba_available",
    "parameter_digest",
    "register_kernels",
    "resolve_precision",
    "set_default_engine",
    "ops",
]
