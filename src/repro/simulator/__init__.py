"""Quantum-state simulators, noise channels, and noise models."""

from repro.simulator.density_matrix import DensityMatrixResult, DensityMatrixSimulator
from repro.simulator.noise_channels import (
    AmplitudeDampingChannel,
    BitFlipChannel,
    DepolarizingChannel,
    PhaseDampingChannel,
    PhaseFlipChannel,
    ReadoutError,
)
from repro.simulator.noise_model import VIRTUAL_GATES, NoiseModel
from repro.simulator.statevector import StatevectorResult, StatevectorSimulator
from repro.simulator import ops

__all__ = [
    "DensityMatrixResult",
    "DensityMatrixSimulator",
    "StatevectorResult",
    "StatevectorSimulator",
    "NoiseModel",
    "VIRTUAL_GATES",
    "DepolarizingChannel",
    "BitFlipChannel",
    "PhaseFlipChannel",
    "AmplitudeDampingChannel",
    "PhaseDampingChannel",
    "ReadoutError",
    "ops",
]
