"""Swappable statevector kernel implementations behind the engine.

The :class:`~repro.simulator.engine.SimulationEngine` routes its compiled
statevector walks through a *kernel suite* selected by name, so deployments
can pick the implementation that fits the host:

* ``"numpy"`` — the reference implementation: the vectorised
  transpose/matmul walk of :func:`repro.simulator.ops.apply_compiled_statevector`.
  Always available, and the bit-identity baseline every other suite is
  tested against (within the fast tier's tolerance for float32).
* ``"numba"`` — a jit-compiled gather/apply walk registered automatically
  when ``numba`` is importable.  Instead of transposing the full batch
  tensor per fused gate, it precomputes per-gate index offsets once per
  compiled program and applies each fused matrix through strided gathers in
  one nopython loop.  On hosts without numba the suite is simply absent;
  requesting it raises a :class:`~repro.exceptions.SimulationError` naming
  the available suites.

Selection goes through :func:`get_kernels` (engine constructor argument
``kernel=...``, CLI flag ``--kernel``, or the ``REPRO_KERNEL`` environment
variable read by the engine's defaults).  Suites are process-wide
singletons, so engines stay cheap to construct and picklable — an engine
stores only the suite *name* and resolves it lazily.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.exceptions import SimulationError
from repro.simulator import ops


class KernelSuite:
    """One named implementation of the compiled statevector walk.

    ``apply_program`` consumes a
    :class:`~repro.simulator.engine.CompiledProgram` and a ``(batch, 2**n)``
    state batch, returning the evolved batch without mutating the input.
    ``apply_program_multi`` is the stacked many-bindings variant; suites
    without a specialised multi path inherit the numpy one (the multi walk
    is already a single broadcast matmul per fused gate).
    """

    name = "abstract"

    def apply_program(self, program, states: np.ndarray) -> np.ndarray:
        """Evolve ``states`` under one compiled program (no input mutation)."""
        raise NotImplementedError

    def apply_program_multi(
        self, steps: Sequence, states: np.ndarray, num_qubits: int
    ) -> np.ndarray:
        """Evolve stacked ``(groups, batch, dim)`` states under stacked steps."""
        return ops.apply_compiled_statevector_multi(states, steps, num_qubits)


class NumpyKernels(KernelSuite):
    """Reference suite: delegate to the precompiled numpy walk unchanged."""

    name = "numpy"

    def apply_program(self, program, states: np.ndarray) -> np.ndarray:
        """Run the vectorised transpose/matmul walk over the fused steps."""
        return ops.apply_compiled_statevector(
            states, program.steps, program.num_qubits
        )


# ---------------------------------------------------------------------------
# Numba suite (registered only when numba imports)
# ---------------------------------------------------------------------------

_NUMBA_APPLY = None


def _numba_apply_fn():
    """Build (once) the jitted gather/apply loop for one fused gate."""
    global _NUMBA_APPLY
    if _NUMBA_APPLY is None:
        import numba

        @numba.njit(cache=False)
        def apply_gate(states, matrix, rest, offsets):  # pragma: no cover - jit
            batch = states.shape[0]
            d = offsets.shape[0]
            scratch = np.zeros_like(matrix[0])
            for b in range(batch):
                row = states[b]
                for t in range(rest.shape[0]):
                    base = rest[t]
                    for i in range(d):
                        acc = matrix[i, 0] * row[base + offsets[0]]
                        for j in range(1, d):
                            acc = acc + matrix[i, j] * row[base + offsets[j]]
                        scratch[i] = acc
                    for i in range(d):
                        row[base + offsets[i]] = scratch[i]

        _NUMBA_APPLY = apply_gate
    return _NUMBA_APPLY


def _gate_index_plan(
    qubits: Sequence[int], num_qubits: int
) -> tuple[np.ndarray, np.ndarray]:
    """Precompute ``(rest, offsets)`` for one fused gate's gather walk.

    ``offsets[j]`` is the global-index contribution of sub-index ``j`` on the
    target qubits (big-endian, matching :mod:`repro.simulator.ops`);
    ``rest`` enumerates every base index whose target bits are all zero, so
    ``base + offsets[j]`` sweeps exactly one gate-sized amplitude group.
    """
    k = len(qubits)
    d = 2**k
    offsets = np.zeros(d, dtype=np.int64)
    for j in range(d):
        value = 0
        for position, qubit in enumerate(qubits):
            bit = (j >> (k - 1 - position)) & 1
            value |= bit << (num_qubits - 1 - qubit)
        offsets[j] = value
    indices = np.arange(2**num_qubits, dtype=np.int64)
    keep = np.ones(indices.shape[0], dtype=bool)
    for qubit in qubits:
        keep &= ((indices >> (num_qubits - 1 - qubit)) & 1) == 0
    return indices[keep], offsets


class NumbaKernels(KernelSuite):
    """Jitted suite: per-program gather plans + nopython apply loops.

    The per-program plan (cast matrices, rest indices, offsets) is memoised
    on the program's cache identity, so steady-state execution pays only the
    jitted loops — mirroring how the engine itself amortises compilation.
    """

    name = "numba"
    _MAX_PLANS = 256

    def __init__(self) -> None:
        self._plans: dict = {}

    def _plan_for(self, program, dtype: np.dtype) -> list:
        key = (program.circuit_id, program.parameter_key, dtype.str)
        plan = self._plans.get(key)
        if plan is None:
            plan = []
            for operation in program.operations:
                rest, offsets = _gate_index_plan(operation.qubits, program.num_qubits)
                matrix = np.ascontiguousarray(operation.matrix.astype(dtype, copy=False))
                plan.append((matrix, rest, offsets))
            if len(self._plans) >= self._MAX_PLANS:
                self._plans.clear()
            self._plans[key] = plan
        return plan

    def apply_program(self, program, states: np.ndarray) -> np.ndarray:
        """Run the jitted gather/apply loop over the memoised gate plans."""
        apply_gate = _numba_apply_fn()
        out = np.ascontiguousarray(states).copy()
        for matrix, rest, offsets in self._plan_for(program, out.dtype):
            apply_gate(out, matrix, rest, offsets)
        return out


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, KernelSuite] = {}


def register_kernels(name: str, suite: Optional[KernelSuite]) -> None:
    """Register a kernel suite under ``name`` (``None`` unregisters it)."""
    if suite is None:
        _REGISTRY.pop(str(name), None)
        return
    _REGISTRY[str(name)] = suite


def available_kernels() -> list[str]:
    """Names of every registered kernel suite, sorted."""
    return sorted(_REGISTRY)


def get_kernels(name: Optional[str] = None) -> KernelSuite:
    """Resolve a kernel suite by name (``None`` → the numpy reference)."""
    resolved = "numpy" if name is None else str(name)
    suite = _REGISTRY.get(resolved)
    if suite is None:
        raise SimulationError(
            f"unknown kernel suite {resolved!r}; available: {available_kernels()}"
        )
    return suite


def numba_available() -> bool:
    """Whether the jitted suite registered (i.e. numba is importable)."""
    return "numba" in _REGISTRY


register_kernels("numpy", NumpyKernels())

try:  # The jitted tier is opt-in by environment: absent numba, absent suite.
    import numba as _numba  # noqa: F401
except Exception:  # pragma: no cover - exercised only on numba-less hosts
    pass
else:  # pragma: no cover - exercised only on numba-equipped CI legs
    register_kernels("numba", NumbaKernels())
