"""Calibration histories: ordered sequences of daily snapshots."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.calibration.snapshot import CalibrationSnapshot
from repro.exceptions import CalibrationError


@dataclass
class CalibrationHistory:
    """An ordered collection of :class:`CalibrationSnapshot` (one per day)."""

    snapshots: list[CalibrationSnapshot] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.snapshots:
            expected = self.snapshots[0].feature_names()
            for snapshot in self.snapshots[1:]:
                if snapshot.feature_names() != expected:
                    raise CalibrationError(
                        "all snapshots in a history must share the same feature layout"
                    )

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.snapshots)

    def __iter__(self) -> Iterator[CalibrationSnapshot]:
        return iter(self.snapshots)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return CalibrationHistory(self.snapshots[index])
        return self.snapshots[index]

    def append(self, snapshot: CalibrationSnapshot) -> None:
        """Add a snapshot, enforcing a consistent feature layout."""
        if self.snapshots and snapshot.feature_names() != self.snapshots[0].feature_names():
            raise CalibrationError("snapshot feature layout differs from the history")
        self.snapshots.append(snapshot)

    @property
    def dates(self) -> list[Optional[str]]:
        """Dates of all snapshots (may contain ``None``)."""
        return [snapshot.date for snapshot in self.snapshots]

    # ------------------------------------------------------------------
    # Matrix view and splits
    # ------------------------------------------------------------------
    def to_matrix(self) -> np.ndarray:
        """Stack all snapshots into an ``(n_days, n_features)`` matrix."""
        if not self.snapshots:
            return np.zeros((0, 0))
        return np.stack([snapshot.to_vector() for snapshot in self.snapshots])

    def feature_names(self) -> list[str]:
        """Feature names shared by every snapshot."""
        if not self.snapshots:
            return []
        return self.snapshots[0].feature_names()

    def split(self, offline_days: int) -> tuple["CalibrationHistory", "CalibrationHistory"]:
        """Split into (offline, online) sub-histories, as in the paper.

        The paper uses the first 243 days for offline optimization and the
        remaining 146 days for online tests.
        """
        if not 0 <= offline_days <= len(self.snapshots):
            raise CalibrationError(
                f"offline_days={offline_days} outside [0, {len(self.snapshots)}]"
            )
        return (
            CalibrationHistory(self.snapshots[:offline_days]),
            CalibrationHistory(self.snapshots[offline_days:]),
        )

    def feature_series(self, feature_name: str) -> np.ndarray:
        """Time series of one error-rate feature across the history."""
        names = self.feature_names()
        if feature_name not in names:
            raise CalibrationError(
                f"unknown feature {feature_name!r}; available: {names}"
            )
        column = names.index(feature_name)
        return self.to_matrix()[:, column]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_json(self, path: str | Path) -> None:
        """Write the history to a JSON file."""
        payload = [snapshot.to_dict() for snapshot in self.snapshots]
        Path(path).write_text(json.dumps(payload, indent=2))

    @classmethod
    def from_json(cls, path: str | Path) -> "CalibrationHistory":
        """Load a history previously written by :meth:`to_json`."""
        payload = json.loads(Path(path).read_text())
        return cls([CalibrationSnapshot.from_dict(entry) for entry in payload])
