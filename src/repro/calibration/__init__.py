"""Calibration data model, synthetic fluctuating-noise generator, distances."""

from repro.calibration.backends import (
    BackendSpec,
    belem_backend,
    get_backend,
    jakarta_backend,
    synthetic_backend,
)
from repro.calibration.distance import (
    l2_distance,
    pairwise_weighted_l1,
    performance_weights,
    weighted_l1_distance,
)
from repro.calibration.history import CalibrationHistory
from repro.calibration.snapshot import CalibrationSnapshot
from repro.calibration.synthetic import (
    FluctuatingNoiseGenerator,
    FluctuationConfig,
    generate_belem_history,
    generate_device_history,
    generate_jakarta_history,
)

__all__ = [
    "BackendSpec",
    "belem_backend",
    "jakarta_backend",
    "synthetic_backend",
    "get_backend",
    "CalibrationSnapshot",
    "CalibrationHistory",
    "FluctuatingNoiseGenerator",
    "FluctuationConfig",
    "generate_belem_history",
    "generate_jakarta_history",
    "generate_device_history",
    "performance_weights",
    "weighted_l1_distance",
    "l2_distance",
    "pairwise_weighted_l1",
]
