"""Backend specifications: topology plus typical error levels.

A :class:`BackendSpec` bundles a coupling map with the baseline noise levels
the synthetic calibration generator fluctuates around.  The baselines are
chosen to match the ranges reported in the paper's Fig. 1 for *ibmq_belem*
(single-qubit errors around 1e-4..1e-3, CNOT errors around 1e-2, readout
errors of a few percent).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import CalibrationError
from repro.transpiler.coupling import CouplingMap, belem_coupling, jakarta_coupling


@dataclass(frozen=True)
class BackendSpec:
    """Static description of a quantum device used for emulation."""

    name: str
    coupling: CouplingMap
    base_single_qubit_error: dict[int, float]
    base_two_qubit_error: dict[tuple[int, int], float]
    base_readout_error: dict[int, float]

    def __post_init__(self) -> None:
        n = self.coupling.num_qubits
        for qubit in self.base_single_qubit_error:
            if not 0 <= qubit < n:
                raise CalibrationError(f"baseline 1q error qubit {qubit} out of range")
        for pair in self.base_two_qubit_error:
            if tuple(sorted(pair)) not in self.coupling.edges:
                raise CalibrationError(
                    f"baseline CX error pair {pair} is not a coupler of {self.name}"
                )
        for qubit in self.base_readout_error:
            if not 0 <= qubit < n:
                raise CalibrationError(f"baseline readout qubit {qubit} out of range")

    @property
    def num_qubits(self) -> int:
        """Number of physical qubits on the device."""
        return self.coupling.num_qubits


def belem_backend() -> BackendSpec:
    """A 5-qubit belem-like device (T-shaped coupling)."""
    coupling = belem_coupling()
    return BackendSpec(
        name="ibmq_belem",
        coupling=coupling,
        base_single_qubit_error={0: 2.2e-4, 1: 1.9e-4, 2: 3.1e-4, 3: 2.6e-4, 4: 3.7e-4},
        base_two_qubit_error={
            (0, 1): 7.4e-3,
            (1, 2): 9.8e-3,
            (1, 3): 1.15e-2,
            (3, 4): 1.39e-2,
        },
        base_readout_error={0: 2.1e-2, 1: 2.7e-2, 2: 3.3e-2, 3: 3.9e-2, 4: 4.6e-2},
    )


def jakarta_backend() -> BackendSpec:
    """A 7-qubit jakarta-like device (H-shaped coupling)."""
    coupling = jakarta_coupling()
    return BackendSpec(
        name="ibm_jakarta",
        coupling=coupling,
        base_single_qubit_error={
            0: 2.4e-4,
            1: 1.8e-4,
            2: 2.9e-4,
            3: 2.2e-4,
            4: 3.3e-4,
            5: 2.0e-4,
            6: 3.8e-4,
        },
        base_two_qubit_error={
            (0, 1): 6.8e-3,
            (1, 2): 8.3e-3,
            (1, 3): 7.6e-3,
            (3, 5): 9.2e-3,
            (4, 5): 1.08e-2,
            (5, 6): 1.21e-2,
        },
        base_readout_error={
            0: 2.0e-2,
            1: 2.4e-2,
            2: 3.0e-2,
            3: 2.2e-2,
            4: 3.6e-2,
            5: 2.8e-2,
            6: 4.2e-2,
        },
    )


NAMED_BACKENDS = {
    "belem": belem_backend,
    "ibmq_belem": belem_backend,
    "jakarta": jakarta_backend,
    "ibm_jakarta": jakarta_backend,
}


def synthetic_backend(coupling: CouplingMap, seed: int = 0) -> BackendSpec:
    """A realistic baseline-noise spec for an arbitrary coupling map.

    Baseline error rates are drawn (reproducibly, from ``seed`` and the
    device name) inside the same ranges the paper reports for IBM devices:
    single-qubit errors of a few 1e-4, CNOT errors around 1e-2, readout
    errors of a few percent.  This is what makes every device-library
    topology usable as a calibration-history source — the
    :class:`~repro.calibration.synthetic.FluctuatingNoiseGenerator` only
    needs a :class:`BackendSpec` to fluctuate around.
    """
    from repro.utils.rng import ensure_rng

    # Mix the device name into the seed so two same-sized topologies do not
    # share bit-identical baselines.
    name_mix = sum(ord(ch) * (i + 1) for i, ch in enumerate(coupling.name))
    rng = ensure_rng((int(seed) * 100003 + name_mix) % (2**31))
    single = {
        q: float(rng.uniform(1.5e-4, 4.0e-4)) for q in range(coupling.num_qubits)
    }
    two = {
        tuple(sorted(edge)): float(rng.uniform(6.0e-3, 1.5e-2))
        for edge in coupling.edges
    }
    readout = {
        q: float(rng.uniform(1.8e-2, 4.8e-2)) for q in range(coupling.num_qubits)
    }
    return BackendSpec(
        name=coupling.name,
        coupling=coupling,
        base_single_qubit_error=single,
        base_two_qubit_error=two,
        base_readout_error=readout,
    )


def get_backend(name: str, seed: int = 0) -> BackendSpec:
    """Look up a backend spec: the paper's IBM devices or a library device.

    Names from :data:`repro.transpiler.devices.DEVICE_LIBRARY` resolve to a
    :func:`synthetic_backend` over that topology (baselines derived from
    ``seed``); the IBM names keep their hand-tuned paper baselines.
    """
    key = name.lower()
    if key in NAMED_BACKENDS:
        return NAMED_BACKENDS[key]()
    from repro.transpiler.devices import DEVICE_LIBRARY, list_devices

    if key in DEVICE_LIBRARY:
        return synthetic_backend(DEVICE_LIBRARY[key](), seed=seed)
    raise CalibrationError(
        f"unknown backend {name!r}; known backends: {list_devices()}"
    )
