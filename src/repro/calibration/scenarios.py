"""Drift scenarios: structured, composable families of calibration drift.

The synthetic generator in :mod:`repro.calibration.synthetic` replays *one*
statistical regime — a mean-reverting walk with random high-noise episodes.
The paper's claim, however, is about behaviour under calibration drift in
general, and a serving stack should be stress-tested against *families* of
drift, not a single trace.  This module provides that scenario layer:

* a :class:`DriftScenario` is a pure function from ``(num_days, channels,
  rng)`` to a per-day, per-channel **log-space perturbation field** applied
  on top of a device's baseline error rates;
* built-in scenarios cover the qualitatively distinct regimes a fleet
  operator sees: gradual seasonal drift (:class:`GradualDrift`), sudden
  jumps with later recalibration (:class:`SuddenJump`), correlated
  multi-qubit degradation (:class:`CorrelatedDegradation`), heteroskedastic
  per-feature noise (:class:`HeteroskedasticNoise`), readout-only drift
  (:class:`ReadoutDrift`), and a no-drift control (:class:`CalmScenario`);
* scenarios compose: ``a + b`` sums fields (multiplies error-rate factors),
  ``a.scaled(k)`` attenuates or amplifies, and ``a.splice(b, at)`` switches
  regimes mid-history — so "two quiet months, then a bad quarter" is one
  expression;
* :meth:`DriftScenario.history` renders a scenario into a
  :class:`~repro.calibration.history.CalibrationHistory` for any device of
  :data:`repro.transpiler.devices.DEVICE_LIBRARY` (or the paper's IBM
  chips), with per-``(seed, device, scenario)`` reproducible streams and
  error rates clipped into physical bounds.

Everything downstream — the :mod:`repro.fleet` harness, the CLI ``fleet``
subcommand, the serving watcher — consumes scenarios only through
:func:`get_scenario` / :meth:`DriftScenario.history`, so new scenario
families are pure additions to :data:`SCENARIO_LIBRARY`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, Union

import numpy as np

from repro.calibration.backends import BackendSpec
from repro.calibration.history import CalibrationHistory
from repro.calibration.snapshot import CalibrationSnapshot
from repro.calibration.synthetic import (
    _iso_dates,
    device_seed_sequence,
    resolve_device,
)
from repro.exceptions import CalibrationError
from repro.utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class Channel:
    """One error-rate channel of a device (a feature of its snapshots).

    Attributes
    ----------
    kind:
        ``"single"`` (single-qubit gate error), ``"two"`` (CNOT error of a
        coupler), or ``"readout"`` (assignment error).
    key:
        The qubit index (``single`` / ``readout``) or sorted qubit pair
        (``two``).
    baseline:
        The device's baseline error rate the scenario perturbs around.
    """

    kind: str
    key: object
    baseline: float

    def qubits(self) -> tuple[int, ...]:
        """The physical qubits this channel touches."""
        if self.kind == "two":
            return tuple(self.key)
        return (int(self.key),)


def backend_channels(spec: BackendSpec) -> list[Channel]:
    """The ordered channel list of a backend (snapshot feature order)."""
    channels = [
        Channel("single", qubit, error)
        for qubit, error in sorted(spec.base_single_qubit_error.items())
    ]
    channels += [
        Channel("two", pair, error)
        for pair, error in sorted(spec.base_two_qubit_error.items())
    ]
    channels += [
        Channel("readout", qubit, error)
        for qubit, error in sorted(spec.base_readout_error.items())
    ]
    if not channels:
        raise CalibrationError("backend has no baseline error channels")
    return channels


@dataclass(frozen=True)
class ScenarioBounds:
    """Physical clipping bounds applied when rendering a scenario.

    Defaults match the caps of
    :class:`~repro.calibration.synthetic.FluctuationConfig`, so scenario
    histories live in the same numeric regime as the paper's synthetic
    traces.
    """

    single_qubit_floor: float = 1e-6
    single_qubit_cap: float = 0.01
    two_qubit_floor: float = 1e-5
    two_qubit_cap: float = 0.08
    readout_floor: float = 1e-3
    readout_cap: float = 0.12

    def clip(self, channel: Channel, value: float) -> float:
        """Clip one error-rate value into the channel's physical range."""
        if channel.kind == "single":
            return float(np.clip(value, self.single_qubit_floor, self.single_qubit_cap))
        if channel.kind == "two":
            return float(np.clip(value, self.two_qubit_floor, self.two_qubit_cap))
        return float(np.clip(value, self.readout_floor, self.readout_cap))


def _progress(num_days: int) -> np.ndarray:
    """Per-day progress in ``[0, 1]`` (0 for a single-day history)."""
    if num_days <= 1:
        return np.zeros(num_days)
    return np.arange(num_days) / (num_days - 1)


class DriftScenario:
    """Base class: a deterministic per-day log-space perturbation field.

    Subclasses implement :meth:`field`; everything else — combinators,
    naming, rendering into calibration histories — is shared.  Scenarios
    are stateless: all randomness flows through the ``rng`` handed to
    :meth:`field`, so a scenario object can be reused across devices and
    seeds without cross-talk.
    """

    name: str = "scenario"

    def field(
        self, num_days: int, channels: Sequence[Channel], rng: np.random.Generator
    ) -> np.ndarray:
        """The ``(num_days, len(channels))`` log-space perturbation matrix."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Combinators
    # ------------------------------------------------------------------
    def __add__(self, other: "DriftScenario") -> "CompositeScenario":
        """Sum two scenarios' fields (multiply their error-rate factors)."""
        if not isinstance(other, DriftScenario):
            return NotImplemented
        return CompositeScenario([self, other])

    def scaled(self, factor: float) -> "ScaledScenario":
        """Attenuate (``factor < 1``) or amplify (``> 1``) this scenario."""
        return ScaledScenario(self, factor)

    def splice(self, other: "DriftScenario", at: float) -> "SplicedScenario":
        """Switch from this scenario to ``other`` at day ``at``.

        ``at`` is an absolute day index when >= 1, or a fraction of the
        history length when in ``(0, 1)``.
        """
        return SplicedScenario(self, other, at)

    def named(self, name: str) -> "DriftScenario":
        """Set this scenario's display name (returns ``self`` for chaining)."""
        self.name = name
        return self

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def history(
        self,
        device: Union[str, BackendSpec],
        num_days: int,
        seed: SeedLike = 0,
        start_date: str | None = None,
        bounds: ScenarioBounds | None = None,
    ) -> CalibrationHistory:
        """Render this scenario into a calibration history for ``device``.

        The device's baseline identity derives from ``(seed, device)`` and
        the scenario's perturbation stream from ``(seed, device,
        scenario name)`` — both via
        :func:`~repro.calibration.synthetic.device_seed_sequence` — so the
        same cell always replays identically while different cells of a
        fleet stay statistically independent.
        """
        if num_days <= 0:
            raise CalibrationError(f"num_days must be positive, got {num_days}")
        bounds = bounds or ScenarioBounds()
        spec, default_start, device_rng = resolve_device(device, seed)
        if isinstance(seed, (int, np.integer)):
            rng = np.random.default_rng(
                device_seed_sequence(spec.name, int(seed), "scenario", self.name)
            )
        else:
            rng = ensure_rng(device_rng)
        channels = backend_channels(spec)
        field = np.asarray(self.field(num_days, channels, rng), dtype=float)
        if field.shape != (num_days, len(channels)):
            raise CalibrationError(
                f"scenario {self.name!r} produced field of shape {field.shape}; "
                f"expected {(num_days, len(channels))}"
            )
        baselines = np.array([channel.baseline for channel in channels])
        values = np.exp(np.log(baselines)[None, :] + field)
        dates = _iso_dates(
            start_date if start_date is not None else default_start, num_days
        )
        history = CalibrationHistory()
        for day in range(num_days):
            single: dict[int, float] = {}
            two: dict[tuple[int, int], float] = {}
            readout: dict[int, float] = {}
            for channel, value in zip(channels, values[day]):
                clipped = bounds.clip(channel, value)
                if channel.kind == "single":
                    single[channel.key] = clipped
                elif channel.kind == "two":
                    two[channel.key] = clipped
                else:
                    readout[channel.key] = clipped
            history.append(
                CalibrationSnapshot(
                    num_qubits=spec.num_qubits,
                    single_qubit_error=single,
                    two_qubit_error=two,
                    readout_error=readout,
                    date=dates[day],
                )
            )
        return history


# ----------------------------------------------------------------------
# Built-in scenario families
# ----------------------------------------------------------------------
class CalmScenario(DriftScenario):
    """No drift at all: every day replays the baseline calibration.

    The control cell of a fleet sweep — any adaptation actions beyond the
    initial refresh are false positives under this scenario.
    """

    name = "calm"

    def field(self, num_days, channels, rng):
        """A zero field (baseline error rates every day)."""
        return np.zeros((num_days, len(channels)))


class GradualDrift(DriftScenario):
    """Gradual seasonal drift: per-channel sinusoid plus a slow ramp.

    Models the slow ageing + seasonal (cryostat / facility) component of
    real calibration series.  Each channel gets its own random phase, so
    the *ranking* of noisy channels rotates through the season — the
    heterogeneity that drives the paper's layout adaptation.
    """

    name = "seasonal"

    def __init__(
        self,
        amplitude: float = 0.3,
        period_days: float = 90.0,
        ramp: float = 0.35,
        wobble_sigma: float = 0.02,
    ):
        self.amplitude = amplitude
        self.period_days = period_days
        self.ramp = ramp
        self.wobble_sigma = wobble_sigma

    def field(self, num_days, channels, rng):
        """Sinusoid with per-channel phase + linear ramp + small wobble."""
        n = len(channels)
        phases = rng.uniform(0.0, 2.0 * np.pi, size=n)
        days = np.arange(num_days)[:, None]
        seasonal = self.amplitude * np.sin(
            2.0 * np.pi * days / self.period_days + phases[None, :]
        )
        ramp = self.ramp * _progress(num_days)[:, None]
        wobble = rng.normal(0.0, self.wobble_sigma, size=(num_days, n))
        return seasonal + ramp + wobble


class SuddenJump(DriftScenario):
    """Sudden degradation jumps, later cleared by recalibration events.

    A step process: with probability ``jump_rate`` per day a random subset
    of channels jumps up by a multiplicative factor, and with probability
    ``recalibration_rate`` per day the device is recalibrated back to its
    baseline — the "the fridge was opened / the morning calibration fixed
    it" regime, and the hardest case for a serving watcher because both
    edges are discontinuous.
    """

    name = "jump"

    def __init__(
        self,
        jump_rate: float = 0.08,
        recalibration_rate: float = 0.2,
        jump_scale: tuple[float, float] = (1.8, 3.5),
        affected_fraction: float = 0.5,
    ):
        self.jump_rate = jump_rate
        self.recalibration_rate = recalibration_rate
        self.jump_scale = jump_scale
        self.affected_fraction = affected_fraction

    def field(self, num_days, channels, rng):
        """Accumulated jump offsets, reset to zero on recalibration days."""
        n = len(channels)
        offsets = np.zeros(n)
        rows = np.zeros((num_days, n))
        for day in range(num_days):
            if offsets.any() and rng.random() < self.recalibration_rate:
                offsets[:] = 0.0
            if rng.random() < self.jump_rate:
                affected = rng.random(n) < self.affected_fraction
                if not affected.any():
                    affected[rng.integers(0, n)] = True
                jump = np.log(rng.uniform(*self.jump_scale))
                offsets = np.where(affected, offsets + jump, offsets)
            rows[day] = offsets
        return rows


class CorrelatedDegradation(DriftScenario):
    """Correlated degradation of a connected multi-qubit region.

    Picks a random seed qubit and grows a cluster along the device's
    couplers; every channel touching the cluster then degrades together —
    a shared monotone ramp plus one shared random walk.  Channels fully
    inside the cluster feel the full effect, boundary couplers half of it.
    Models a cold-finger / TWPA / wiring problem that takes out a chip
    region rather than independent qubits.
    """

    name = "correlated"

    def __init__(
        self,
        cluster_fraction: float = 0.5,
        rate: float = 0.9,
        shared_sigma: float = 0.05,
    ):
        self.cluster_fraction = cluster_fraction
        self.rate = rate
        self.shared_sigma = shared_sigma

    def _cluster(self, channels: Sequence[Channel], rng) -> set[int]:
        qubits = sorted({q for channel in channels for q in channel.qubits()})
        adjacency: dict[int, set[int]] = {q: set() for q in qubits}
        for channel in channels:
            if channel.kind == "two":
                a, b = channel.qubits()
                adjacency[a].add(b)
                adjacency[b].add(a)
        size = max(2, int(round(self.cluster_fraction * len(qubits))))
        start = int(rng.choice(np.asarray(qubits)))
        cluster = {start}
        frontier = [start]
        while frontier and len(cluster) < size:
            current = frontier.pop(0)
            for neighbor in sorted(adjacency[current]):
                if neighbor not in cluster:
                    cluster.add(neighbor)
                    frontier.append(neighbor)
                    if len(cluster) >= size:
                        break
        return cluster

    def field(self, num_days, channels, rng):
        """Shared ramp + shared walk, weighted by cluster membership."""
        cluster = self._cluster(channels, rng)
        weights = np.array(
            [
                1.0
                if set(channel.qubits()) <= cluster
                else 0.5
                if set(channel.qubits()) & cluster
                else 0.0
                for channel in channels
            ]
        )
        shared_walk = np.cumsum(rng.normal(0.0, self.shared_sigma, size=num_days))
        trend = self.rate * _progress(num_days) + shared_walk
        return trend[:, None] * weights[None, :]


class HeteroskedasticNoise(DriftScenario):
    """Independent daily noise whose variance differs per channel.

    Each channel draws its own volatility from ``sigma_range``; some
    features are then nearly flat while others swing daily — the
    per-feature heteroskedasticity that stresses drift detectors tuned to
    a single global threshold.
    """

    name = "heteroskedastic"

    def __init__(self, sigma_range: tuple[float, float] = (0.02, 0.3)):
        self.sigma_range = sigma_range

    def field(self, num_days, channels, rng):
        """IID daily log-noise with per-channel volatility."""
        n = len(channels)
        sigmas = rng.uniform(*self.sigma_range, size=n)
        return rng.normal(0.0, 1.0, size=(num_days, n)) * sigmas[None, :]


class ReadoutDrift(DriftScenario):
    """Drift confined to the readout (measurement) channels.

    Gate errors stay at baseline while readout errors random-walk upward —
    the regime where recompilation (layout) should *not* trigger but
    readout-sensitive adaptation should.
    """

    name = "readout_drift"

    def __init__(self, walk_sigma: float = 0.06, ramp: float = 0.4):
        self.walk_sigma = walk_sigma
        self.ramp = ramp

    def field(self, num_days, channels, rng):
        """Random walk + ramp on readout channels, zeros elsewhere."""
        n = len(channels)
        mask = np.array([channel.kind == "readout" for channel in channels])
        rows = np.zeros((num_days, n))
        count = int(mask.sum())
        if count:
            walk = np.cumsum(
                rng.normal(0.0, self.walk_sigma, size=(num_days, count)), axis=0
            )
            rows[:, mask] = walk + self.ramp * _progress(num_days)[:, None]
        return rows


# ----------------------------------------------------------------------
# Combinator scenarios
# ----------------------------------------------------------------------
class CompositeScenario(DriftScenario):
    """Sum of several scenarios' fields (product of error-rate factors).

    Each part draws from its own child stream spawned deterministically
    from the render rng, so a composite is reproducible regardless of how
    its parts consume randomness.
    """

    def __init__(self, parts: Sequence[DriftScenario]):
        flattened: list[DriftScenario] = []
        for part in parts:
            if isinstance(part, CompositeScenario):
                flattened.extend(part.parts)
            else:
                flattened.append(part)
        if not flattened:
            raise CalibrationError("a composite scenario needs at least one part")
        self.parts = flattened
        self.name = "+".join(part.name for part in flattened)

    def field(self, num_days, channels, rng):
        """Sum of every part's field, each on its own spawned stream."""
        children = rng.spawn(len(self.parts))
        total = np.zeros((num_days, len(channels)))
        for part, child in zip(self.parts, children):
            total = total + np.asarray(part.field(num_days, channels, child))
        return total


class ScaledScenario(DriftScenario):
    """A scenario's field multiplied by a constant factor."""

    def __init__(self, inner: DriftScenario, factor: float):
        self.inner = inner
        self.factor = float(factor)
        self.name = f"{self.factor:g}x({inner.name})"

    def field(self, num_days, channels, rng):
        """The inner field scaled by ``factor``."""
        return self.factor * np.asarray(self.inner.field(num_days, channels, rng))


class SplicedScenario(DriftScenario):
    """Regime change: one scenario's days followed by another's.

    ``at`` is an absolute day index (``>= 1``) or a fraction of the
    history (``0 < at < 1``).  Both halves render over the full horizon on
    independent spawned streams and the rows are stitched, so moving the
    splice point never changes either regime's internal trajectory.
    """

    def __init__(self, first: DriftScenario, second: DriftScenario, at: float):
        if at <= 0:
            raise CalibrationError(f"splice point must be positive, got {at}")
        self.first = first
        self.second = second
        self.at = at
        self.name = f"{first.name}|{second.name}@{at:g}"

    def _split_day(self, num_days: int) -> int:
        if 0 < self.at < 1:
            day = int(round(self.at * num_days))
        else:
            day = int(self.at)
        return min(max(day, 0), num_days)

    def field(self, num_days, channels, rng):
        """First regime's rows up to the splice day, then the second's."""
        split = self._split_day(num_days)
        first_rng, second_rng = rng.spawn(2)
        first = np.asarray(self.first.field(num_days, channels, first_rng))
        second = np.asarray(self.second.field(num_days, channels, second_rng))
        return np.vstack([first[:split], second[split:]])


# ----------------------------------------------------------------------
# Library
# ----------------------------------------------------------------------
#: name -> factory for every built-in scenario (fresh instance per call).
SCENARIO_LIBRARY: dict[str, Callable[[], DriftScenario]] = {
    "calm": CalmScenario,
    "seasonal": GradualDrift,
    "jump": SuddenJump,
    "correlated": CorrelatedDegradation,
    "heteroskedastic": HeteroskedasticNoise,
    "readout_drift": ReadoutDrift,
    # Composites exercising the combinator algebra.
    "storm": lambda: (
        GradualDrift() + SuddenJump().scaled(0.8) + HeteroskedasticNoise()
    ).named("storm"),
    "recovery": lambda: SuddenJump(jump_rate=0.3)
    .splice(CalmScenario(), 0.5)
    .named("recovery"),
}


def list_scenarios() -> list[str]:
    """Every selectable scenario name, sorted."""
    return sorted(SCENARIO_LIBRARY)


def get_scenario(scenario: Union[str, DriftScenario]) -> DriftScenario:
    """Resolve a scenario name (or pass an instance through)."""
    if isinstance(scenario, DriftScenario):
        return scenario
    key = scenario.lower()
    if key not in SCENARIO_LIBRARY:
        raise CalibrationError(
            f"unknown scenario {scenario!r}; known scenarios: {list_scenarios()}"
        )
    return SCENARIO_LIBRARY[key]()
