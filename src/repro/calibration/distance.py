"""Distances between calibration snapshots.

The repository constructor and manager compare calibration vectors with the
paper's *performance-aware weighted L1 distance*: each feature dimension is
weighted by the absolute Pearson correlation between that error rate and the
model's accuracy across the offline history (Eq. 5), so error rates that
actually hurt the model dominate the match.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import CalibrationError


def performance_weights(calibrations: np.ndarray, accuracies: np.ndarray) -> np.ndarray:
    """Per-feature weights ``w_j = |corr(accuracy, C[:, j])|``.

    Features with zero variance (or when accuracy has zero variance) get a
    weight of zero: they carry no information about performance.
    """
    calibrations = np.asarray(calibrations, dtype=float)
    accuracies = np.asarray(accuracies, dtype=float)
    if calibrations.ndim != 2:
        raise CalibrationError("calibrations must be a 2-D (days x features) matrix")
    if accuracies.shape != (calibrations.shape[0],):
        raise CalibrationError(
            f"accuracies of shape {accuracies.shape} do not match "
            f"{calibrations.shape[0]} calibration rows"
        )
    n_features = calibrations.shape[1]
    weights = np.zeros(n_features, dtype=float)
    acc_std = accuracies.std()
    if acc_std == 0 or calibrations.shape[0] < 2:
        return weights
    acc_centered = accuracies - accuracies.mean()
    for j in range(n_features):
        column = calibrations[:, j]
        col_std = column.std()
        if col_std == 0:
            continue
        covariance = float(np.mean(acc_centered * (column - column.mean())))
        weights[j] = abs(covariance / (acc_std * col_std))
    return weights


def weighted_l1_distance(x: np.ndarray, y: np.ndarray, weights: np.ndarray) -> float:
    """The paper's ``dist^w_L1``: Manhattan distance of weighted vectors."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    weights = np.asarray(weights, dtype=float)
    if x.shape != y.shape or x.shape != weights.shape:
        raise CalibrationError(
            f"shape mismatch: x{x.shape}, y{y.shape}, weights{weights.shape}"
        )
    return float(np.sum(np.abs(weights * x - weights * y)))


def l2_distance(x: np.ndarray, y: np.ndarray) -> float:
    """Plain Euclidean distance (the Table II baseline)."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape:
        raise CalibrationError(f"shape mismatch: x{x.shape}, y{y.shape}")
    return float(np.linalg.norm(x - y))


def pairwise_weighted_l1(points: np.ndarray, centers: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Distance matrix between ``points`` (n x d) and ``centers`` (k x d)."""
    points = np.asarray(points, dtype=float) * weights
    centers = np.asarray(centers, dtype=float) * weights
    return np.abs(points[:, None, :] - centers[None, :, :]).sum(axis=2)
