"""Calibration snapshots: the per-day error-rate tables of a device.

A :class:`CalibrationSnapshot` is the ``D_t`` / ``D_c`` object of the paper:
the single-qubit gate error of every physical qubit, the CNOT error of every
coupler, and the readout error of every qubit, for one calibration run
(one day).  Snapshots vectorize into fixed-order feature vectors so the
clustering and repository-matching code can treat them as points in R^d.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

import numpy as np

from repro.exceptions import CalibrationError


def _normalize_pair(pair: Sequence[int]) -> tuple[int, int]:
    a, b = int(pair[0]), int(pair[1])
    if a == b:
        raise CalibrationError(f"two-qubit error pair ({a}, {b}) is a self loop")
    return (a, b) if a < b else (b, a)


@dataclass
class CalibrationSnapshot:
    """Error rates of a device at one calibration time.

    Attributes
    ----------
    num_qubits:
        Number of physical qubits.
    single_qubit_error:
        Average single-qubit gate (sx/x) error per qubit.
    two_qubit_error:
        CNOT error per coupler, keyed by the sorted qubit pair.
    readout_error:
        Measurement assignment error per qubit.
    date:
        Optional ISO date string identifying the calibration day.
    """

    num_qubits: int
    single_qubit_error: dict[int, float] = field(default_factory=dict)
    two_qubit_error: dict[tuple[int, int], float] = field(default_factory=dict)
    readout_error: dict[int, float] = field(default_factory=dict)
    date: Optional[str] = None

    def __post_init__(self) -> None:
        if self.num_qubits <= 0:
            raise CalibrationError(f"num_qubits must be positive, got {self.num_qubits}")
        self.single_qubit_error = {
            int(q): float(e) for q, e in self.single_qubit_error.items()
        }
        self.two_qubit_error = {
            _normalize_pair(p): float(e) for p, e in self.two_qubit_error.items()
        }
        self.readout_error = {int(q): float(e) for q, e in self.readout_error.items()}
        for table_name, table in (
            ("single_qubit_error", self.single_qubit_error),
            ("readout_error", self.readout_error),
        ):
            for qubit, error in table.items():
                if not 0 <= qubit < self.num_qubits:
                    raise CalibrationError(f"{table_name} qubit {qubit} out of range")
                if error < 0 or error > 1:
                    raise CalibrationError(
                        f"{table_name}[{qubit}] = {error} outside [0, 1]"
                    )
        for pair, error in self.two_qubit_error.items():
            for qubit in pair:
                if not 0 <= qubit < self.num_qubits:
                    raise CalibrationError(f"two_qubit_error pair {pair} out of range")
            if error < 0 or error > 1:
                raise CalibrationError(f"two_qubit_error[{pair}] = {error} outside [0, 1]")

    # ------------------------------------------------------------------
    # Lookups used by layout, compression, and the noise model
    # ------------------------------------------------------------------
    def gate_error(self, qubit: int) -> float:
        """Single-qubit gate error of ``qubit`` (0 if unknown)."""
        return self.single_qubit_error.get(int(qubit), 0.0)

    def cx_error(self, qubit_a: int, qubit_b: int) -> float:
        """CNOT error of the coupler between the two qubits (0 if unknown)."""
        return self.two_qubit_error.get(_normalize_pair((qubit_a, qubit_b)), 0.0)

    def readout(self, qubit: int) -> float:
        """Readout assignment error of ``qubit`` (0 if unknown)."""
        return self.readout_error.get(int(qubit), 0.0)

    def noise_on(self, qubits: Sequence[int]) -> float:
        """The noise rate ``C(A(g_i))`` for a gate acting on ``qubits``.

        Single-qubit gates read the qubit's gate error; two-qubit gates read
        the coupler's CNOT error.
        """
        qubits = tuple(qubits)
        if len(qubits) == 1:
            return self.gate_error(qubits[0])
        if len(qubits) == 2:
            return self.cx_error(qubits[0], qubits[1])
        raise CalibrationError(f"unsupported qubit association {qubits}")

    # ------------------------------------------------------------------
    # Vectorization
    # ------------------------------------------------------------------
    def feature_names(self) -> list[str]:
        """Stable, sorted feature ordering used by :meth:`to_vector`."""
        names = [f"sq_{q}" for q in sorted(self.single_qubit_error)]
        names += [f"cx_{a}_{b}" for a, b in sorted(self.two_qubit_error)]
        names += [f"ro_{q}" for q in sorted(self.readout_error)]
        return names

    def to_vector(self) -> np.ndarray:
        """Concatenate all error rates into a fixed-order feature vector."""
        values = [self.single_qubit_error[q] for q in sorted(self.single_qubit_error)]
        values += [self.two_qubit_error[p] for p in sorted(self.two_qubit_error)]
        values += [self.readout_error[q] for q in sorted(self.readout_error)]
        return np.asarray(values, dtype=float)

    @classmethod
    def from_vector(
        cls,
        vector: np.ndarray,
        template: "CalibrationSnapshot",
        date: Optional[str] = None,
    ) -> "CalibrationSnapshot":
        """Rebuild a snapshot from a feature vector using ``template``'s layout."""
        vector = np.asarray(vector, dtype=float)
        expected = len(template.feature_names())
        if vector.shape != (expected,):
            raise CalibrationError(
                f"vector of shape {vector.shape} does not match template with "
                f"{expected} features"
            )
        cursor = 0
        single = {}
        for qubit in sorted(template.single_qubit_error):
            single[qubit] = float(vector[cursor])
            cursor += 1
        two = {}
        for pair in sorted(template.two_qubit_error):
            two[pair] = float(vector[cursor])
            cursor += 1
        readout = {}
        for qubit in sorted(template.readout_error):
            readout[qubit] = float(vector[cursor])
            cursor += 1
        return cls(
            num_qubits=template.num_qubits,
            single_qubit_error=single,
            two_qubit_error=two,
            readout_error=readout,
            date=date,
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "num_qubits": self.num_qubits,
            "date": self.date,
            "single_qubit_error": {str(q): e for q, e in self.single_qubit_error.items()},
            "two_qubit_error": {f"{a}-{b}": e for (a, b), e in self.two_qubit_error.items()},
            "readout_error": {str(q): e for q, e in self.readout_error.items()},
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "CalibrationSnapshot":
        """Inverse of :meth:`to_dict`."""
        two = {}
        for key, value in payload.get("two_qubit_error", {}).items():
            a, b = key.split("-")
            two[(int(a), int(b))] = float(value)
        return cls(
            num_qubits=int(payload["num_qubits"]),
            single_qubit_error={int(q): float(e) for q, e in payload.get("single_qubit_error", {}).items()},
            two_qubit_error=two,
            readout_error={int(q): float(e) for q, e in payload.get("readout_error", {}).items()},
            date=payload.get("date"),
        )

    def summary(self) -> dict[str, float]:
        """Mean error rates, handy for logging and reports."""
        def _mean(values: Iterable[float]) -> float:
            values = list(values)
            return float(np.mean(values)) if values else 0.0

        return {
            "mean_single_qubit_error": _mean(self.single_qubit_error.values()),
            "mean_two_qubit_error": _mean(self.two_qubit_error.values()),
            "mean_readout_error": _mean(self.readout_error.values()),
        }
