"""Synthetic fluctuating-noise generator.

The paper pulls ~389 days of IBM belem calibrations; that archive is not
available offline, so this module generates a statistically similar history:

* every error rate follows a mean-reverting log-space random walk around the
  backend's baseline (slow drift),
* "regime shifts" multiply a random subset of qubits/couplers by a large
  factor for a contiguous window of days — this is the *heterogeneous*
  fluctuation of Observation 2 (different qubits become the noisiest at
  different times), and because regimes recur, previously compressed models
  become useful again (Observation 3),
* occasional single-day spikes model calibration glitches.

Everything is driven by an explicit seed so experiments are reproducible.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from datetime import date, timedelta
from typing import Optional, Union

import numpy as np

from repro.calibration.backends import BackendSpec
from repro.calibration.history import CalibrationHistory
from repro.calibration.snapshot import CalibrationSnapshot
from repro.exceptions import CalibrationError
from repro.utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class FluctuationConfig:
    """Tuning knobs for the synthetic noise process.

    Attributes
    ----------
    drift_sigma:
        Daily standard deviation of the log-space random walk.
    mean_reversion:
        Pull toward the baseline per day (0 = pure random walk, 1 = white
        noise around the baseline).
    regime_rate:
        Probability per day of starting a new high-noise regime.
    regime_duration:
        (min, max) length in days of a regime.
    regime_scale:
        (min, max) multiplicative factor applied during a regime.
    regime_fraction:
        Fraction of channels affected by each regime (drawn per regime).
    readout_regime_damping:
        How strongly regimes affect readout errors relative to gate errors
        (the paper's collapses are driven primarily by CNOT noise, so readout
        fluctuation is kept milder).
    spike_rate:
        Probability per day and channel of an isolated one-day spike.
    spike_scale:
        (min, max) multiplicative factor of a spike.
    readout_floor / readout_cap:
        Clipping bounds for readout error rates.
    single_qubit_cap / two_qubit_cap:
        Upper clips for gate error rates.
    """

    drift_sigma: float = 0.06
    mean_reversion: float = 0.08
    regime_rate: float = 0.03
    regime_duration: tuple[int, int] = (10, 40)
    regime_scale: tuple[float, float] = (2.0, 5.0)
    regime_fraction: float = 0.4
    readout_regime_damping: float = 0.25
    spike_rate: float = 0.01
    spike_scale: tuple[float, float] = (1.5, 3.0)
    readout_floor: float = 1e-3
    readout_cap: float = 0.12
    single_qubit_cap: float = 0.01
    two_qubit_cap: float = 0.08


def _iso_dates(start: str, count: int) -> list[str]:
    start_date = date.fromisoformat(start)
    return [(start_date + timedelta(days=i)).isoformat() for i in range(count)]


class FluctuatingNoiseGenerator:
    """Generate a day-by-day calibration history for a backend."""

    def __init__(
        self,
        backend: BackendSpec,
        config: Optional[FluctuationConfig] = None,
        seed: SeedLike = None,
    ):
        self.backend = backend
        self.config = config or FluctuationConfig()
        self._rng = ensure_rng(seed)
        # Channel bookkeeping: a flat list of (kind, key, baseline).
        self._channels: list[tuple[str, object, float]] = []
        for qubit, error in sorted(backend.base_single_qubit_error.items()):
            self._channels.append(("single", qubit, error))
        for pair, error in sorted(backend.base_two_qubit_error.items()):
            self._channels.append(("two", pair, error))
        for qubit, error in sorted(backend.base_readout_error.items()):
            self._channels.append(("readout", qubit, error))
        if not self._channels:
            raise CalibrationError("backend has no baseline error channels")

    def generate(self, num_days: int, start_date: str = "2021-08-10") -> CalibrationHistory:
        """Produce ``num_days`` consecutive calibration snapshots."""
        if num_days <= 0:
            raise CalibrationError(f"num_days must be positive, got {num_days}")
        cfg = self.config
        rng = self._rng
        n_channels = len(self._channels)
        baselines = np.array([c[2] for c in self._channels], dtype=float)
        log_baseline = np.log(baselines)
        log_level = log_baseline.copy()

        # Active regimes: list of (days_remaining, per-channel multiplier).
        regimes: list[list] = []
        dates = _iso_dates(start_date, num_days)
        history = CalibrationHistory()

        for day in range(num_days):
            # Slow mean-reverting drift in log space.
            log_level = (
                log_level
                + cfg.mean_reversion * (log_baseline - log_level)
                + rng.normal(0.0, cfg.drift_sigma, size=n_channels)
            )
            values = np.exp(log_level)

            # Possibly start a new heterogeneous high-noise regime.
            if rng.random() < cfg.regime_rate:
                duration = int(rng.integers(cfg.regime_duration[0], cfg.regime_duration[1] + 1))
                affected = rng.random(n_channels) < cfg.regime_fraction
                if not affected.any():
                    affected[rng.integers(0, n_channels)] = True
                scale = rng.uniform(*cfg.regime_scale)
                # Readout channels fluctuate less than gate channels: the
                # collapses of interest come from CNOT noise heterogeneity.
                per_channel_scale = np.array(
                    [
                        1.0 + (scale - 1.0) * cfg.readout_regime_damping
                        if kind == "readout"
                        else scale
                        for kind, _, _ in self._channels
                    ]
                )
                multiplier = np.where(affected, per_channel_scale, 1.0)
                regimes.append([duration, multiplier])

            # Apply active regimes and retire expired ones.
            for regime in regimes:
                values = values * regime[1]
                regime[0] -= 1
            regimes = [r for r in regimes if r[0] > 0]

            # Isolated one-day spikes.
            spikes = rng.random(n_channels) < cfg.spike_rate
            if spikes.any():
                values = np.where(
                    spikes, values * rng.uniform(*cfg.spike_scale, size=n_channels), values
                )

            history.append(self._snapshot_from_values(values, dates[day]))
        return history

    def _snapshot_from_values(self, values: np.ndarray, day: str) -> CalibrationSnapshot:
        cfg = self.config
        single: dict[int, float] = {}
        two: dict[tuple[int, int], float] = {}
        readout: dict[int, float] = {}
        for (kind, key, _), value in zip(self._channels, values):
            if kind == "single":
                single[key] = float(np.clip(value, 1e-6, cfg.single_qubit_cap))
            elif kind == "two":
                two[key] = float(np.clip(value, 1e-5, cfg.two_qubit_cap))
            else:
                readout[key] = float(np.clip(value, cfg.readout_floor, cfg.readout_cap))
        return CalibrationSnapshot(
            num_qubits=self.backend.num_qubits,
            single_qubit_error=single,
            two_qubit_error=two,
            readout_error=readout,
            date=day,
        )


def generate_belem_history(
    num_days: int = 389,
    seed: SeedLike = 2021,
    config: Optional[FluctuationConfig] = None,
    start_date: str = "2021-08-10",
) -> CalibrationHistory:
    """Convenience wrapper: the belem-like history used throughout the paper.

    The default 389 days split into 243 offline + 146 online days, matching
    the paper's Aug 10, 2021 – Sep 20, 2022 window.
    """
    from repro.calibration.backends import belem_backend

    generator = FluctuatingNoiseGenerator(belem_backend(), config=config, seed=seed)
    return generator.generate(num_days, start_date=start_date)


def generate_jakarta_history(
    num_days: int = 30,
    seed: SeedLike = 7,
    config: Optional[FluctuationConfig] = None,
    start_date: str = "2022-08-01",
) -> CalibrationHistory:
    """A jakarta-like calibration history for the real-device emulation (Fig. 8)."""
    from repro.calibration.backends import jakarta_backend

    generator = FluctuatingNoiseGenerator(jakarta_backend(), config=config, seed=seed)
    return generator.generate(num_days, start_date=start_date)


#: Per-device start dates keeping the IBM histories bit-identical to the
#: dedicated ``generate_belem_history`` / ``generate_jakarta_history`` paths.
_DEVICE_START_DATES = {
    "belem": "2021-08-10",
    "ibmq_belem": "2021-08-10",
    "jakarta": "2022-08-01",
    "ibm_jakarta": "2022-08-01",
}


def device_seed_sequence(
    device_name: str, seed: int, *labels: str
) -> np.random.SeedSequence:
    """A per-device (and per-purpose) :class:`numpy.random.SeedSequence`.

    The entropy mixes the integer ``seed`` with a stable hash of the device
    name plus any extra ``labels`` (e.g. a scenario name), so every
    ``(seed, device, label...)`` combination owns a statistically
    independent stream.  This is what keeps a multi-device fleet run with
    one master seed from replaying the *same* fluctuation trace on every
    device — the bug fixed in PR 5 — while staying fully reproducible.
    """
    entropy = [int(seed) % (2**63)]
    for token in (device_name.lower(), *labels):
        digest = hashlib.sha256(token.encode("utf-8")).digest()
        entropy.extend(
            int.from_bytes(digest[offset : offset + 4], "little")
            for offset in range(0, 16, 4)
        )
    return np.random.SeedSequence(entropy)


def resolve_device(
    device: Union[str, BackendSpec], seed: SeedLike = 2021
) -> tuple[BackendSpec, str, np.random.Generator]:
    """Resolve a device to ``(spec, default_start_date, drift_rng)``.

    The paper's IBM names (``belem`` / ``jakarta``) keep their hand-tuned
    baselines and the legacy single-stream seeding, so histories stay
    bit-identical to the dedicated ``generate_*_history`` generators.  Any
    other name (or explicit :class:`~repro.calibration.backends.BackendSpec`)
    gets a per-device seed stream via :func:`device_seed_sequence`: the
    baseline identity and the day-to-day drift each draw from their own
    spawned child, so devices sharing one master seed stay decorrelated.

    Passing an existing ``Generator`` (or ``None``) as ``seed`` opts out of
    the per-device derivation — the caller then owns the stream.
    """
    from repro.calibration.backends import get_backend

    if isinstance(device, BackendSpec):
        spec = device
        key = spec.name.lower()
    else:
        key = device.lower()
        spec = None
    start_date = _DEVICE_START_DATES.get(key, "2022-01-01")

    if key in _DEVICE_START_DATES:
        # IBM device: hand-tuned paper baselines, legacy seeding.
        if spec is None:
            spec = get_backend(key)
        return spec, start_date, ensure_rng(seed)

    if isinstance(seed, (int, np.integer)):
        sequence = device_seed_sequence(key, int(seed))
        baseline_seq, drift_seq = sequence.spawn(2)
        if spec is None:
            baseline_seed = int(baseline_seq.generate_state(1)[0] % (2**31))
            spec = get_backend(key, seed=baseline_seed)
        return spec, start_date, np.random.default_rng(drift_seq)

    # Generator / None: the caller manages the stream (legacy behaviour).
    rng = ensure_rng(seed)
    if spec is None:
        spec = get_backend(key, seed=int(rng.integers(2**31)))
    return spec, start_date, rng


def generate_device_history(
    device: Union[str, BackendSpec],
    num_days: int,
    seed: SeedLike = 2021,
    config: Optional[FluctuationConfig] = None,
    start_date: Optional[str] = None,
) -> CalibrationHistory:
    """A calibration history for any named device or explicit backend spec.

    ``device`` may be one of the paper's IBM names (``belem`` / ``jakarta``
    — same baselines, same start dates, hence bit-identical to the dedicated
    generators for equal seeds), any :data:`repro.transpiler.devices.DEVICE_LIBRARY`
    name (baselines drawn by
    :func:`repro.calibration.backends.synthetic_backend`), or a ready
    :class:`~repro.calibration.backends.BackendSpec`.  This is the
    longitudinal experiments' path to running on the whole device library.

    For library devices both the baseline error rates and the day-to-day
    fluctuations derive from a **per-device** seed stream
    (:func:`resolve_device`): two different devices generated with the same
    integer master seed get independent traces, and the same device always
    reproduces its own.  Passing a ``Generator`` instead of an integer seed
    keeps the caller-managed single-stream behaviour.
    """
    spec, default_start, rng = resolve_device(device, seed)
    generator = FluctuatingNoiseGenerator(spec, config=config, seed=rng)
    return generator.generate(
        num_days, start_date=start_date if start_date is not None else default_start
    )
