"""Performance-aware clustering of calibration data (Section III-C).

The offline repository constructor groups historical calibration snapshots
with a modified k-means:

* the distance is the *performance-weighted L1* distance (Eq. 5): each
  feature is weighted by the absolute correlation between that error rate
  and the model's accuracy across the history, so the clustering cares about
  the noise that actually hurts the model;
* the objective is the weighted sum of absolute errors, WSAE (Eq. 6);
* centroids are per-dimension medians (the L1 minimizer).

A plain L2 k-means is also provided — it is the baseline of Table II.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.calibration.distance import pairwise_weighted_l1, performance_weights
from repro.exceptions import RepositoryError
from repro.utils.rng import SeedLike, ensure_rng


@dataclass
class ClusteringResult:
    """Outcome of one clustering run."""

    labels: np.ndarray
    centroids: np.ndarray
    weights: np.ndarray
    metric: str
    wsae: float
    iterations: int
    cluster_sizes: np.ndarray
    intra_cluster_mean_distance: np.ndarray
    cluster_mean_accuracy: Optional[np.ndarray] = None

    @property
    def num_clusters(self) -> int:
        """The number of clusters ``k``."""
        return self.centroids.shape[0]

    @property
    def threshold(self) -> float:
        """Guidance 1's threshold ``th_w``: the largest mean intra-cluster distance."""
        finite = self.intra_cluster_mean_distance[np.isfinite(self.intra_cluster_mean_distance)]
        return float(finite.max()) if finite.size else 0.0


def _pairwise_distance(points: np.ndarray, centers: np.ndarray, weights: np.ndarray, metric: str) -> np.ndarray:
    if metric == "weighted_l1":
        return pairwise_weighted_l1(points, centers, weights)
    if metric == "l2":
        diff = points[:, None, :] - centers[None, :, :]
        return np.sqrt((diff**2).sum(axis=2))
    raise RepositoryError(f"unknown clustering metric {metric!r}")


def _init_centroids(
    points: np.ndarray, k: int, weights: np.ndarray, metric: str, rng: np.random.Generator
) -> np.ndarray:
    """k-means++-style initialization under the chosen metric."""
    n = points.shape[0]
    first = int(rng.integers(0, n))
    chosen = [first]
    for _ in range(1, k):
        centers = points[chosen]
        distances = _pairwise_distance(points, centers, weights, metric).min(axis=1)
        total = distances.sum()
        if total <= 0:
            remaining = [i for i in range(n) if i not in chosen]
            chosen.append(int(rng.choice(remaining)))
            continue
        probabilities = distances / total
        chosen.append(int(rng.choice(n, p=probabilities)))
    return points[chosen].copy()


def cluster_calibrations(
    calibrations: np.ndarray,
    accuracies: Optional[np.ndarray] = None,
    k: int = 6,
    metric: str = "weighted_l1",
    max_iterations: int = 100,
    seed: SeedLike = 0,
) -> ClusteringResult:
    """Cluster calibration vectors into ``k`` groups.

    Parameters
    ----------
    calibrations:
        ``(n_days, n_features)`` matrix of calibration vectors.
    accuracies:
        Per-day accuracy of the given model under those calibrations; when
        provided (and the metric is ``weighted_l1``) it defines the
        performance-aware weights.  Also used to annotate each cluster with
        its mean accuracy (Guidance 2).
    k:
        Number of clusters (the paper uses 6).
    metric:
        ``"weighted_l1"`` (the proposed distance) or ``"l2"`` (the baseline).
    """
    calibrations = np.asarray(calibrations, dtype=float)
    if calibrations.ndim != 2 or calibrations.shape[0] == 0:
        raise RepositoryError("calibrations must be a non-empty (days x features) matrix")
    n, d = calibrations.shape
    if k < 1:
        raise RepositoryError(f"k must be >= 1, got {k}")
    k = min(k, n)
    if accuracies is not None:
        accuracies = np.asarray(accuracies, dtype=float)
        if accuracies.shape != (n,):
            raise RepositoryError("accuracies must have one entry per calibration row")

    if metric == "weighted_l1" and accuracies is not None:
        weights = performance_weights(calibrations, accuracies)
        if not np.any(weights > 0):
            weights = np.ones(d)
    else:
        weights = np.ones(d)

    rng = ensure_rng(seed)
    centroids = _init_centroids(calibrations, k, weights, metric, rng)
    labels = np.zeros(n, dtype=int)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        distances = _pairwise_distance(calibrations, centroids, weights, metric)
        new_labels = distances.argmin(axis=1)
        new_centroids = centroids.copy()
        for cluster in range(k):
            members = calibrations[new_labels == cluster]
            if members.shape[0] == 0:
                continue
            if metric == "weighted_l1":
                new_centroids[cluster] = np.median(members, axis=0)
            else:
                new_centroids[cluster] = members.mean(axis=0)
        if np.array_equal(new_labels, labels) and np.allclose(new_centroids, centroids):
            labels = new_labels
            centroids = new_centroids
            break
        labels = new_labels
        centroids = new_centroids

    distances = _pairwise_distance(calibrations, centroids, weights, metric)
    member_distances = distances[np.arange(n), labels]
    wsae = float(member_distances.sum())
    sizes = np.array([(labels == cluster).sum() for cluster in range(k)])
    intra = np.array(
        [
            member_distances[labels == cluster].mean() if sizes[cluster] else np.inf
            for cluster in range(k)
        ]
    )
    cluster_accuracy = None
    if accuracies is not None:
        cluster_accuracy = np.array(
            [
                accuracies[labels == cluster].mean() if sizes[cluster] else np.nan
                for cluster in range(k)
            ]
        )
    return ClusteringResult(
        labels=labels,
        centroids=centroids,
        weights=weights,
        metric=metric,
        wsae=wsae,
        iterations=iterations,
        cluster_sizes=sizes,
        intra_cluster_mean_distance=intra,
        cluster_mean_accuracy=cluster_accuracy,
    )
