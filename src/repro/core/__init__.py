"""QuCAD core: noise-aware compression, model repository, online adaptation."""

from repro.core.admm import (
    CompressionConfig,
    CompressionResult,
    NoiseAgnosticCompressor,
    NoiseAwareCompressor,
)
from repro.core.baselines import (
    AdaptationMethod,
    BaselineMethod,
    CompressionEverydayMethod,
    MethodContext,
    NoiseAgnosticCompressionEverydayMethod,
    NoiseAwareTrainEverydayMethod,
    NoiseAwareTrainOnceMethod,
    OneTimeCompressionMethod,
    QuCADMethod,
    QuCADWithoutOfflineMethod,
    TABLE1_METHODS,
    make_method,
)
from repro.core.clustering import ClusteringResult, cluster_calibrations
from repro.core.compression_table import DEFAULT_LEVELS, CompressionTable
from repro.core.constructor import OfflineReport, RepositoryConstructor
from repro.core.framework import QuCAD, QuCADConfig
from repro.core.manager import ManagerDecision, ManagerStats, RepositoryManager
from repro.core.masks import MaskTables, apply_mask, build_mask, gate_noise_rates
from repro.core.noise_aware_training import noise_aware_train, train_noise_free
from repro.core.repository import MatchResult, ModelRepository, RepositoryEntry

__all__ = [
    "CompressionTable",
    "DEFAULT_LEVELS",
    "MaskTables",
    "build_mask",
    "apply_mask",
    "gate_noise_rates",
    "CompressionConfig",
    "CompressionResult",
    "NoiseAwareCompressor",
    "NoiseAgnosticCompressor",
    "ClusteringResult",
    "cluster_calibrations",
    "ModelRepository",
    "RepositoryEntry",
    "MatchResult",
    "RepositoryConstructor",
    "OfflineReport",
    "RepositoryManager",
    "ManagerDecision",
    "ManagerStats",
    "QuCAD",
    "QuCADConfig",
    "noise_aware_train",
    "train_noise_free",
    "AdaptationMethod",
    "MethodContext",
    "BaselineMethod",
    "NoiseAwareTrainOnceMethod",
    "NoiseAwareTrainEverydayMethod",
    "OneTimeCompressionMethod",
    "CompressionEverydayMethod",
    "NoiseAgnosticCompressionEverydayMethod",
    "QuCADWithoutOfflineMethod",
    "QuCADMethod",
    "TABLE1_METHODS",
    "make_method",
]
