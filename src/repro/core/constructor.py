"""Offline model-repository constructor (Section III-C).

Given the historical calibration data and the trained QNN, the constructor:

1. measures the model's accuracy under every historical calibration
   (density-matrix emulation of each day),
2. clusters the calibration vectors with the performance-weighted L1 k-means,
3. runs noise-aware compression once per cluster centroid,
4. stores the resulting ⟨compressed model, centroid calibration⟩ pairs in a
   :class:`~repro.core.repository.ModelRepository` together with the matching
   threshold ``th_w`` (Guidance 1) and per-cluster validity (Guidance 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.calibration.history import CalibrationHistory
from repro.calibration.snapshot import CalibrationSnapshot
from repro.core.admm import CompressionResult, NoiseAwareCompressor
from repro.core.clustering import ClusteringResult, cluster_calibrations
from repro.core.repository import ModelRepository, RepositoryEntry
from repro.datasets.base import Dataset
from repro.exceptions import RepositoryError
from repro.qnn.evaluation import accuracy_over_days
from repro.qnn.model import QNNModel
from repro.simulator import Backend, NoiseModel
from repro.utils.rng import SeedLike


@dataclass
class OfflineReport:
    """Everything produced by the offline stage."""

    repository: ModelRepository
    clustering: ClusteringResult
    day_accuracies: np.ndarray
    compression_results: list[CompressionResult] = field(default_factory=list)

    @property
    def num_models(self) -> int:
        """Number of models stored in the constructed repository."""
        return len(self.repository)


class RepositoryConstructor:
    """Builds the offline model repository for a trained model."""

    def __init__(
        self,
        compressor: Optional[NoiseAwareCompressor] = None,
        num_clusters: int = 6,
        accuracy_requirement: float = 0.0,
        eval_test_samples: Optional[int] = 64,
        train_samples: Optional[int] = 128,
        seed: SeedLike = 0,
        noisy_backend: Optional[Backend] = None,
    ):
        if num_clusters < 1:
            raise RepositoryError(f"num_clusters must be >= 1, got {num_clusters}")
        self.compressor = compressor or NoiseAwareCompressor()
        self.num_clusters = num_clusters
        self.accuracy_requirement = accuracy_requirement
        self.eval_test_samples = eval_test_samples
        self.train_samples = train_samples
        self.seed = seed
        self.noisy_backend = noisy_backend

    # ------------------------------------------------------------------
    def measure_day_accuracies(
        self,
        model: QNNModel,
        dataset: Dataset,
        history: CalibrationHistory,
    ) -> np.ndarray:
        """Accuracy of ``model`` under every calibration in ``history``.

        The whole history shares one parameter binding, so all days collapse
        into a few vectorised multi-day backend calls (see
        :func:`repro.qnn.evaluation.accuracy_over_days`) — the paper-scale
        243-day offline sweep is a handful of simulations instead of 243.
        Runs on ``noisy_backend`` when one was provided (the QuCAD facade
        passes a density-matrix backend sharing the framework engine, so
        circuits compiled here stay cached for the online stage).
        """
        subset = dataset.subsample(num_test=self.eval_test_samples, seed=self.seed)
        noise_models = [NoiseModel.from_calibration(snapshot) for snapshot in history]
        return accuracy_over_days(
            model,
            subset.test_features,
            subset.test_labels,
            noise_models,
            backend=self.noisy_backend,
        )

    def build(
        self,
        model: QNNModel,
        dataset: Dataset,
        offline_history: CalibrationHistory,
        coupling=None,
        pass_manager=None,
    ) -> OfflineReport:
        """Run the full offline pipeline and return the populated repository.

        When the model still needs a device binding it is compiled through
        the staged pipeline (``pass_manager`` selects the artifact pool; the
        process-wide one by default).  ``coupling`` may also be a
        :class:`~repro.transpiler.Target`; a target carrying its own
        calibration pins the layout snapshot, otherwise the first offline
        day is used.
        """
        if len(offline_history) == 0:
            raise RepositoryError("offline history is empty")
        template = offline_history[0]
        if model.transpiled is None:
            if coupling is None:
                raise RepositoryError(
                    "model is not bound to a device; pass a coupling map"
                )
            from repro.transpiler import Target

            if isinstance(coupling, Target):
                target = (
                    coupling
                    if coupling.calibration is not None
                    else coupling.with_calibration(template)
                )
                model.bind_to_device(target, pass_manager=pass_manager)
            else:
                model.bind_to_device(
                    coupling, calibration=template, pass_manager=pass_manager
                )

        day_accuracies = self.measure_day_accuracies(model, dataset, offline_history)
        calibration_matrix = offline_history.to_matrix()
        clustering = cluster_calibrations(
            calibration_matrix,
            accuracies=day_accuracies,
            k=self.num_clusters,
            metric="weighted_l1",
            seed=self.seed,
        )

        train_subset = dataset.subsample(num_train=self.train_samples, seed=self.seed)
        repository = ModelRepository(
            weights=clustering.weights, threshold=clustering.threshold
        )
        compression_results: list[CompressionResult] = []
        for cluster_index in range(clustering.num_clusters):
            if clustering.cluster_sizes[cluster_index] == 0:
                continue
            centroid_vector = clustering.centroids[cluster_index]
            centroid_snapshot = CalibrationSnapshot.from_vector(
                centroid_vector, template, date=f"centroid_{cluster_index}"
            )
            result = self.compressor.compress(
                model,
                train_subset.train_features,
                train_subset.train_labels,
                calibration=centroid_snapshot,
            )
            compression_results.append(result)
            mean_accuracy = (
                float(clustering.cluster_mean_accuracy[cluster_index])
                if clustering.cluster_mean_accuracy is not None
                else None
            )
            repository.add(
                RepositoryEntry(
                    parameters=result.parameters,
                    calibration_vector=centroid_vector,
                    calibration=centroid_snapshot,
                    mean_accuracy=mean_accuracy,
                    valid=(
                        mean_accuracy is None
                        or mean_accuracy >= self.accuracy_requirement
                    ),
                    source="offline",
                    label=f"cluster_{cluster_index}",
                )
            )
        return OfflineReport(
            repository=repository,
            clustering=clustering,
            day_accuracies=day_accuracies,
            compression_results=compression_results,
        )
