"""The QuCAD framework: offline construction + online management.

:class:`QuCAD` ties the three components of the paper together behind a
two-call API::

    qucad = QuCAD(model, dataset, coupling)
    qucad.offline(offline_history)          # optional, builds the repository
    decision = qucad.online(todays_calibration)
    adapted_parameters = decision.parameters

Skipping :meth:`offline` gives the "QuCAD w/o offline" ablation of Table I:
the repository starts empty and is populated online as unfamiliar
calibrations arrive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.calibration.history import CalibrationHistory
from repro.calibration.snapshot import CalibrationSnapshot
from repro.core.admm import CompressionConfig, NoiseAwareCompressor
from repro.core.constructor import OfflineReport, RepositoryConstructor
from repro.core.manager import ManagerDecision, RepositoryManager
from repro.core.repository import ModelRepository
from repro.datasets.base import Dataset
from repro.exceptions import RepositoryError
from repro.qnn.model import QNNModel
from repro.simulator import (
    DensityMatrixBackend,
    NoiseModel,
    SimulationEngine,
    backend_kind,
    get_execution_backend,
)
from repro.transpiler import CouplingMap, PassManager, Target, default_pass_manager
from repro.utils.rng import SeedLike

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime import ExperimentRunner


@dataclass(frozen=True)
class QuCADConfig:
    """Framework-level configuration.

    ``backend`` names the execution backend for the framework's *training*
    paths (adjoint gradients require statevector semantics, so only the
    ``statevector`` family — aliases ``ideal`` — is accepted; construction
    raises otherwise).  Noisy evaluation always runs on a density-matrix
    backend sharing the same engine.
    """

    compression: CompressionConfig = field(default_factory=CompressionConfig)
    num_clusters: int = 6
    accuracy_requirement: float = 0.0
    eval_test_samples: Optional[int] = 64
    train_samples: Optional[int] = 128
    fallback_relative_threshold: float = 0.3
    seed: SeedLike = 0
    backend: str = "statevector"


class QuCAD:
    """Compression-aided adaptation of a QNN to fluctuating noise.

    One framework instance owns one :class:`~repro.simulator.SimulationEngine`
    and one execution backend; the offline constructor, the compressor, and
    the online manager all share them, so circuit structures compiled during
    the offline stage stay warm for the online stage.
    """

    def __init__(
        self,
        model: QNNModel,
        dataset: Dataset,
        coupling: "CouplingMap | Target",
        config: Optional[QuCADConfig] = None,
        pass_manager: Optional[PassManager] = None,
    ):
        if isinstance(coupling, Target):
            self.target: Optional[Target] = coupling
            coupling = coupling.coupling
        else:
            self.target = None
        self.model = model
        self.dataset = dataset
        self.coupling = coupling
        self.config = config or QuCADConfig()
        self.pass_manager = (
            pass_manager if pass_manager is not None else default_pass_manager()
        )
        if backend_kind(self.config.backend) != "statevector":
            raise RepositoryError(
                f"QuCADConfig.backend {self.config.backend!r} is not usable for "
                "training: adjoint gradients need statevector semantics. Use "
                "'statevector' (alias 'ideal'); noisy evaluation automatically "
                "runs on a density-matrix backend over the same engine."
            )
        self.engine = SimulationEngine()
        self.backend = get_execution_backend(self.config.backend, engine=self.engine)
        self.noisy_backend = DensityMatrixBackend(engine=self.engine)
        self.compressor = NoiseAwareCompressor(
            self.config.compression, backend=self.backend
        )
        self.offline_report: Optional[OfflineReport] = None
        self._manager: Optional[RepositoryManager] = None

    # ------------------------------------------------------------------
    # Offline stage
    # ------------------------------------------------------------------
    def offline(self, offline_history: CalibrationHistory) -> OfflineReport:
        """Build the model repository from historical calibration data."""
        constructor = RepositoryConstructor(
            compressor=self.compressor,
            num_clusters=self.config.num_clusters,
            accuracy_requirement=self.config.accuracy_requirement,
            eval_test_samples=self.config.eval_test_samples,
            train_samples=self.config.train_samples,
            seed=self.config.seed,
            noisy_backend=self.noisy_backend,
        )
        self.offline_report = constructor.build(
            self.model,
            self.dataset,
            offline_history,
            coupling=self.target if self.target is not None else self.coupling,
            pass_manager=self.pass_manager,
        )
        self._manager = self._build_manager(self.offline_report.repository)
        return self.offline_report

    def _build_manager(self, repository: ModelRepository) -> RepositoryManager:
        train_subset = self.dataset.subsample(
            num_train=self.config.train_samples, seed=self.config.seed
        )
        return RepositoryManager(
            repository=repository,
            compressor=self.compressor,
            model=self.model,
            train_features=train_subset.train_features,
            train_labels=train_subset.train_labels,
            accuracy_requirement=self.config.accuracy_requirement,
            fallback_relative_threshold=self.config.fallback_relative_threshold,
            backend=self.backend,
        )

    def _ensure_manager(self, calibration: CalibrationSnapshot) -> RepositoryManager:
        """Create an empty-repository manager on first use (w/o-offline mode)."""
        if self._manager is None:
            if self.model.transpiled is None:
                if self.target is not None and self.target.calibration is not None:
                    # An explicit Target pins the compilation calibration.
                    self.model.bind_to_device(
                        self.target, pass_manager=self.pass_manager
                    )
                else:
                    self.model.bind_to_device(
                        self.coupling,
                        calibration=calibration,
                        pass_manager=self.pass_manager,
                    )
            feature_count = calibration.to_vector().shape[0]
            repository = ModelRepository(
                weights=np.ones(feature_count), threshold=0.0
            )
            self._manager = self._build_manager(repository)
        return self._manager

    # ------------------------------------------------------------------
    # Online stage
    # ------------------------------------------------------------------
    def online(self, calibration: CalibrationSnapshot) -> ManagerDecision:
        """Adapt the model to the current calibration data ``D_c``."""
        manager = self._ensure_manager(calibration)
        return manager.adapt(calibration)

    def adapt_over(self, history: CalibrationHistory) -> list[ManagerDecision]:
        """Run the online stage for every day of ``history`` in order."""
        if len(history) == 0:
            return []
        manager = self._ensure_manager(history[0])
        return manager.adapt_sequence(list(history))

    def evaluate_over(
        self,
        history: CalibrationHistory,
        features: np.ndarray,
        labels: np.ndarray,
        shots: Optional[int] = None,
        seeds: Optional[Sequence] = None,
        runner: Optional["ExperimentRunner"] = None,
    ) -> tuple[list[ManagerDecision], np.ndarray]:
        """Adapt to every day of ``history`` and evaluate each day's model.

        Adaptation stays sequential (the repository grows day by day), but
        the per-day evaluations fan out through the runtime as one batched
        ``evaluate_days`` call — the full online lifecycle of the paper with
        the evaluation cost of a handful of simulations.  Returns the
        per-day decisions and the matching accuracy series.
        """
        from repro.runtime import default_runner

        decisions = self.adapt_over(history)
        if not decisions:
            return [], np.zeros(0)
        runner = runner if runner is not None else default_runner()
        accuracies = runner.evaluate_days(
            self.model,
            features,
            labels,
            [NoiseModel.from_calibration(snapshot) for snapshot in history],
            parameter_sets=[decision.parameters for decision in decisions],
            shots=shots,
            seeds=seeds,
            experiment="qucad/evaluate_over",
            dates=[snapshot.date for snapshot in history],
        )
        return decisions, accuracies

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def manager(self) -> RepositoryManager:
        """The online manager; raises until :meth:`offline` or :meth:`online` ran."""
        if self._manager is None:
            raise RepositoryError(
                "the online manager does not exist yet; call offline() or online() first"
            )
        return self._manager

    @property
    def repository(self) -> ModelRepository:
        """The current model repository served by the manager."""
        return self.manager.repository

    def compile_stats(self) -> dict:
        """Pass/cache counters of the compilation pipeline this framework uses."""
        return self.pass_manager.stats.as_dict()
