"""Online model-repository manager (Section III-D).

At run time the manager receives the current calibration ``D_c`` and decides:

* **reuse** — the closest stored calibration is within the threshold
  ``th_w``: return its compressed model with no optimization at all;
* **new** — nothing in the repository is close enough: run noise-aware
  compression for the current calibration, add the result to the repository
  (Guidance 1), and return it;
* **invalid** — the matched cluster's historical accuracy is below the user
  requirement: emit a failure report (Guidance 2) alongside the best model
  available.

The manager also counts how many online optimizations were needed, which is
the quantity behind the >100x training-time reduction of Fig. 7.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.calibration.snapshot import CalibrationSnapshot
from repro.core.admm import NoiseAwareCompressor
from repro.core.repository import ModelRepository, RepositoryEntry
from repro.exceptions import RepositoryError
from repro.qnn.model import QNNModel
from repro.simulator import Backend, NoiseModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime import ExperimentRunner


@dataclass
class ManagerDecision:
    """Outcome of one online adaptation step (the paper's Guidance 1 & 2).

    Attributes
    ----------
    parameters:
        The adapted parameter vector ``theta`` to deploy for the day.
    action:
        ``"reuse"`` (matched within ``th_w``), ``"new"`` (online
        compression, Guidance 1), ``"bootstrap"`` (first entry of an empty
        repository), or ``"invalid"`` (matched a cluster below the accuracy
        requirement, Guidance 2).
    distance:
        Weighted-L1 distance of the incoming calibration ``D_c`` to the
        matched entry, when a match was attempted.
    entry_index:
        Index of the served repository entry.
    threshold:
        The matching threshold ``th_w`` in force for this step.
    failure_report:
        Human-readable Guidance-2 report when ``action == "invalid"``.
    """

    parameters: np.ndarray
    action: str
    distance: Optional[float] = None
    entry_index: Optional[int] = None
    threshold: Optional[float] = None
    failure_report: Optional[str] = None

    @property
    def reused(self) -> bool:
        """Whether the step served a stored model without optimization."""
        return self.action == "reuse"

    @property
    def optimized(self) -> bool:
        """Whether the step had to run an online compression."""
        return self.action in {"new", "bootstrap"}


@dataclass
class ManagerStats:
    """Cumulative counters across all online steps.

    ``optimizations / steps`` is the fraction of days requiring online
    training — the quantity behind the >100x reduction of Fig. 7.
    """

    steps: int = 0
    reuses: int = 0
    optimizations: int = 0
    invalid_matches: int = 0
    optimization_seconds: float = 0.0


class RepositoryManager:
    """Serves adapted models for incoming calibrations (Section III-D).

    This is the online half of the framework: given today's calibration
    ``D_c`` it either reuses a stored compressed model (cheap, the common
    case) or triggers one online compression and stores the result.  All
    simulation the manager causes — the compressor's training loops and any
    entry evaluation — routes through one shared execution ``backend``
    rather than ad-hoc simulator construction, so circuit programs compiled
    on earlier days are reused on later ones.
    """

    def __init__(
        self,
        repository: ModelRepository,
        compressor: NoiseAwareCompressor,
        model: QNNModel,
        train_features: np.ndarray,
        train_labels: np.ndarray,
        accuracy_requirement: float = 0.0,
        fallback_relative_threshold: float = 0.3,
        backend: Optional[Backend] = None,
    ):
        self.repository = repository
        self.compressor = compressor
        self.model = model
        self.train_features = np.asarray(train_features, dtype=float)
        self.train_labels = np.asarray(train_labels, dtype=int)
        self.accuracy_requirement = accuracy_requirement
        if fallback_relative_threshold <= 0:
            raise RepositoryError("fallback_relative_threshold must be positive")
        self.fallback_relative_threshold = fallback_relative_threshold
        self.backend = backend
        if backend is not None and compressor.backend is None:
            compressor.backend = backend
        self.stats = ManagerStats()

    # ------------------------------------------------------------------
    def _effective_threshold(self, weighted_norm: float) -> float:
        """The matching threshold to use for the current calibration.

        Repositories built offline carry the cluster-derived ``th_w``; a
        repository born empty (QuCAD without the offline stage) has no
        threshold yet, so a relative one is derived from the magnitude of the
        incoming calibration vector.
        """
        if self.repository.threshold > 0:
            return self.repository.threshold
        return self.fallback_relative_threshold * weighted_norm

    def _compress_for(self, calibration: CalibrationSnapshot, label: str) -> RepositoryEntry:
        start = time.perf_counter()
        result = self.compressor.compress(
            self.model,
            self.train_features,
            self.train_labels,
            calibration=calibration,
        )
        self.stats.optimizations += 1
        self.stats.optimization_seconds += time.perf_counter() - start
        entry = RepositoryEntry(
            parameters=result.parameters,
            calibration_vector=calibration.to_vector(),
            calibration=calibration,
            mean_accuracy=None,
            valid=True,
            source="online",
            label=label,
        )
        self.repository.add(entry)
        return entry

    def adapt(self, calibration: CalibrationSnapshot) -> ManagerDecision:
        """Return the model to use under ``calibration`` (Guidance 1 and 2)."""
        self.stats.steps += 1
        vector = calibration.to_vector()
        if vector.shape != self.repository.weights.shape:
            raise RepositoryError(
                "calibration vector does not match the repository feature layout"
            )
        weighted_norm = float(np.sum(np.abs(self.repository.weights * vector)))

        if len(self.repository) == 0:
            entry = self._compress_for(calibration, label=f"online_{self.stats.steps}")
            return ManagerDecision(
                parameters=entry.parameters,
                action="bootstrap",
                distance=None,
                entry_index=len(self.repository) - 1,
                threshold=self._effective_threshold(weighted_norm),
            )

        match = self.repository.match(vector)
        threshold = self._effective_threshold(weighted_norm)
        if match.distance > threshold:
            entry = self._compress_for(calibration, label=f"online_{self.stats.steps}")
            return ManagerDecision(
                parameters=entry.parameters,
                action="new",
                distance=match.distance,
                entry_index=len(self.repository) - 1,
                threshold=threshold,
            )

        entry = match.entry
        self.stats.reuses += 1
        if not entry.valid or (
            entry.mean_accuracy is not None
            and entry.mean_accuracy < self.accuracy_requirement
        ):
            self.stats.invalid_matches += 1
            report = (
                f"calibration {calibration.date or '<unknown>'} matches cluster "
                f"{entry.label or match.index} whose historical accuracy "
                f"{entry.mean_accuracy} is below the requirement "
                f"{self.accuracy_requirement}; expect degraded performance"
            )
            return ManagerDecision(
                parameters=entry.parameters,
                action="invalid",
                distance=match.distance,
                entry_index=match.index,
                threshold=threshold,
                failure_report=report,
            )
        return ManagerDecision(
            parameters=entry.parameters,
            action="reuse",
            distance=match.distance,
            entry_index=match.index,
            threshold=threshold,
        )

    def adapt_sequence(
        self, calibrations: Sequence[CalibrationSnapshot]
    ) -> list[ManagerDecision]:
        """The online day loop: one :meth:`adapt` per day, in order.

        Adaptation is inherently sequential — each decision may extend the
        repository that later days match against — which is why only the
        *evaluations* of the decisions fan out in parallel (see
        :meth:`refresh_entry_accuracies` and
        :meth:`repro.core.framework.QuCAD.evaluate_over`).
        """
        return [self.adapt(calibration) for calibration in calibrations]

    def refresh_entry_accuracies(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        runner: Optional["ExperimentRunner"] = None,
        shots: Optional[int] = None,
        seeds: Optional[Sequence] = None,
    ) -> np.ndarray:
        """Re-measure every stored entry under its own calibration.

        Online entries are stored with ``mean_accuracy=None``, which makes
        the Guidance-2 validity check vacuous for them; this measures each
        entry's accuracy on ``(features, labels)`` under the calibration it
        was compressed for — all entries batched through the runtime — and
        records the results on the entries.
        """
        from repro.runtime import default_runner

        entries = [
            entry for entry in self.repository.entries if entry.calibration is not None
        ]
        if not entries:
            return np.zeros(0)
        runner = runner if runner is not None else default_runner()
        accuracies = runner.evaluate_days(
            self.model,
            features,
            labels,
            [NoiseModel.from_calibration(entry.calibration) for entry in entries],
            parameter_sets=[entry.parameters for entry in entries],
            shots=shots,
            seeds=seeds,
            experiment="manager/refresh_entry_accuracies",
            dates=[entry.calibration.date for entry in entries],
        )
        for entry, accuracy in zip(entries, accuracies):
            entry.mean_accuracy = float(accuracy)
            entry.valid = entry.mean_accuracy >= self.accuracy_requirement
        return accuracies
