"""Competitor adaptation methods compared against QuCAD in Table I.

Every method exposes the same two-phase interface used by the longitudinal
experiment harness:

* :meth:`AdaptationMethod.prepare` — one-off setup given the experiment
  context (e.g. QuCAD's offline repository construction);
* :meth:`AdaptationMethod.parameters_for_day` — the parameter vector the
  method would deploy for a given day's calibration.

Methods also report how many optimization runs (and how much optimization
wall time) they spent at the online stage, which feeds the efficiency
comparison of Fig. 7.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.calibration.history import CalibrationHistory
from repro.calibration.snapshot import CalibrationSnapshot
from repro.core.admm import CompressionConfig, NoiseAgnosticCompressor, NoiseAwareCompressor
from repro.core.framework import QuCAD, QuCADConfig
from repro.core.noise_aware_training import noise_aware_train
from repro.datasets.base import Dataset
from repro.exceptions import TrainingError
from repro.qnn.model import QNNModel
from repro.qnn.trainer import TrainConfig
from repro.transpiler import CouplingMap


@dataclass
class MethodContext:
    """Everything a method needs to prepare and adapt.

    ``base_model`` is the model ``M`` of the problem statement: trained in a
    noise-free environment and already bound to the target device.  Methods
    must not mutate it — they work on copies.
    """

    base_model: QNNModel
    dataset: Dataset
    coupling: CouplingMap
    offline_history: CalibrationHistory
    compression_config: CompressionConfig = field(default_factory=CompressionConfig)
    retrain_config: TrainConfig = field(default_factory=lambda: TrainConfig(epochs=6))
    qucad_config: Optional[QuCADConfig] = None
    train_samples: Optional[int] = 128
    seed: int = 0

    def training_subset(self) -> tuple[np.ndarray, np.ndarray]:
        """The ``(features, labels)`` subset every method trains on."""
        subset = self.dataset.subsample(num_train=self.train_samples, seed=self.seed)
        return subset.train_features, subset.train_labels

    def make_qucad_config(self) -> QuCADConfig:
        """The QuCAD configuration, derived from the shared fields if not set."""
        if self.qucad_config is not None:
            return self.qucad_config
        return QuCADConfig(
            compression=self.compression_config,
            train_samples=self.train_samples,
            seed=self.seed,
        )


class AdaptationMethod(abc.ABC):
    """Base class for the Table I competitors."""

    name: str = "method"

    def __init__(self) -> None:
        self.optimization_runs = 0
        self.optimization_seconds = 0.0
        self._context: Optional[MethodContext] = None

    # ------------------------------------------------------------------
    def prepare(self, context: MethodContext) -> None:
        """One-off setup before the online evaluation starts."""
        self._context = context

    @property
    def context(self) -> MethodContext:
        """The prepared :class:`MethodContext`; raises before :meth:`prepare`."""
        if self._context is None:
            raise TrainingError(f"method {self.name!r} was not prepared")
        return self._context

    def _timed(self, fn, *args, **kwargs):
        """Run an optimization step while accounting for Fig. 7's bookkeeping."""
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        self.optimization_seconds += time.perf_counter() - start
        self.optimization_runs += 1
        return result

    @abc.abstractmethod
    def parameters_for_day(self, calibration: CalibrationSnapshot) -> np.ndarray:
        """Parameters the method deploys under ``calibration``."""


class BaselineMethod(AdaptationMethod):
    """Noise-free training only; no adaptation at all."""

    name = "baseline"

    def parameters_for_day(self, calibration: CalibrationSnapshot) -> np.ndarray:
        """Always the unadapted noise-free parameters."""
        return self.context.base_model.parameters


class NoiseAwareTrainOnceMethod(AdaptationMethod):
    """Noise-aware training on the first online day, then frozen (ref [12])."""

    name = "noise_aware_train_once"

    def __init__(self) -> None:
        super().__init__()
        self._parameters: Optional[np.ndarray] = None

    def parameters_for_day(self, calibration: CalibrationSnapshot) -> np.ndarray:
        """Noise-aware retrain on the first online day only, then frozen."""
        if self._parameters is None:
            context = self.context
            model = context.base_model.copy()
            features, labels = context.training_subset()
            result = self._timed(
                noise_aware_train,
                model,
                features,
                labels,
                calibration,
                coupling=context.coupling,
                config=context.retrain_config,
                update_model=False,
            )
            self._parameters = result.parameters
        return self._parameters


class NoiseAwareTrainEverydayMethod(AdaptationMethod):
    """Noise-aware retraining before every execution."""

    name = "noise_aware_train_everyday"

    def parameters_for_day(self, calibration: CalibrationSnapshot) -> np.ndarray:
        """Noise-aware retraining from the base model for every calibration."""
        context = self.context
        model = context.base_model.copy()
        features, labels = context.training_subset()
        result = self._timed(
            noise_aware_train,
            model,
            features,
            labels,
            calibration,
            coupling=context.coupling,
            config=context.retrain_config,
            update_model=False,
        )
        return result.parameters


class OneTimeCompressionMethod(AdaptationMethod):
    """Noise-agnostic compression on the first online day, then frozen (ref [23])."""

    name = "one_time_compression"

    def __init__(self) -> None:
        super().__init__()
        self._parameters: Optional[np.ndarray] = None

    def parameters_for_day(self, calibration: CalibrationSnapshot) -> np.ndarray:
        """Noise-agnostic compression on the first online day only, then frozen."""
        if self._parameters is None:
            context = self.context
            compressor = NoiseAgnosticCompressor(context.compression_config)
            model = context.base_model.copy()
            features, labels = context.training_subset()
            result = self._timed(
                compressor.compress,
                model,
                features,
                labels,
                calibration=None,
                coupling=context.coupling,
            )
            self._parameters = result.parameters
        return self._parameters


class CompressionEverydayMethod(AdaptationMethod):
    """Noise-aware compression before every execution — the practical upper
    bound of Fig. 9(a) and the "Compression Everyday" bar of Fig. 7."""

    name = "compression_everyday"

    def parameters_for_day(self, calibration: CalibrationSnapshot) -> np.ndarray:
        """Noise-aware compression for every incoming calibration."""
        context = self.context
        compressor = NoiseAwareCompressor(context.compression_config)
        model = context.base_model.copy()
        features, labels = context.training_subset()
        result = self._timed(
            compressor.compress,
            model,
            features,
            labels,
            calibration=calibration,
            coupling=context.coupling,
        )
        return result.parameters


class NoiseAgnosticCompressionEverydayMethod(AdaptationMethod):
    """Noise-agnostic compression every day — the Fig. 9(b) ablation arm."""

    name = "noise_agnostic_compression_everyday"

    def parameters_for_day(self, calibration: CalibrationSnapshot) -> np.ndarray:
        """Noise-agnostic compression for every incoming calibration."""
        context = self.context
        compressor = NoiseAgnosticCompressor(context.compression_config)
        model = context.base_model.copy()
        features, labels = context.training_subset()
        result = self._timed(
            compressor.compress,
            model,
            features,
            labels,
            calibration=None,
            coupling=context.coupling,
        )
        return result.parameters


class _QuCADBase(AdaptationMethod):
    """Shared QuCAD plumbing; subclasses choose whether to run the offline stage."""

    use_offline = True

    def __init__(self) -> None:
        super().__init__()
        self._qucad: Optional[QuCAD] = None

    def prepare(self, context: MethodContext) -> None:
        super().prepare(context)
        model = context.base_model.copy()
        self._qucad = QuCAD(
            model, context.dataset, context.coupling, config=context.make_qucad_config()
        )
        if self.use_offline and len(context.offline_history) > 0:
            # Offline work is not charged to the online optimization budget.
            self._qucad.offline(context.offline_history)

    def parameters_for_day(self, calibration: CalibrationSnapshot) -> np.ndarray:
        if self._qucad is None:
            raise TrainingError(f"method {self.name!r} was not prepared")
        before = self._qucad.manager.stats.optimizations if self._qucad._manager else 0
        start = time.perf_counter()
        decision = self._qucad.online(calibration)
        elapsed = time.perf_counter() - start
        after = self._qucad.manager.stats.optimizations
        if after > before:
            self.optimization_runs += after - before
            self.optimization_seconds += elapsed
        return decision.parameters


class QuCADWithoutOfflineMethod(_QuCADBase):
    """QuCAD with an empty initial repository (online stage only)."""

    name = "qucad_without_offline"
    use_offline = False


class QuCADMethod(_QuCADBase):
    """The full QuCAD framework (offline repository + online manager)."""

    name = "qucad"
    use_offline = True


#: Registry of the Table I methods in presentation order.
TABLE1_METHODS = (
    BaselineMethod,
    NoiseAwareTrainOnceMethod,
    NoiseAwareTrainEverydayMethod,
    OneTimeCompressionMethod,
    QuCADWithoutOfflineMethod,
    QuCADMethod,
)


def make_method(name: str) -> AdaptationMethod:
    """Instantiate a method by its ``name`` attribute."""
    registry = {cls.name: cls for cls in TABLE1_METHODS}
    registry.update(
        {
            CompressionEverydayMethod.name: CompressionEverydayMethod,
            NoiseAgnosticCompressionEverydayMethod.name: NoiseAgnosticCompressionEverydayMethod,
        }
    )
    if name not in registry:
        raise TrainingError(f"unknown method {name!r}; available: {sorted(registry)}")
    return registry[name]()
