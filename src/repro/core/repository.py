"""The model repository: stored ⟨compressed model, calibration⟩ pairs.

Entries are matched against incoming calibration snapshots with the
performance-weighted L1 distance.  The repository also remembers the
distance threshold ``th_w`` (Guidance 1) and per-entry validity flags
(Guidance 2) computed by the offline constructor.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

import numpy as np

from repro.calibration.distance import weighted_l1_distance
from repro.calibration.snapshot import CalibrationSnapshot
from repro.exceptions import RepositoryError


@dataclass
class RepositoryEntry:
    """One stored model: compressed parameters plus the calibration it targets.

    This is the paper's pair ``<M_i, D_i>`` — a noise-aware-compressed model
    ``M_i`` (its parameter vector ``theta``) together with the calibration
    snapshot ``D_i`` (typically a cluster centroid from the offline stage) it
    was compressed for.

    Attributes
    ----------
    parameters:
        The compressed parameter vector ``theta``.
    calibration_vector:
        Feature vector of ``D_i`` in the repository's metric layout.
    calibration:
        The full snapshot object when available (not persisted to JSON).
    mean_accuracy:
        Historical accuracy of this entry over its cluster's days, used for
        the Guidance-2 validity check; ``None`` when never evaluated.
    valid:
        Whether the entry meets the user's accuracy requirement.
    source:
        ``"offline"`` (built by the constructor) or ``"online"`` (added by
        the manager when no stored entry matched).
    label:
        Human-readable tag used in reports (e.g. the cluster id).
    """

    parameters: np.ndarray
    calibration_vector: np.ndarray
    calibration: Optional[CalibrationSnapshot] = None
    mean_accuracy: Optional[float] = None
    valid: bool = True
    source: str = "offline"
    label: str = ""

    def __post_init__(self) -> None:
        self.parameters = np.asarray(self.parameters, dtype=float)
        self.calibration_vector = np.asarray(self.calibration_vector, dtype=float)

    def to_dict(self) -> dict:
        """JSON-friendly representation (the snapshot object is not persisted)."""
        return {
            "parameters": self.parameters.tolist(),
            "calibration_vector": self.calibration_vector.tolist(),
            "mean_accuracy": self.mean_accuracy,
            "valid": self.valid,
            "source": self.source,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RepositoryEntry":
        """Inverse of :meth:`to_dict`."""
        return cls(
            parameters=np.asarray(payload["parameters"], dtype=float),
            calibration_vector=np.asarray(payload["calibration_vector"], dtype=float),
            mean_accuracy=payload.get("mean_accuracy"),
            valid=bool(payload.get("valid", True)),
            source=payload.get("source", "offline"),
            label=payload.get("label", ""),
        )


@dataclass
class MatchResult:
    """Best repository match for a calibration vector.

    ``distance`` is the performance-weighted L1 distance ``d_w(D_c, D_i)``
    the online manager compares against the threshold ``th_w``.
    """

    entry: RepositoryEntry
    index: int
    distance: float


@dataclass
class ModelRepository:
    """A collection of repository entries with a shared matching metric.

    The paper's repository ``R = {<M_i, D_i>}`` plus the two artifacts of
    the offline stage that the online manager needs: the per-feature
    ``weights`` of the performance-weighted L1 metric and the matching
    ``threshold`` ``th_w`` derived from the calibration clusters.
    """

    weights: np.ndarray
    threshold: float
    entries: list[RepositoryEntry] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.weights = np.asarray(self.weights, dtype=float)
        if self.threshold < 0:
            raise RepositoryError(f"threshold must be non-negative, got {self.threshold}")

    def __len__(self) -> int:
        return len(self.entries)

    def add(self, entry: RepositoryEntry) -> None:
        """Add an entry, checking that its vector matches the metric dimension."""
        if entry.calibration_vector.shape != self.weights.shape:
            raise RepositoryError(
                f"entry calibration vector of shape {entry.calibration_vector.shape} "
                f"does not match repository with {self.weights.shape[0]} features"
            )
        self.entries.append(entry)

    def distances_to(self, calibration_vector: np.ndarray) -> np.ndarray:
        """Weighted-L1 distance from every entry to ``calibration_vector``."""
        calibration_vector = np.asarray(calibration_vector, dtype=float)
        if not self.entries:
            return np.zeros(0)
        return np.array(
            [
                weighted_l1_distance(entry.calibration_vector, calibration_vector, self.weights)
                for entry in self.entries
            ]
        )

    def match(self, calibration_vector: np.ndarray) -> MatchResult:
        """The closest stored entry to ``calibration_vector``."""
        if not self.entries:
            raise RepositoryError("cannot match against an empty repository")
        distances = self.distances_to(calibration_vector)
        index = int(distances.argmin())
        return MatchResult(entry=self.entries[index], index=index, distance=float(distances[index]))

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_json(self, path: str | Path) -> None:
        """Persist the repository (weights, threshold, entries) to JSON."""
        payload = {
            "weights": self.weights.tolist(),
            "threshold": self.threshold,
            "entries": [entry.to_dict() for entry in self.entries],
        }
        Path(path).write_text(json.dumps(payload, indent=2))

    @classmethod
    def from_json(cls, path: str | Path) -> "ModelRepository":
        """Load a repository previously saved with :meth:`to_json`."""
        payload = json.loads(Path(path).read_text())
        repository = cls(
            weights=np.asarray(payload["weights"], dtype=float),
            threshold=float(payload["threshold"]),
        )
        for entry_payload in payload["entries"]:
            repository.add(RepositoryEntry.from_dict(entry_payload))
        return repository
