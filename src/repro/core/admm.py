"""Noise-aware QNN compression via ADMM (Section III-B of the paper).

The optimization problem ``min_theta f(W_p(theta)) + N(Z) + sum_i s_i(z_i)``
is solved with alternating updates:

* **theta-update** — a few epochs of gradient descent on the training loss
  plus the augmented-Lagrangian proximal term ``rho/2 ||theta - (Z - U)||^2``
  (runs on the fast noise-free simulator with adjoint gradients);
* **Z-update** — the projection implied by the indicator ``s_i``: masked
  parameters snap to their nearest compression level ``T_admm_i``, unmasked
  ones follow ``theta_i + U_i``; the mask comes from the noise-aware
  priority table of :mod:`repro.core.masks`;
* **dual update** — ``U += theta - Z``.

After the ADMM rounds the masked parameters are hard-set to their levels and
frozen, and the remaining parameters are fine-tuned with noise injection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.calibration.snapshot import CalibrationSnapshot
from repro.core.compression_table import CompressionTable
from repro.core.masks import MaskTables, build_mask, gate_noise_rates
from repro.exceptions import TrainingError
from repro.qnn.model import QNNModel
from repro.qnn.noise_injection import NoiseInjector
from repro.qnn.trainer import TrainConfig, Trainer
from repro.simulator import Backend
from repro.transpiler import CouplingMap
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class CompressionConfig:
    """Hyperparameters of the ADMM compression run."""

    table: CompressionTable = field(default_factory=CompressionTable)
    noise_aware: bool = True
    admm_iterations: int = 3
    rho: float = 1.0
    target_fraction: float = 0.5
    threshold: Optional[float] = None
    theta_epochs: int = 3
    finetune_epochs: int = 6
    learning_rate: float = 0.08
    batch_size: int = 32
    injection_sigma: float = 0.02
    seed: SeedLike = 0

    def __post_init__(self) -> None:
        if self.admm_iterations < 1:
            raise TrainingError("admm_iterations must be >= 1")
        if self.rho <= 0:
            raise TrainingError("rho must be positive")


@dataclass
class CompressionResult:
    """Outcome of one compression run."""

    parameters: np.ndarray
    mask: np.ndarray
    tables: MaskTables
    calibration: Optional[CalibrationSnapshot]
    loss_history: list[float] = field(default_factory=list)
    physical_length_before: Optional[int] = None
    physical_length_after: Optional[int] = None

    @property
    def num_compressed(self) -> int:
        """Number of parameters snapped onto compression levels."""
        return int(self.mask.sum())

    @property
    def compression_fraction(self) -> float:
        """Fraction of the parameter vector snapped onto compression levels."""
        return float(self.mask.mean()) if self.mask.size else 0.0


class NoiseAwareCompressor:
    """Compress a trained QNN for a given calibration snapshot.

    The embedded theta-update/fine-tuning trainers route through ``backend``
    (the shared default when omitted), so the many epochs of an ADMM run
    reuse compiled circuit programs instead of rebuilding gate matrices.
    """

    def __init__(
        self,
        config: Optional[CompressionConfig] = None,
        backend: Optional["Backend"] = None,
    ):
        self.config = config or CompressionConfig()
        self.backend = backend

    def compress(
        self,
        model: QNNModel,
        features: np.ndarray,
        labels: np.ndarray,
        calibration: Optional[CalibrationSnapshot] = None,
        coupling: Optional[CouplingMap] = None,
        initial_parameters: Optional[np.ndarray] = None,
    ) -> CompressionResult:
        """Run ADMM compression and fine-tuning.

        Parameters
        ----------
        model:
            The trained model to adapt.  Its parameters are *not* modified;
            the adapted vector is returned in the result.
        features / labels:
            Training data used for the theta-update and fine-tuning.
        calibration:
            The calibration snapshot ``D`` to adapt to.  Required when the
            configuration is noise-aware.
        coupling:
            Device topology; needed if the model is not yet bound to a device.
        initial_parameters:
            Starting parameters (defaults to the model's current ones).
        """
        config = self.config
        if config.noise_aware and calibration is None:
            raise TrainingError("noise-aware compression requires a calibration snapshot")
        if model.transpiled is None:
            if coupling is None:
                raise TrainingError(
                    "model is not bound to a device; pass a coupling map or call "
                    "bind_to_device first"
                )
            model.bind_to_device(coupling, calibration=calibration)
        transpiled = model.transpiled

        theta = np.array(
            model.parameters if initial_parameters is None else initial_parameters,
            dtype=float,
        )
        length_before = transpiled.physical_metrics(theta).physical_length

        noise_table = None
        if config.noise_aware and calibration is not None:
            noise_table = gate_noise_rates(
                model.num_parameters, transpiled.ref_physical_qubits, calibration
            )

        dual = np.zeros_like(theta)
        auxiliary = theta.copy()
        loss_history: list[float] = []
        tables: Optional[MaskTables] = None

        train_config = TrainConfig(
            epochs=config.theta_epochs,
            batch_size=config.batch_size,
            learning_rate=config.learning_rate,
            seed=config.seed,
        )
        trainer = Trainer(model, train_config, backend=self.backend)

        for _ in range(config.admm_iterations):
            # theta-update: loss + rho/2 ||theta - (Z - U)||^2
            result = trainer.train(
                features,
                labels,
                prox_rho=config.rho,
                prox_target=auxiliary - dual,
                initial_parameters=theta,
                update_model=False,
            )
            theta = result.parameters
            loss_history.extend(result.loss_history)

            # Z-update: project theta + U onto the compression levels where masked.
            tables = build_mask(
                theta + dual,
                config.table,
                noise=noise_table,
                threshold=config.threshold,
                target_fraction=config.target_fraction,
            )
            auxiliary = np.where(tables.mask.astype(bool), tables.targets, theta + dual)

            # Dual update.
            dual = dual + theta - auxiliary

        assert tables is not None  # admm_iterations >= 1
        mask = tables.mask.astype(bool)
        compressed = np.where(mask, tables.targets, theta)

        # Fine-tune the surviving free parameters with noise injection,
        # keeping the compressed ones frozen at their levels.
        injector = None
        if calibration is not None:
            injector = NoiseInjector.from_calibration(
                transpiled,
                calibration,
                model.readout_qubits,
                sigma=config.injection_sigma,
                seed=config.seed,
            )
        if config.finetune_epochs > 0:
            finetune_config = TrainConfig(
                epochs=config.finetune_epochs,
                batch_size=config.batch_size,
                learning_rate=config.learning_rate,
                seed=config.seed,
            )
            finetune = Trainer(model, finetune_config, backend=self.backend).train(
                features,
                labels,
                noise_injector=injector,
                frozen_mask=mask,
                prox_rho=0.0,
                prox_target=compressed,
                initial_parameters=compressed,
                update_model=False,
            )
            compressed = np.where(mask, compressed, finetune.parameters)
            loss_history.extend(finetune.loss_history)

        length_after = transpiled.physical_metrics(compressed).physical_length
        return CompressionResult(
            parameters=compressed,
            mask=tables.mask,
            tables=tables,
            calibration=calibration,
            loss_history=loss_history,
            physical_length_before=length_before,
            physical_length_after=length_after,
        )


class NoiseAgnosticCompressor(NoiseAwareCompressor):
    """The prior-work baseline [23]: compress purely by circuit length."""

    def __init__(
        self,
        config: Optional[CompressionConfig] = None,
        backend: Optional[Backend] = None,
    ):
        base = config or CompressionConfig()
        super().__init__(
            backend=backend,
            config=CompressionConfig(
                table=base.table,
                noise_aware=False,
                admm_iterations=base.admm_iterations,
                rho=base.rho,
                target_fraction=base.target_fraction,
                threshold=base.threshold,
                theta_epochs=base.theta_epochs,
                finetune_epochs=base.finetune_epochs,
                learning_rate=base.learning_rate,
                batch_size=base.batch_size,
                injection_sigma=base.injection_sigma,
                seed=base.seed,
            )
        )
