"""The compression-level table ``T`` (the breakpoints of Motivation 1).

Compression levels are the angles at which the transpiled physical circuit
becomes shorter: 0 (gate vanishes), pi/2, pi, 3pi/2 (single-pulse rotations
instead of two pulses; controlled rotations at 0 disappear entirely).  The
table answers, for every parameter, "what is the nearest level (``T_admm``)
and how far away is it (``D``)" — the two ingredients of the noise-aware
mask in Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.exceptions import TrainingError

TWO_PI = 2.0 * np.pi

#: The default table used throughout the paper: the quarter-turn grid.
DEFAULT_LEVELS: tuple[float, ...] = (0.0, np.pi / 2, np.pi, 3 * np.pi / 2)


@dataclass(frozen=True)
class CompressionTable:
    """A set of compression levels within one period ``[0, 2 pi)``.

    ``nearest_level`` snaps a parameter to the closest level *in the same
    winding* of the angle, so the returned target is always within half a
    grid step of the original value (this matters for controlled rotations,
    where e.g. 0 and 2 pi are not equivalent).
    """

    levels: tuple[float, ...] = DEFAULT_LEVELS

    def __post_init__(self) -> None:
        if not self.levels:
            raise TrainingError("a compression table needs at least one level")
        for level in self.levels:
            if not 0.0 <= level < TWO_PI:
                raise TrainingError(
                    f"compression levels must lie in [0, 2*pi), got {level}"
                )
        object.__setattr__(self, "levels", tuple(sorted(float(l) for l in self.levels)))

    def _candidates(self) -> np.ndarray:
        """Levels extended by one period on each side (for wrap-around snapping)."""
        base = np.asarray(self.levels, dtype=float)
        return np.concatenate([base - TWO_PI, base, base + TWO_PI])

    def nearest_level(self, theta: float) -> tuple[float, float]:
        """Return ``(target_value, distance)`` for one parameter.

        ``target_value`` is expressed in the same winding as ``theta`` (it is
        ``theta`` shifted by at most half a level spacing), so assigning it
        to the parameter moves the gate onto a breakpoint without a 2-pi jump.
        """
        theta = float(theta)
        winding = np.floor(theta / TWO_PI) * TWO_PI
        reduced = theta - winding
        candidates = self._candidates()
        index = int(np.argmin(np.abs(candidates - reduced)))
        target = candidates[index] + winding
        return float(target), float(abs(theta - target))

    def nearest_levels(self, parameters: Sequence[float] | np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`nearest_level`: returns ``(T_admm, D)`` arrays."""
        parameters = np.asarray(parameters, dtype=float)
        targets = np.empty_like(parameters)
        distances = np.empty_like(parameters)
        for index, value in enumerate(parameters.ravel()):
            target, distance = self.nearest_level(value)
            targets.ravel()[index] = target
            distances.ravel()[index] = distance
        return targets, distances

    def is_compressed(self, theta: float, atol: float = 1e-6) -> bool:
        """Whether ``theta`` already sits on a compression level."""
        _, distance = self.nearest_level(theta)
        return distance <= atol

    def compression_fraction(self, parameters: Sequence[float] | np.ndarray, atol: float = 1e-6) -> float:
        """Fraction of parameters already sitting on a level."""
        parameters = np.asarray(parameters, dtype=float)
        if parameters.size == 0:
            return 0.0
        _, distances = self.nearest_levels(parameters)
        return float(np.mean(distances <= atol))
