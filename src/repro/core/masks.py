"""Noise-aware mask generation (Fig. 6 of the paper).

For every trainable gate ``g_i`` with parameter ``theta_i`` the mask builder
combines three tables:

* ``T_admm`` — the nearest compression level of ``theta_i``,
* ``D`` — the distance ``d_i = |theta_i - T_admm_i|``,
* ``C`` — the calibration noise on the physical qubits the gate touches,
  ``n_i = C(A(g_i))``.

The priority of compressing gate ``g_i`` is ``p_i = n_i / d_i`` — gates that
sit on noisy qubits *and* are already close to a breakpoint are compressed
first.  The noise-agnostic variant (the prior work the paper compares
against) uses ``p_i = 1 / d_i``: it only looks at circuit length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.calibration.snapshot import CalibrationSnapshot
from repro.core.compression_table import CompressionTable
from repro.exceptions import TrainingError

#: Distances below this are treated as "already on a level".
_DISTANCE_FLOOR = 1e-6


@dataclass(frozen=True)
class MaskTables:
    """All the per-parameter tables of one mask-generation round."""

    targets: np.ndarray
    distances: np.ndarray
    noise: np.ndarray
    priority: np.ndarray
    mask: np.ndarray
    threshold: float

    @property
    def num_compressed(self) -> int:
        """Number of parameters selected for compression by the mask."""
        return int(self.mask.sum())

    def compressed_indices(self) -> np.ndarray:
        """Indices of parameters selected for compression."""
        return np.flatnonzero(self.mask)


def gate_noise_rates(
    num_parameters: int,
    ref_physical_qubits: Mapping[int, tuple[int, ...]],
    calibration: CalibrationSnapshot,
) -> np.ndarray:
    """The table ``C(A(g_i))`` for every trainable parameter."""
    noise = np.zeros(num_parameters, dtype=float)
    for ref in range(num_parameters):
        qubits = ref_physical_qubits.get(ref)
        if qubits is None:
            raise TrainingError(
                f"parameter {ref} has no physical-qubit association; transpile first"
            )
        noise[ref] = calibration.noise_on(qubits)
    return noise


def build_mask(
    parameters: np.ndarray,
    table: CompressionTable,
    noise: Optional[np.ndarray] = None,
    threshold: Optional[float] = None,
    target_fraction: Optional[float] = 0.5,
) -> MaskTables:
    """Build the compression mask for one ADMM round.

    Exactly one of ``threshold`` (absolute priority threshold, as in the
    paper) or ``target_fraction`` (compress the top fraction of parameters
    by priority, a convenient way of setting the threshold automatically)
    must be provided — if both are given, ``threshold`` wins.

    ``noise`` omitted means noise-agnostic compression.
    """
    parameters = np.asarray(parameters, dtype=float)
    if parameters.ndim != 1:
        raise TrainingError("parameters must be a 1-D vector")
    targets, distances = table.nearest_levels(parameters)
    if noise is None:
        noise = np.ones_like(parameters)
    else:
        noise = np.asarray(noise, dtype=float)
        if noise.shape != parameters.shape:
            raise TrainingError(
                f"noise table of shape {noise.shape} does not match "
                f"{parameters.shape[0]} parameters"
            )
    priority = noise / np.maximum(distances, _DISTANCE_FLOOR)

    if threshold is None:
        if target_fraction is None:
            raise TrainingError("either threshold or target_fraction must be given")
        if not 0.0 <= target_fraction <= 1.0:
            raise TrainingError(
                f"target_fraction must lie in [0, 1], got {target_fraction}"
            )
        if target_fraction == 0.0:
            threshold = float(np.inf)
        else:
            count = max(1, int(round(target_fraction * parameters.shape[0])))
            threshold = float(np.partition(priority, -count)[-count])
    mask = (priority >= threshold).astype(int)
    return MaskTables(
        targets=targets,
        distances=distances,
        noise=noise,
        priority=priority,
        mask=mask,
        threshold=float(threshold),
    )


def apply_mask(parameters: np.ndarray, tables: MaskTables) -> np.ndarray:
    """Snap masked parameters to their compression levels."""
    parameters = np.asarray(parameters, dtype=float)
    return np.where(tables.mask.astype(bool), tables.targets, parameters)
