"""Training entry points: noise-free baseline and noise-aware training [12].

Noise-aware training injects device noise into the training loop so the
learned parameters account for the device; here the injection happens at the
measurement level (see :mod:`repro.qnn.noise_injection`), which keeps the
per-day retraining used by the "Noise-aware Train Everyday" baseline cheap
enough to run across a 146-day evaluation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.calibration.snapshot import CalibrationSnapshot
from repro.exceptions import TrainingError
from repro.qnn.model import QNNModel
from repro.qnn.noise_injection import NoiseInjector
from repro.qnn.trainer import TrainConfig, Trainer, TrainResult
from repro.transpiler import CouplingMap


def train_noise_free(
    model: QNNModel,
    features: np.ndarray,
    labels: np.ndarray,
    config: Optional[TrainConfig] = None,
    update_model: bool = True,
) -> TrainResult:
    """Train in a perfect (noise-free) environment — the paper's Baseline."""
    trainer = Trainer(model, config or TrainConfig())
    return trainer.train(features, labels, update_model=update_model)


def noise_aware_train(
    model: QNNModel,
    features: np.ndarray,
    labels: np.ndarray,
    calibration: CalibrationSnapshot,
    coupling: Optional[CouplingMap] = None,
    config: Optional[TrainConfig] = None,
    injection_sigma: float = 0.02,
    initial_parameters: Optional[np.ndarray] = None,
    update_model: bool = True,
    pass_manager=None,
) -> TrainResult:
    """Noise-aware training against one calibration snapshot (ref [12]).

    The model must be (or become) bound to a device so the injector knows
    which physical qubits the readouts live on; a fresh binding compiles
    through the staged pipeline (``pass_manager`` selects the artifact pool).
    """
    if model.transpiled is None:
        if coupling is None:
            raise TrainingError(
                "noise-aware training needs a device binding; pass a coupling map"
            )
        model.bind_to_device(
            coupling, calibration=calibration, pass_manager=pass_manager
        )
    injector = NoiseInjector.from_calibration(
        model.transpiled,
        calibration,
        model.readout_qubits,
        sigma=injection_sigma,
        seed=config.seed if config is not None else 0,
    )
    trainer = Trainer(model, config or TrainConfig())
    return trainer.train(
        features,
        labels,
        noise_injector=injector,
        initial_parameters=initial_parameters,
        update_model=update_model,
    )
