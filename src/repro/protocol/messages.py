"""The registered message types: one model per record family.

Each class here is the *only* shape its family is allowed to take across
a process or persistence boundary:

- :class:`RunRecord` — one runner evaluation row (the JSONL trail).
- :class:`FleetCellResult` / :class:`FleetReport` — one (device ×
  scenario) cell and the assembled fleet report.
- :class:`FleetRunManifest` — the durable identity of one fleet run
  (what ``fleet --resume`` validates against).
- :class:`WatcherAction` — one calibration-watcher swap outcome.
- :class:`ShardDeploy` / :class:`ShardStateOp` — the supervisor's typed
  state-log audit records.
- :class:`TelemetrySnapshot` — a serving-telemetry snapshot, single
  process or merged across shards.

Versioning rule: any change to a model's serialized shape (fields,
types, required-ness) must bump its ``type_version`` literal — the CI
``protocol-gate`` job diffs the exported JSON schemas in
``docs/schemas/`` against the registry and fails on drift without a
bump.
"""

from __future__ import annotations

import time
from typing import Literal, Optional

import numpy as np
from pydantic import BaseModel, ConfigDict, Field

from repro.protocol.base import ReproMessage

#: The adaptation actions a CalibrationWatcher classifies swaps into.
WATCHER_ACTIONS: tuple[str, ...] = ("refresh", "recompile", "readapt")


class RunRecord(ReproMessage):
    """One unit of runner work, as persisted to the JSONL artifact.

    Attributes
    ----------
    experiment:
        Harness name (``"fig2"``, ``"table1/mnist4/qucad"``, ...).
    kind:
        Record type; day evaluations use ``"day_evaluation"``.
    index:
        Position of the unit within its sweep (e.g. the day index).
    date:
        Calendar label of the unit, when the sweep has one.
    scenario:
        Drift-scenario name the unit ran under (``None`` outside scenario
        sweeps) — what makes every fleet row attributable to its cell.
    accuracy:
        Evaluation outcome (``None`` for non-evaluation records).
    cache_hit:
        Whether the result came from the evaluation cache.
    duration_seconds:
        Wall time spent producing the result (0 for cache hits).
    extra:
        Free-form JSON-serialisable payload (method name, shots, ...).
    created_at:
        Unix timestamp at record creation.
    """

    type_name: Literal["run.record"] = "run.record"
    type_version: Literal["001"] = "001"
    experiment: str
    kind: str = "day_evaluation"
    index: Optional[int] = None
    date: Optional[str] = None
    scenario: Optional[str] = None
    accuracy: Optional[float] = None
    cache_hit: bool = False
    duration_seconds: float = 0.0
    extra: dict = Field(default_factory=dict)
    created_at: float = Field(default_factory=time.time)


class FleetCellResult(ReproMessage):
    """Everything one ``(device, scenario)`` cell produced.

    Attributes
    ----------
    device / scenario:
        The cell's coordinates in the fleet grid.
    days:
        Number of online days replayed.
    dates:
        Calendar labels of the replayed days.
    accuracy:
        Per-day accuracy of the deployed model under the scenario's drift.
    actions:
        ``{"refresh" | "recompile" | "readapt": count}`` from the
        :class:`~repro.serving.watcher.CalibrationWatcher` replay.
    boundary_reuses:
        Days whose layout decision was provably still optimal (the
        incremental-recompilation fast path).
    versions_published:
        Model versions the watcher published to the registry.
    compiler:
        The cell's :class:`~repro.transpiler.pipeline.PassManagerStats`
        counters (compile-cache hit rates).
    runner:
        Evaluation-runner counters including evaluation-cache statistics.
    wall_seconds:
        Wall time the cell took end to end.
    """

    type_name: Literal["fleet.cell.result"] = "fleet.cell.result"
    type_version: Literal["001"] = "001"
    device: str
    scenario: str
    days: int
    dates: list[Optional[str]] = Field(default_factory=list)
    accuracy: list[float] = Field(default_factory=list)
    actions: dict[str, int] = Field(default_factory=dict)
    boundary_reuses: int = 0
    versions_published: int = 0
    compiler: dict = Field(default_factory=dict)
    runner: dict = Field(default_factory=dict)
    wall_seconds: float = 0.0

    @property
    def mean_accuracy(self) -> float:
        """Mean per-day accuracy over the replayed days."""
        return float(np.mean(self.accuracy)) if self.accuracy else float("nan")

    @property
    def min_accuracy(self) -> float:
        """Worst single-day accuracy (collapse indicator)."""
        return float(np.min(self.accuracy)) if self.accuracy else float("nan")

    @property
    def final_accuracy(self) -> float:
        """Accuracy on the last replayed day."""
        return float(self.accuracy[-1]) if self.accuracy else float("nan")

    def as_dict(self) -> dict:
        """JSON-ready cell record for the fleet report."""
        return {
            "device": self.device,
            "scenario": self.scenario,
            "days": self.days,
            "dates": list(self.dates),
            "accuracy": [float(value) for value in self.accuracy],
            "mean_accuracy": self.mean_accuracy,
            "min_accuracy": self.min_accuracy,
            "final_accuracy": self.final_accuracy,
            "actions": dict(self.actions),
            "boundary_reuses": self.boundary_reuses,
            "versions_published": self.versions_published,
            "compiler": dict(self.compiler),
            "runner": dict(self.runner),
            "wall_seconds": self.wall_seconds,
        }


class FleetReport(ReproMessage):
    """All cells of one fleet run plus fleet-wide aggregates."""

    type_name: Literal["fleet.report"] = "fleet.report"
    type_version: Literal["001"] = "001"
    dataset_name: str
    cells: list[FleetCellResult] = Field(default_factory=list)
    wall_seconds: float = 0.0
    run_id: Optional[str] = None
    resumed_cells: int = 0

    def cell(self, device: str, scenario: str) -> FleetCellResult:
        """The recorded result for one ``(device, scenario)`` cell."""
        for cell in self.cells:
            if cell.device == device and cell.scenario == scenario:
                return cell
        raise KeyError(f"no cell recorded for ({device!r}, {scenario!r})")

    def summary(self) -> dict:
        """Fleet-wide rollup: grid shape, accuracy spread, action totals."""
        devices = sorted({cell.device for cell in self.cells})
        scenarios = sorted({cell.scenario for cell in self.cells})
        actions = {action: 0 for action in WATCHER_ACTIONS}
        for cell in self.cells:
            for action, count in cell.actions.items():
                actions[action] = actions.get(action, 0) + count
        means = [cell.mean_accuracy for cell in self.cells]
        hit_rates = [
            cell.compiler.get("pass_cache_hit_rate", 0.0) for cell in self.cells
        ]
        worst = min(self.cells, key=lambda cell: cell.mean_accuracy, default=None)
        return {
            "dataset": self.dataset_name,
            "run_id": self.run_id,
            "resumed_cells": self.resumed_cells,
            "cells": len(self.cells),
            "devices": devices,
            "scenarios": scenarios,
            "mean_accuracy": float(np.mean(means)) if means else float("nan"),
            "worst_cell": (
                None
                if worst is None
                else {
                    "device": worst.device,
                    "scenario": worst.scenario,
                    "mean_accuracy": worst.mean_accuracy,
                }
            ),
            "actions": actions,
            "mean_pass_cache_hit_rate": (
                float(np.mean(hit_rates)) if hit_rates else 0.0
            ),
            "wall_seconds": self.wall_seconds,
        }

    def as_dict(self) -> dict:
        """The full JSON fleet report: per-cell records + aggregates."""
        return {
            "summary": self.summary(),
            "cells": [cell.as_dict() for cell in self.cells],
        }

    def canonical_dict(self) -> dict:
        """The report minus run-instance metadata (timings, resume info).

        Two runs of the same grid at the same seed — uninterrupted or
        killed-and-resumed — produce byte-identical canonical dicts; this
        is the form the crash-resume smoke compares.
        """
        return canonical_report_dict(self.as_dict())

    def format(self) -> str:
        """A compact human-readable table of the fleet grid."""
        header = (
            f"{'device':<14} {'scenario':<16} {'mean':>6} {'min':>6} "
            f"{'refresh':>8} {'recompile':>10} {'readapt':>8} {'cache':>6}"
        )
        lines = [header, "-" * len(header)]
        for cell in self.cells:
            lines.append(
                f"{cell.device:<14} {cell.scenario:<16} "
                f"{cell.mean_accuracy:6.3f} {cell.min_accuracy:6.3f} "
                f"{cell.actions.get('refresh', 0):8d} "
                f"{cell.actions.get('recompile', 0):10d} "
                f"{cell.actions.get('readapt', 0):8d} "
                f"{cell.compiler.get('pass_cache_hit_rate', 0.0):6.1%}"
            )
        return "\n".join(lines)


#: Report keys that describe the run *instance* rather than its results.
_NON_CANONICAL_SUMMARY_KEYS = ("wall_seconds", "run_id", "resumed_cells")


def canonical_report_dict(report: dict) -> dict:
    """Strip run-instance metadata from a JSON fleet-report dict.

    Works on the plain-dict form (e.g. a ``fleet --json`` artifact read
    back from disk) so the CI smoke can compare reports without
    reconstructing models.
    """
    summary = {
        key: value
        for key, value in report.get("summary", {}).items()
        if key not in _NON_CANONICAL_SUMMARY_KEYS
    }
    cells = [
        {key: value for key, value in cell.items() if key != "wall_seconds"}
        for cell in report.get("cells", [])
    ]
    return {"summary": summary, "cells": cells}


class FleetRunManifest(ReproMessage):
    """The durable identity of one fleet run, pinned in the run store.

    ``config_digest`` summarizes everything that determines the run's
    results (grid, dataset, seed, scale); ``--resume`` refuses to attach
    to a run whose digest does not match the requested configuration, so
    a resumed run can never silently mix cells from different setups.
    """

    type_name: Literal["fleet.run.manifest"] = "fleet.run.manifest"
    type_version: Literal["001"] = "001"
    run_id: str
    config_digest: str
    devices: list[str]
    scenarios: list[str]
    dataset_name: str
    seed: int
    chunk_days: int
    scale: dict
    status: Literal["running", "complete"] = "running"
    created_at: float = Field(default_factory=time.time)


class WatcherAction(ReproMessage):
    """Outcome of one :meth:`CalibrationWatcher.observe` step."""

    model_config = ConfigDict(extra="forbid", frozen=True, protected_namespaces=())

    type_name: Literal["serving.watcher.action"] = "serving.watcher.action"
    type_version: Literal["001"] = "001"
    name: str
    date: Optional[str] = None
    action: Literal["refresh", "recompile", "readapt"] = "refresh"
    version: int = 0
    digest_changed: bool = False
    parameters_changed: bool = False
    boundary_reused: bool = False

    def as_dict(self) -> dict:
        """JSON-ready form for run reports."""
        return {
            "name": self.name,
            "date": self.date,
            "action": self.action,
            "version": self.version,
            "digest_changed": self.digest_changed,
            "parameters_changed": self.parameters_changed,
            "boundary_reused": self.boundary_reused,
        }


class ShardDeploy(ReproMessage):
    """Typed audit record of one shard deploy (the model travels as bytes
    out-of-band; the record carries its content digest)."""

    type_name: Literal["serving.shard.deploy"] = "serving.shard.deploy"
    type_version: Literal["001"] = "001"
    name: str
    model_digest: str
    shard_id: Optional[int] = None
    calibration_date: Optional[str] = None
    has_model_bytes: bool = False
    has_noise_model: bool = False
    has_adapter: bool = False


class ShardStateOp(ReproMessage):
    """Typed audit record of one state-mutating shard op (deploy /
    observe / rollback), including its crash-replay bookkeeping."""

    type_name: Literal["serving.shard.state_op"] = "serving.shard.state_op"
    type_version: Literal["001"] = "001"
    op: Literal["deploy", "observe", "rollback"]
    name: str
    date: Optional[str] = None
    model_digest: Optional[str] = None
    attempts: int = 0
    quarantined: bool = False


class ModelServingStats(BaseModel):
    """Per-model serving metrics (embedded in :class:`TelemetrySnapshot`)."""

    model_config = ConfigDict(extra="forbid")

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    batches: int = 0
    batch_size_histogram: dict[str, int] = Field(default_factory=dict)
    mean_batch_size: float = 0.0
    failure_rate: float = 0.0
    qps: float = 0.0
    latency_p50_ms: Optional[float] = None
    latency_p99_ms: Optional[float] = None
    versions_served: list[int] = Field(default_factory=list)


class TelemetrySnapshot(ReproMessage):
    """A serving-telemetry snapshot: per-model stats, swap counters, and
    (for the sharded service) per-shard rollups."""

    type_name: Literal["serving.telemetry.snapshot"] = "serving.telemetry.snapshot"
    type_version: Literal["001"] = "001"
    models: dict[str, ModelServingStats] = Field(default_factory=dict)
    swaps: dict[str, int] = Field(default_factory=dict)
    shards: dict[str, dict] = Field(default_factory=dict)
