"""Typed telemetry protocol: one validated model per cross-boundary message.

This package is the single source of truth for every record that crosses
a process or persistence boundary — JSONL run records, fleet cell
results and reports, watcher actions, shard state-log audit records, and
telemetry snapshots.  Each message family is one pydantic model carrying
a ``type_name``/``type_version`` pair, registered on definition, with
canonical (deterministic, bit-stable) JSON codecs and an exported JSON
schema that the CI ``protocol-gate`` job pins against drift.
"""

from repro.protocol.base import (
    MESSAGE_REGISTRY,
    ProtocolError,
    ReproMessage,
    content_digest,
    decode,
    decode_payload,
    encode,
    export_schemas,
    message_class,
    registered_messages,
    schema_document,
    schema_filename,
)
from repro.protocol.messages import (
    WATCHER_ACTIONS,
    FleetCellResult,
    FleetReport,
    FleetRunManifest,
    ModelServingStats,
    RunRecord,
    ShardDeploy,
    ShardStateOp,
    TelemetrySnapshot,
    WatcherAction,
    canonical_report_dict,
)

__all__ = [
    "MESSAGE_REGISTRY",
    "ProtocolError",
    "ReproMessage",
    "WATCHER_ACTIONS",
    "FleetCellResult",
    "FleetReport",
    "FleetRunManifest",
    "ModelServingStats",
    "RunRecord",
    "ShardDeploy",
    "ShardStateOp",
    "TelemetrySnapshot",
    "WatcherAction",
    "canonical_report_dict",
    "content_digest",
    "decode",
    "decode_payload",
    "encode",
    "export_schemas",
    "message_class",
    "registered_messages",
    "schema_document",
    "schema_filename",
]
