"""Typed message base: registry, versioning, and round-trip codecs.

Every record that crosses a process or persistence boundary — JSONL run
records, fleet cell results, watcher actions, shard state-log entries,
telemetry snapshots — is one :class:`ReproMessage` subclass, following the
one-model-per-message ``named_types`` idiom: each message carries a
``type_name`` (a dotted, globally unique family name) and a
``type_version`` (a zero-padded string bumped whenever the schema
changes).  Subclasses register themselves on definition, so
:func:`decode` can dispatch any serialized line back to the exact model
that wrote it, and :func:`export_schemas` can emit the JSON-schema
documents the CI ``protocol-gate`` job pins.

Canonical encoding is ``json.dumps(model_dump(mode="json"),
sort_keys=True)``: key order is total, floats round-trip exactly, and the
same message always produces the same bytes — which is what lets the
crash-resume smoke assert bit-identical reports and the schema gate
detect drift by digest.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Iterator, Optional, Union

from pydantic import BaseModel, ConfigDict, ValidationError

from repro.exceptions import ReproError


class ProtocolError(ReproError):
    """A message failed validation, decoding, or registry lookup."""


#: type_name -> {type_version -> model class}; filled by subclass definition.
MESSAGE_REGISTRY: dict[str, dict[str, type["ReproMessage"]]] = {}


def _literal_default(cls: type[BaseModel], field: str) -> Optional[str]:
    """The declared default of a literal string field (None when absent)."""
    info = cls.model_fields.get(field)
    if info is None or info.default is None or not isinstance(info.default, str):
        return None
    return info.default


class ReproMessage(BaseModel):
    """Base class for every typed message in the protocol registry.

    Subclasses declare ``type_name``/``type_version`` as string-literal
    fields with defaults; defining the class registers it.  Messages are
    strict (unknown keys rejected) so schema drift fails loudly at the
    boundary rather than silently dropping data.
    """

    model_config = ConfigDict(extra="forbid", protected_namespaces=())

    @classmethod
    def __pydantic_init_subclass__(cls, **kwargs: Any) -> None:
        """Register concrete subclasses by their (type_name, type_version)."""
        super().__pydantic_init_subclass__(**kwargs)
        type_name = _literal_default(cls, "type_name")
        type_version = _literal_default(cls, "type_version")
        if type_name is None or type_version is None:
            return  # abstract intermediate or embedded submodel
        versions = MESSAGE_REGISTRY.setdefault(type_name, {})
        existing = versions.get(type_version)
        if existing is not None and existing is not cls:
            raise ProtocolError(
                f"duplicate message registration for {type_name!r} "
                f"version {type_version!r}: {existing.__name__} vs {cls.__name__}"
            )
        versions[type_version] = cls

    # ------------------------------------------------------------------
    def to_canonical_dict(self) -> dict:
        """JSON-ready payload with every field in serializable form."""
        return self.model_dump(mode="json")

    def to_json(self) -> str:
        """The message as one canonical JSON line (no trailing newline)."""
        return encode(self)

    @classmethod
    def from_json(cls, line: str) -> "ReproMessage":
        """Parse and validate one JSON line as this message type."""
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as error:
            raise ProtocolError(f"invalid message JSON: {error}") from error
        return cls.from_payload(payload)

    @classmethod
    def from_payload(cls, payload: dict) -> "ReproMessage":
        """Validate a decoded payload dict as this message type."""
        try:
            return cls.model_validate(payload)
        except ValidationError as error:
            raise ProtocolError(
                f"payload does not validate as {cls.__name__}: {error}"
            ) from error


def registered_messages() -> Iterator[type[ReproMessage]]:
    """Every registered message class, ordered by (type_name, version)."""
    for type_name in sorted(MESSAGE_REGISTRY):
        for version in sorted(MESSAGE_REGISTRY[type_name]):
            yield MESSAGE_REGISTRY[type_name][version]


def message_class(type_name: str, type_version: Optional[str] = None) -> type[ReproMessage]:
    """Resolve a registered message class (latest version by default)."""
    versions = MESSAGE_REGISTRY.get(type_name)
    if not versions:
        raise ProtocolError(f"unknown message type {type_name!r}")
    if type_version is None:
        return versions[max(versions)]
    cls = versions.get(type_version)
    if cls is None:
        raise ProtocolError(
            f"unknown version {type_version!r} for message type {type_name!r} "
            f"(registered: {sorted(versions)})"
        )
    return cls


# ----------------------------------------------------------------------
# Codecs
# ----------------------------------------------------------------------
def encode(message: ReproMessage) -> str:
    """Serialize a message to its canonical JSON line.

    Canonical means deterministic: sorted keys, exact float round-trip —
    encoding the same message twice always yields identical bytes.
    """
    return json.dumps(message.to_canonical_dict(), sort_keys=True)


def decode(line: Union[str, bytes]) -> ReproMessage:
    """Parse one serialized line back into its registered message type."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"invalid message JSON: {error}") from error
    return decode_payload(payload)


def decode_payload(payload: dict) -> ReproMessage:
    """Dispatch a decoded payload dict to its registered message class."""
    if not isinstance(payload, dict):
        raise ProtocolError(f"message payload must be an object, got {type(payload)}")
    type_name = payload.get("type_name")
    if type_name is None:
        raise ProtocolError("message payload is missing 'type_name'")
    cls = message_class(type_name, payload.get("type_version"))
    return cls.from_payload(payload)


def content_digest(payload: Any) -> str:
    """Digest of any JSON-serializable payload's canonical encoding.

    The run store keys rows on these digests: the same logical content
    always lands on the same key, which is what makes resume idempotent.
    """
    encoded = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.blake2b(encoded, digest_size=16).hexdigest()


# ----------------------------------------------------------------------
# Schema export (the protocol-gate surface)
# ----------------------------------------------------------------------
def schema_document(cls: type[ReproMessage]) -> dict:
    """The pinned schema document for one message class.

    ``schema_digest`` summarizes the JSON schema alone, so the gate can
    tell "shape changed, version didn't" (an error) apart from "document
    stale, re-export" (also an error, different remedy).
    """
    schema = cls.model_json_schema()
    digest = hashlib.blake2b(
        json.dumps(schema, sort_keys=True).encode("utf-8"), digest_size=16
    ).hexdigest()
    return {
        "type_name": _literal_default(cls, "type_name"),
        "type_version": _literal_default(cls, "type_version"),
        "schema_digest": digest,
        "schema": schema,
    }


def schema_filename(cls: type[ReproMessage]) -> str:
    """The committed filename for one message family's schema document."""
    type_name = _literal_default(cls, "type_name") or cls.__name__
    return type_name.replace(".", "_") + ".json"


def export_schemas(directory: Union[str, Path]) -> list[Path]:
    """Write every registered message's schema document under ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for cls in registered_messages():
        path = directory / schema_filename(cls)
        path.write_text(
            json.dumps(schema_document(cls), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        written.append(path)
    return written
