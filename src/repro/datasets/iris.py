"""Iris-like dataset generated from the published class statistics.

The classic Iris table is not bundled offline, so the 150 samples are drawn
from per-class Gaussian distributions whose means, standard deviations, and
feature correlations match the well-known values of the original dataset
(setosa linearly separable from the other two; versicolor and virginica
overlapping).  This preserves everything the paper's experiment relies on:
4 features, 3 classes, a 2/3 : 1/3 train/test split, and 3 VQC repeats.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset, minmax_normalize, train_test_split
from repro.exceptions import DatasetError
from repro.utils.rng import SeedLike, ensure_rng

#: Per-class feature means (sepal length, sepal width, petal length, petal width).
IRIS_CLASS_MEANS: dict[str, np.ndarray] = {
    "setosa": np.array([5.01, 3.43, 1.46, 0.25]),
    "versicolor": np.array([5.94, 2.77, 4.26, 1.33]),
    "virginica": np.array([6.59, 2.97, 5.55, 2.03]),
}

#: Per-class feature standard deviations.
IRIS_CLASS_STDS: dict[str, np.ndarray] = {
    "setosa": np.array([0.35, 0.38, 0.17, 0.11]),
    "versicolor": np.array([0.52, 0.31, 0.47, 0.20]),
    "virginica": np.array([0.64, 0.32, 0.55, 0.27]),
}

#: A shared within-class correlation structure (sepal/petal measurements are
#: positively correlated in every class of the original data).
IRIS_CORRELATION = np.array(
    [
        [1.00, 0.45, 0.75, 0.55],
        [0.45, 1.00, 0.35, 0.40],
        [0.75, 0.35, 1.00, 0.80],
        [0.55, 0.40, 0.80, 1.00],
    ]
)

IRIS_CLASS_NAMES: tuple[str, ...] = ("setosa", "versicolor", "virginica")


def generate_iris_samples(
    samples_per_class: int = 50, seed: SeedLike = 42
) -> tuple[np.ndarray, np.ndarray]:
    """Draw class-conditional Gaussian samples matching the Iris statistics."""
    if samples_per_class <= 0:
        raise DatasetError(f"samples_per_class must be positive, got {samples_per_class}")
    rng = ensure_rng(seed)
    features = []
    labels = []
    for label, name in enumerate(IRIS_CLASS_NAMES):
        stds = IRIS_CLASS_STDS[name]
        covariance = IRIS_CORRELATION * np.outer(stds, stds)
        block = rng.multivariate_normal(
            IRIS_CLASS_MEANS[name], covariance, size=samples_per_class
        )
        features.append(block)
        labels.append(np.full(samples_per_class, label, dtype=int))
    return np.vstack(features), np.concatenate(labels)


def load_iris(
    samples_per_class: int = 50,
    train_fraction: float = 0.666,
    seed: SeedLike = 42,
) -> Dataset:
    """The Iris task used in Table I (4 features, 3 classes, 3 VQC repeats)."""
    features, labels = generate_iris_samples(samples_per_class, seed=seed)
    features = minmax_normalize(features)
    train_x, train_y, test_x, test_y = train_test_split(
        features, labels, train_fraction, seed=seed
    )
    return Dataset(
        name="iris",
        train_features=train_x,
        train_labels=train_y,
        test_features=test_x,
        test_labels=test_y,
        num_classes=3,
        feature_names=["sepal_length", "sepal_width", "petal_length", "petal_width"],
    )
