"""Datasets used by the paper's experiments (offline synthetic stand-ins)."""

from repro.datasets.base import Dataset, minmax_normalize, train_test_split
from repro.datasets.iris import IRIS_CLASS_NAMES, generate_iris_samples, load_iris
from repro.datasets.mnist4 import (
    DIGIT_PROTOTYPES,
    MNIST4_DIGITS,
    generate_mnist4_samples,
    load_mnist4,
)
from repro.datasets.seismic import (
    generate_seismic_samples,
    load_seismic,
    synthesize_trace,
    windowed_log_energy,
)

DATASET_LOADERS = {
    "mnist4": load_mnist4,
    "iris": load_iris,
    "seismic": load_seismic,
}


def load_dataset(name: str, **kwargs) -> Dataset:
    """Load a dataset by name (``mnist4``, ``iris``, or ``seismic``)."""
    from repro.exceptions import DatasetError

    key = name.lower()
    if key not in DATASET_LOADERS:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {sorted(DATASET_LOADERS)}"
        )
    return DATASET_LOADERS[key](**kwargs)


__all__ = [
    "Dataset",
    "minmax_normalize",
    "train_test_split",
    "load_mnist4",
    "load_iris",
    "load_seismic",
    "load_dataset",
    "DATASET_LOADERS",
    "generate_mnist4_samples",
    "generate_iris_samples",
    "generate_seismic_samples",
    "synthesize_trace",
    "windowed_log_energy",
    "MNIST4_DIGITS",
    "DIGIT_PROTOTYPES",
    "IRIS_CLASS_NAMES",
]
