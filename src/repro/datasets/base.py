"""Common dataset container and preprocessing helpers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.exceptions import DatasetError
from repro.utils.rng import SeedLike, ensure_rng


@dataclass
class Dataset:
    """A classification dataset split into train and test partitions.

    Features are stored already normalized to ``[0, 1]`` so they can be used
    directly as angle-encoding inputs.
    """

    name: str
    train_features: np.ndarray
    train_labels: np.ndarray
    test_features: np.ndarray
    test_labels: np.ndarray
    num_classes: int
    feature_names: Optional[list[str]] = None

    def __post_init__(self) -> None:
        self.train_features = np.asarray(self.train_features, dtype=float)
        self.test_features = np.asarray(self.test_features, dtype=float)
        self.train_labels = np.asarray(self.train_labels, dtype=int)
        self.test_labels = np.asarray(self.test_labels, dtype=int)
        if self.train_features.shape[0] != self.train_labels.shape[0]:
            raise DatasetError("train features and labels disagree on sample count")
        if self.test_features.shape[0] != self.test_labels.shape[0]:
            raise DatasetError("test features and labels disagree on sample count")
        if self.train_features.shape[0] and self.test_features.shape[0]:
            if self.train_features.shape[1] != self.test_features.shape[1]:
                raise DatasetError("train and test features have different widths")
        if self.num_classes < 2:
            raise DatasetError(f"num_classes must be >= 2, got {self.num_classes}")

    @property
    def num_features(self) -> int:
        """Number of features per sample."""
        return self.train_features.shape[1]

    @property
    def num_train(self) -> int:
        """Number of training samples."""
        return self.train_features.shape[0]

    @property
    def num_test(self) -> int:
        """Number of test samples."""
        return self.test_features.shape[0]

    def subsample(
        self,
        num_train: Optional[int] = None,
        num_test: Optional[int] = None,
        seed: SeedLike = 0,
    ) -> "Dataset":
        """A smaller copy with stratified random subsets of each split.

        Used by benchmarks to keep the per-day evaluations affordable while
        exercising the full code path.
        """
        rng = ensure_rng(seed)

        def _select(features, labels, count):
            if count is None or count >= features.shape[0]:
                return features, labels
            per_class = max(1, count // self.num_classes)
            chosen: list[int] = []
            for cls in range(self.num_classes):
                indices = np.flatnonzero(labels == cls)
                if indices.size == 0:
                    continue
                take = min(per_class, indices.size)
                chosen.extend(rng.choice(indices, size=take, replace=False).tolist())
            remaining = [i for i in range(features.shape[0]) if i not in set(chosen)]
            while len(chosen) < count and remaining:
                pick = remaining.pop(int(rng.integers(0, len(remaining))))
                chosen.append(pick)
            chosen_array = np.array(sorted(chosen[:count]))
            return features[chosen_array], labels[chosen_array]

        train_features, train_labels = _select(self.train_features, self.train_labels, num_train)
        test_features, test_labels = _select(self.test_features, self.test_labels, num_test)
        return Dataset(
            name=self.name,
            train_features=train_features,
            train_labels=train_labels,
            test_features=test_features,
            test_labels=test_labels,
            num_classes=self.num_classes,
            feature_names=self.feature_names,
        )


def minmax_normalize(features: np.ndarray) -> np.ndarray:
    """Scale each feature column into ``[0, 1]`` (constant columns map to 0)."""
    features = np.asarray(features, dtype=float)
    minimum = features.min(axis=0, keepdims=True)
    maximum = features.max(axis=0, keepdims=True)
    span = np.where(maximum - minimum > 0, maximum - minimum, 1.0)
    return (features - minimum) / span


def train_test_split(
    features: np.ndarray,
    labels: np.ndarray,
    train_fraction: float,
    seed: SeedLike = 0,
    shuffle: bool = True,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split arrays into train and test partitions."""
    if not 0.0 < train_fraction < 1.0:
        raise DatasetError(f"train_fraction must lie in (0, 1), got {train_fraction}")
    features = np.asarray(features, dtype=float)
    labels = np.asarray(labels, dtype=int)
    count = features.shape[0]
    order = ensure_rng(seed).permutation(count) if shuffle else np.arange(count)
    cut = int(round(train_fraction * count))
    train_index, test_index = order[:cut], order[cut:]
    return (
        features[train_index],
        labels[train_index],
        features[test_index],
        labels[test_index],
    )
