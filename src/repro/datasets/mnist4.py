"""Synthetic 4-class MNIST stand-in (digits 0, 1, 3, 6 on a 4x4 grid).

The paper downsamples MNIST to 4x4 and keeps classes {0, 1, 3, 6}.  MNIST
itself is not bundled offline, so this module generates a faithful stand-in:
each class has a hand-drawn 4x4 prototype resembling the downsampled digit,
and samples are produced by jittering pixel intensities, shifting the digit
by up to one pixel, and dropping random pixels.  The result is a 16-feature,
4-class task with the same dimensionality and difficulty profile.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset, train_test_split
from repro.exceptions import DatasetError
from repro.utils.rng import SeedLike, ensure_rng

#: 4x4 prototypes for the digits 0, 1, 3, 6 (values in [0, 1]).
DIGIT_PROTOTYPES: dict[int, np.ndarray] = {
    0: np.array(
        [
            [0.1, 0.9, 0.9, 0.1],
            [0.9, 0.0, 0.0, 0.9],
            [0.9, 0.0, 0.0, 0.9],
            [0.1, 0.9, 0.9, 0.1],
        ]
    ),
    1: np.array(
        [
            [0.0, 0.0, 0.9, 0.0],
            [0.0, 0.0, 0.9, 0.0],
            [0.0, 0.0, 0.9, 0.0],
            [0.0, 0.0, 0.9, 0.0],
        ]
    ),
    3: np.array(
        [
            [0.9, 0.9, 0.9, 0.0],
            [0.0, 0.9, 0.9, 0.0],
            [0.0, 0.0, 0.9, 0.9],
            [0.9, 0.9, 0.9, 0.0],
        ]
    ),
    6: np.array(
        [
            [0.1, 0.9, 0.0, 0.0],
            [0.9, 0.0, 0.0, 0.0],
            [0.9, 0.9, 0.9, 0.1],
            [0.9, 0.9, 0.9, 0.1],
        ]
    ),
}

#: Class labels are the positional index of the digit in this tuple.
MNIST4_DIGITS: tuple[int, ...] = (0, 1, 3, 6)


def _shift_image(image: np.ndarray, shift_row: int, shift_col: int) -> np.ndarray:
    """Shift a 4x4 image by up to one pixel, padding with the background."""
    background = float(image.min())
    shifted = np.full_like(image, background)
    rows = slice(max(0, shift_row), min(4, 4 + shift_row))
    cols = slice(max(0, shift_col), min(4, 4 + shift_col))
    src_rows = slice(max(0, -shift_row), min(4, 4 - shift_row))
    src_cols = slice(max(0, -shift_col), min(4, 4 - shift_col))
    shifted[rows, cols] = image[src_rows, src_cols]
    return shifted


def generate_mnist4_samples(
    num_samples: int,
    seed: SeedLike = 0,
    noise_level: float = 0.1,
    dropout_probability: float = 0.03,
    shift_probability: float = 0.25,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate ``num_samples`` flattened 4x4 images and their class labels."""
    if num_samples <= 0:
        raise DatasetError(f"num_samples must be positive, got {num_samples}")
    rng = ensure_rng(seed)
    features = np.zeros((num_samples, 16), dtype=float)
    labels = np.zeros(num_samples, dtype=int)
    for index in range(num_samples):
        label = int(rng.integers(0, len(MNIST4_DIGITS)))
        prototype = DIGIT_PROTOTYPES[MNIST4_DIGITS[label]]
        image = prototype.copy()
        if rng.random() < shift_probability:
            image = _shift_image(
                image, int(rng.integers(-1, 2)), int(rng.integers(-1, 2))
            )
        image = image + rng.normal(0.0, noise_level, size=image.shape)
        dropout = rng.random(image.shape) < dropout_probability
        image = np.where(dropout, 0.0, image)
        features[index] = np.clip(image, 0.0, 1.0).reshape(-1)
        labels[index] = label
    return features, labels


def load_mnist4(
    num_samples: int = 1000,
    train_fraction: float = 0.8,
    seed: SeedLike = 7,
    noise_level: float = 0.1,
) -> Dataset:
    """The 4-class MNIST stand-in used by Table I, Fig. 2, Fig. 7, and Fig. 9."""
    features, labels = generate_mnist4_samples(
        num_samples, seed=seed, noise_level=noise_level
    )
    train_x, train_y, test_x, test_y = train_test_split(
        features, labels, train_fraction, seed=seed
    )
    return Dataset(
        name="mnist4",
        train_features=train_x,
        train_labels=train_y,
        test_features=test_x,
        test_labels=test_y,
        num_classes=4,
        feature_names=[f"pixel_{r}_{c}" for r in range(4) for c in range(4)],
    )
