"""Synthetic earthquake-detection (seismic wave) dataset.

The paper uses 1500 waveform samples pulled from FDSN with binary labels
(event / no event).  FDSN is not reachable offline, so this module
synthesizes the same kind of task: each sample is a short seismogram that is
either pure background noise or background noise plus a P-wave-like burst
(an exponentially decaying sinusoid arriving at a random time, followed by a
slower S-wave-like coda).  The classifier sees windowed log-energy features,
which is the standard compact representation for this detection task.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset, minmax_normalize, train_test_split
from repro.exceptions import DatasetError
from repro.utils.rng import SeedLike, ensure_rng


def synthesize_trace(
    rng: np.random.Generator,
    has_event: bool,
    trace_length: int = 256,
    snr: float = 2.5,
) -> np.ndarray:
    """One synthetic seismogram.

    Background is colored Gaussian noise; an event adds a high-frequency
    P-wave burst and a lower-frequency, longer S-wave coda starting at a
    random arrival time in the middle half of the trace.
    """
    time = np.arange(trace_length, dtype=float)
    background = rng.normal(0.0, 1.0, size=trace_length)
    # Light low-pass filtering makes the background look like microseismic noise.
    kernel = np.array([0.25, 0.5, 0.25])
    background = np.convolve(background, kernel, mode="same")
    if not has_event:
        return background
    arrival = int(rng.integers(trace_length // 4, 3 * trace_length // 4))
    envelope_p = np.where(
        time >= arrival, np.exp(-(time - arrival) / 12.0), 0.0
    )
    envelope_s = np.where(
        time >= arrival + 20, np.exp(-(time - arrival - 20) / 40.0), 0.0
    )
    p_wave = envelope_p * np.sin(2 * np.pi * 0.18 * (time - arrival) + rng.uniform(0, 2 * np.pi))
    s_wave = envelope_s * np.sin(2 * np.pi * 0.07 * (time - arrival) + rng.uniform(0, 2 * np.pi))
    amplitude = snr * rng.uniform(0.7, 1.4)
    return background + amplitude * (p_wave + 1.6 * s_wave)


def windowed_log_energy(trace: np.ndarray, num_windows: int = 16) -> np.ndarray:
    """Log energy of the trace in ``num_windows`` equal time windows."""
    trace = np.asarray(trace, dtype=float)
    if trace.shape[0] % num_windows != 0:
        raise DatasetError(
            f"trace length {trace.shape[0]} is not divisible by {num_windows} windows"
        )
    windows = trace.reshape(num_windows, -1)
    energy = np.sum(windows**2, axis=1)
    return np.log1p(energy)


def generate_seismic_samples(
    num_samples: int,
    seed: SeedLike = 0,
    num_windows: int = 16,
    trace_length: int = 256,
    snr: float = 2.5,
    event_fraction: float = 0.5,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate windowed-energy feature vectors and binary labels."""
    if num_samples <= 0:
        raise DatasetError(f"num_samples must be positive, got {num_samples}")
    rng = ensure_rng(seed)
    features = np.zeros((num_samples, num_windows), dtype=float)
    labels = np.zeros(num_samples, dtype=int)
    for index in range(num_samples):
        has_event = rng.random() < event_fraction
        trace = synthesize_trace(rng, has_event, trace_length=trace_length, snr=snr)
        features[index] = windowed_log_energy(trace, num_windows=num_windows)
        labels[index] = int(has_event)
    return features, labels


def load_seismic(
    num_samples: int = 1500,
    train_fraction: float = 0.9,
    seed: SeedLike = 11,
    num_windows: int = 16,
    snr: float = 2.5,
) -> Dataset:
    """The earthquake-detection dataset used by Table I and Fig. 8.

    Defaults mirror the paper: 1500 samples, 90% / 10% train/test split,
    features encoded onto 4 qubits (16 windowed-energy features).
    """
    features, labels = generate_seismic_samples(
        num_samples, seed=seed, num_windows=num_windows, snr=snr
    )
    features = minmax_normalize(features)
    train_x, train_y, test_x, test_y = train_test_split(
        features, labels, train_fraction, seed=seed
    )
    return Dataset(
        name="seismic",
        train_features=train_x,
        train_labels=train_y,
        test_features=test_x,
        test_labels=test_y,
        num_classes=2,
        feature_names=[f"log_energy_window_{i}" for i in range(num_windows)],
    )
