"""Versioned model deployments with atomic publish / rollback.

The registry is the serving system's source of truth for *which* model
answers requests under a given name.  Each :meth:`ModelRegistry.publish`
freezes one immutable :class:`ModelVersion` — the model, the noise model
emulating today's device, and the content digests that identify the
deployment — and swaps the "current" pointer under a lock, so readers
(the micro-batching scheduler resolves the current version once per flush)
either see the old version or the new one, never a half-updated mixture.

Versions are keyed by content: ``compilation_digest`` identifies the
compiled artifacts (routed structure, layout, device) and ``model_key``
additionally covers the parameter vector and the noise model.  Publishing a
deployment whose ``model_key`` matches the current version is a no-op (the
current version is returned unchanged), so a calibration watcher can publish
unconditionally and still only bump versions when something observable
changed.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Optional

from repro.exceptions import ServingError
from repro.qnn.model import QNNModel
from repro.runtime.cache import model_digest, noise_model_digest
from repro.simulator import NoiseModel


@dataclass(frozen=True)
class ModelVersion:
    """One immutable deployment of a model under a registry name.

    Attributes
    ----------
    name / version:
        Registry name and monotonically increasing version number.
    model:
        The deployed :class:`~repro.qnn.model.QNNModel` (treated as
        read-only by the serving layer; hot-swaps publish a copy).
    noise_model:
        The calibration-derived noise model requests are served under, or
        ``None`` for ideal (noise-free) serving.
    compilation_digest:
        :meth:`~repro.transpiler.TranspiledCircuit.compilation_digest` of
        the deployed binding (``None`` for unbound / ideal models).
    model_key:
        Full content identity: model digest (structure + parameters +
        binding) joined with the noise-model digest.  Two versions with
        equal keys serve bit-identical responses.
    calibration_date:
        The calibration day this version was adapted to, when known.
    published_at:
        Wall-clock publish timestamp (metadata only).
    """

    name: str
    version: int
    model: QNNModel
    noise_model: Optional[NoiseModel]
    compilation_digest: Optional[str]
    model_key: str
    calibration_date: Optional[str] = None
    published_at: float = 0.0


def deployment_key(model: QNNModel, noise_model: Optional[NoiseModel]) -> str:
    """Content identity of a deployment: model digest + noise digest."""
    return f"{model_digest(model)}/{noise_model_digest(noise_model)}"


#: Default per-name bound on retained versions.  The watcher publishes on
#: effectively every drift observation, so an unbounded history would leak
#: one model copy per day in a long-lived server; 64 retained versions give
#: two months of daily rollback depth.
DEFAULT_MAX_HISTORY: int = 64


class ModelRegistry:
    """Thread-safe versioned registry of deployed models.

    One registry serves many names (one per logical model endpoint); each
    name carries a linear version history plus a current pointer.
    :meth:`rollback` moves the pointer back without erasing recent history,
    so a bad hot-swap can be undone atomically and then re-published later.

    Retention is bounded: at most ``max_history`` versions are kept per
    name (oldest non-current versions are pruned on publish — version
    *numbers* stay monotonic, only the objects are released), so a
    long-lived server with a daily drift stream does not accumulate model
    copies without limit.
    """

    def __init__(self, max_history: int = DEFAULT_MAX_HISTORY) -> None:
        if max_history < 2:
            raise ServingError(
                f"max_history must be >= 2 (current + one rollback target), "
                f"got {max_history}"
            )
        self._lock = threading.Lock()
        self._history: dict[str, list[ModelVersion]] = {}
        self._current: dict[str, int] = {}
        self._next_version: dict[str, int] = {}
        self.max_history = max_history

    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        """All registry names with at least one published version."""
        with self._lock:
            return sorted(self._history)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._history

    def get(self, name: str) -> ModelVersion:
        """The current version serving ``name`` (atomic read)."""
        with self._lock:
            history = self._history.get(name)
            if not history:
                raise ServingError(
                    f"no model published under {name!r}; "
                    f"known names: {sorted(self._history)}"
                )
            return history[self._current[name]]

    def history(self, name: str) -> list[ModelVersion]:
        """The retained versions of ``name`` (oldest first, bounded)."""
        with self._lock:
            if name not in self._history:
                raise ServingError(f"no model published under {name!r}")
            return list(self._history[name])

    # ------------------------------------------------------------------
    def publish(
        self,
        name: str,
        model: QNNModel,
        noise_model: Optional[NoiseModel] = None,
        calibration_date: Optional[str] = None,
    ) -> ModelVersion:
        """Atomically make ``model`` the current version for ``name``.

        The new version becomes visible to readers in one pointer swap;
        in-flight work that already resolved the previous version keeps its
        (immutable) reference and completes unaffected.  Publishing a
        deployment content-identical to the current version *for the same
        calibration day* returns the current version without a bump.
        """
        if noise_model is not None and model.transpiled is None:
            raise ServingError(
                f"cannot publish {name!r}: serving under a noise model requires "
                "a device-bound model (call bind_to_device first)"
            )
        key = deployment_key(model, noise_model)
        with self._lock:
            history = self._history.setdefault(name, [])
            if history:
                current = history[self._current[name]]
                if (
                    current.model_key == key
                    and current.calibration_date == calibration_date
                ):
                    return current
            version = ModelVersion(
                name=name,
                version=self._next_version.get(name, 1),
                model=model,
                noise_model=noise_model,
                compilation_digest=(
                    model.transpiled.compilation_digest()
                    if model.transpiled is not None
                    else None
                ),
                model_key=key,
                calibration_date=calibration_date,
                published_at=time.time(),
            )
            self._next_version[name] = version.version + 1
            history.append(version)
            self._current[name] = len(history) - 1
            # Bound retention: drop the oldest non-current versions.  The
            # pruned objects stay valid for any in-flight batch that
            # already resolved them; only the registry's references go.
            while len(history) > self.max_history:
                drop = 0 if self._current[name] != 0 else 1
                del history[drop]
                if drop < self._current[name]:
                    self._current[name] -= 1
            return version

    def rollback(self, name: str) -> ModelVersion:
        """Atomically restore the previous retained version of ``name``.

        Recent history is preserved — a subsequent :meth:`publish` appends
        after it with a fresh, still-monotonic version number.
        """
        with self._lock:
            history = self._history.get(name)
            if not history:
                raise ServingError(f"no model published under {name!r}")
            index = self._current[name]
            if index == 0:
                raise ServingError(
                    f"{name!r} has no earlier retained version to roll back to"
                )
            self._current[name] = index - 1
            return history[index - 1]
