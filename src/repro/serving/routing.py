"""Consistent-hash routing of model names onto serving shards.

The sharded service pins every model name to exactly one shard so that a
model's compiled program, bound circuits, and calibration watcher live in
one process — requests for a name always land on the warm engine that
already holds its artifacts.  Routing must therefore be *stable*: growing
or shrinking the shard set may only move the minimal set of names, or every
resize would cold-start the whole fleet's caches.

:class:`ConsistentHashRouter` implements the classic hash ring: each shard
owns ``replicas`` pseudo-random points on a 64-bit circle (derived from a
keyed blake2b digest, deliberately *not* Python's salted ``hash``), and a
name routes to the owner of the first point at or after the name's own
digest.  Adding a shard claims only the arc segments its new points cut off
— names not on those segments keep their shard, which is the exact
invariant the property tests pin: after ``add``, every name routes either
to its old shard or to the new one; after ``remove``, only names that
routed to the removed shard move at all.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Sequence

from repro.exceptions import ServingError

__all__ = ["ConsistentHashRouter", "DEFAULT_REPLICAS", "ring_point"]

#: Virtual nodes per shard.  More replicas smooth the load split between
#: shards (the std-dev of arc ownership shrinks like 1/sqrt(replicas)) at a
#: small, one-off ring-build cost; 96 keeps a 4-shard ring within a few
#: percent of an even split.
DEFAULT_REPLICAS = 96


def ring_point(key: str) -> int:
    """Deterministic 64-bit ring position of ``key``.

    Uses blake2b rather than ``hash()`` so positions are stable across
    processes and interpreter runs (``PYTHONHASHSEED`` randomises ``hash``),
    which the shard-restart replay protocol depends on.
    """
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ConsistentHashRouter:
    """Stable mapping of model names to shard ids via a hash ring."""

    def __init__(self, shard_ids: Iterable[int], replicas: int = DEFAULT_REPLICAS):
        self.replicas = int(replicas)
        if self.replicas < 1:
            raise ServingError(f"replicas must be >= 1, got {self.replicas}")
        self._shards: set[int] = set()
        self._points: list[int] = []
        self._owners: list[int] = []
        for shard_id in shard_ids:
            self.add_shard(shard_id)
        if not self._shards:
            raise ServingError("ConsistentHashRouter needs at least one shard")

    # ------------------------------------------------------------------
    @property
    def shard_ids(self) -> list[int]:
        """The shard ids currently on the ring (sorted)."""
        return sorted(self._shards)

    def _shard_points(self, shard_id: int) -> list[int]:
        return [ring_point(f"shard:{shard_id}:{r}") for r in range(self.replicas)]

    def add_shard(self, shard_id: int) -> None:
        """Place ``shard_id``'s virtual nodes on the ring (idempotent-safe)."""
        shard_id = int(shard_id)
        if shard_id in self._shards:
            raise ServingError(f"shard {shard_id} is already on the ring")
        self._shards.add(shard_id)
        for point in self._shard_points(shard_id):
            index = bisect.bisect_left(self._points, point)
            # Point collisions across shards are ~2^-64 per pair; break ties
            # deterministically by shard id so rebuilds agree.
            while (
                index < len(self._points)
                and self._points[index] == point
                and self._owners[index] < shard_id
            ):
                index += 1
            self._points.insert(index, point)
            self._owners.insert(index, shard_id)

    def remove_shard(self, shard_id: int) -> None:
        """Remove ``shard_id``'s virtual nodes; its arcs fall to successors."""
        shard_id = int(shard_id)
        if shard_id not in self._shards:
            raise ServingError(f"shard {shard_id} is not on the ring")
        if len(self._shards) == 1:
            raise ServingError("cannot remove the last shard from the ring")
        self._shards.discard(shard_id)
        keep = [
            (point, owner)
            for point, owner in zip(self._points, self._owners)
            if owner != shard_id
        ]
        self._points = [point for point, _ in keep]
        self._owners = [owner for _, owner in keep]

    # ------------------------------------------------------------------
    def route(self, name: str) -> int:
        """The shard id serving ``name`` (first ring point at/after its hash)."""
        if not isinstance(name, str) or not name:
            raise ServingError(f"route expects a non-empty model name, got {name!r}")
        index = bisect.bisect_left(self._points, ring_point(f"name:{name}"))
        if index == len(self._points):
            index = 0  # wrap around the circle
        return self._owners[index]

    def assignments(self, names: Sequence[str]) -> dict[str, int]:
        """Route every name at once: ``{name: shard_id}``."""
        return {name: self.route(name) for name in names}
