"""Calibration watcher: drift-triggered hot-swap of deployed models.

The watcher is the serving-side consumer of the paper's core loop: device
calibration drifts day to day, and the served model must follow.  Each
:meth:`CalibrationWatcher.observe` call takes one new
:class:`~repro.calibration.snapshot.CalibrationSnapshot` (e.g. from
:func:`repro.calibration.generate_device_history`) and

1. recompiles the deployed ansatz for the new snapshot through the staged
   :class:`~repro.transpiler.PassManager` — inside the PR 3 layout decision
   boundary this is a provably bit-identical artifact reuse, so the
   "recompile" costs a digest lookup and the compiled program stays warm;
2. consults an optional **adapter** (e.g. wrapping
   :meth:`repro.core.manager.RepositoryManager.adapt`) for re-adapted
   parameters;
3. atomically publishes the resulting deployment to the
   :class:`~repro.serving.registry.ModelRegistry`.

Swaps never touch in-flight work: the scheduler resolves versions at flush
boundaries, so a batch that started under the old version finishes under it
and the next batch picks up the new one.

Actions are classified for telemetry: ``refresh`` (only the noise model
tracked the day; compiled artifacts and parameters unchanged),
``recompile`` (drift crossed the layout decision boundary and the
compilation digest changed), ``readapt`` (the adapter produced new
parameters).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

import numpy as np

from repro.exceptions import ServingError
from repro.protocol import WatcherAction
from repro.serving.registry import ModelRegistry, ModelVersion
from repro.serving.telemetry import ServingTelemetry
from repro.simulator import NoiseModel
from repro.transpiler import Target
from repro.transpiler.pipeline import PassManager, default_pass_manager

#: Swap outcomes are typed protocol messages; ``SwapReport`` remains the
#: serving-layer name for the registered ``serving.watcher.action`` model.
SwapReport = WatcherAction


#: An adapter maps a calibration snapshot to re-adapted parameters (or
#: ``None`` to keep the deployed parameters unchanged).
Adapter = Callable[[object], Optional[np.ndarray]]


class CalibrationWatcher:
    """Publishes drift-adapted versions of one deployed model."""

    def __init__(
        self,
        registry: ModelRegistry,
        name: str,
        pass_manager: Optional[PassManager] = None,
        adapter: Optional[Adapter] = None,
        telemetry: Optional[ServingTelemetry] = None,
    ):
        self.registry = registry
        self.name = name
        self.pass_manager = pass_manager or default_pass_manager()
        self.adapter = adapter
        self.telemetry = telemetry
        self.reports: list[SwapReport] = []

    # ------------------------------------------------------------------
    def observe(self, snapshot) -> SwapReport:
        """Ingest one calibration snapshot and hot-swap if drift demands it."""
        current = self.registry.get(self.name)
        model = current.model
        if model.transpiled is None:
            raise ServingError(
                f"{self.name!r} serves an unbound model; a calibration watcher "
                "needs a device binding to track"
            )
        target = Target(coupling=model.transpiled.coupling, calibration=snapshot)

        # Was yesterday's layout decision provably still optimal today?
        # (Recorded before compiling, which may replace the decision.)
        decision = self.pass_manager.layout_decision(model.ansatz, target)
        boundary_reused = decision is not None and decision.still_optimal_for(snapshot)

        transpiled = self.pass_manager.compile(model.ansatz, target)
        digest_changed = (
            transpiled.compilation_digest() != current.compilation_digest
        )

        parameters = None
        if self.adapter is not None:
            parameters = self.adapter(snapshot)
        parameters_changed = parameters is not None and not np.array_equal(
            np.asarray(parameters, dtype=float), model.parameters
        )

        swapped = model.with_binding(transpiled, parameters=parameters)
        version = self.registry.publish(
            self.name,
            swapped,
            noise_model=NoiseModel.from_calibration(snapshot),
            calibration_date=getattr(snapshot, "date", None),
        )
        if parameters_changed:
            action = "readapt"
        elif digest_changed:
            action = "recompile"
        else:
            action = "refresh"
        report = SwapReport(
            name=self.name,
            date=getattr(snapshot, "date", None),
            action=action,
            version=version.version,
            digest_changed=digest_changed,
            parameters_changed=parameters_changed,
            boundary_reused=boundary_reused,
        )
        self.reports.append(report)
        if self.telemetry is not None:
            self.telemetry.record_swap(self.name, action)
        return report

    def run(self, history: Iterable) -> list[SwapReport]:
        """Observe every snapshot of a drift history, in order."""
        return [self.observe(snapshot) for snapshot in history]
