"""Load generator: drives an :class:`InferenceService` with synthetic traffic.

The generator emulates the steady-state online workload the paper's system
targets — a stream of single-sample prediction requests against one or more
deployed models, optionally with calibration drift injected mid-stream so
hot-swaps happen *while* requests are queued.  It waits for every response,
verifies none were lost, and reduces the run to a JSON-ready
:class:`LoadReport` (throughput, latency percentiles, per-model counts,
swap actions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.exceptions import ServingError
from repro.serving.service import InferenceService
from repro.serving.watcher import SwapReport
from repro.utils.rng import SeedLike, ensure_rng

import time


@dataclass
class LoadReport:
    """Summary of one load-generation run."""

    requests: int
    completed: int
    duration_seconds: float
    throughput_rps: float
    latency_p50_ms: Optional[float]
    latency_p99_ms: Optional[float]
    per_model: dict[str, int]
    versions_served: dict[str, list[int]]
    swaps: list[dict] = field(default_factory=list)

    def as_dict(self) -> dict:
        """JSON-ready form for the CLI summary."""
        return {
            "requests": self.requests,
            "completed": self.completed,
            "duration_seconds": self.duration_seconds,
            "throughput_rps": self.throughput_rps,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p99_ms": self.latency_p99_ms,
            "per_model": self.per_model,
            "versions_served": self.versions_served,
            "swaps": self.swaps,
        }


class LoadGenerator:
    """Synthesises request streams against a running service."""

    def __init__(
        self,
        service: InferenceService,
        feature_pool: np.ndarray,
        names: Sequence[str],
        seed: SeedLike = 0,
    ):
        self.service = service
        self.feature_pool = np.asarray(feature_pool, dtype=float)
        if self.feature_pool.ndim != 2 or not len(self.feature_pool):
            raise ServingError(
                f"feature_pool must be a non-empty (samples, features) matrix, "
                f"got shape {self.feature_pool.shape}"
            )
        self.names = list(names)
        if not self.names:
            raise ServingError("LoadGenerator needs at least one model name")
        self.rng = ensure_rng(seed)

    def run(
        self,
        num_requests: int,
        drift_history=None,
        observe_every: Optional[int] = None,
    ) -> LoadReport:
        """Send ``num_requests`` single-sample requests and await every reply.

        Requests rotate round-robin over the deployed names with samples
        drawn uniformly from the feature pool.  When ``drift_history`` and
        ``observe_every`` are given, one snapshot is fed to each model's
        calibration watcher every ``observe_every`` requests — drift lands
        mid-stream, with requests in flight, exactly the hot-swap scenario
        the scheduler must survive.
        """
        if num_requests < 1:
            raise ServingError(f"num_requests must be >= 1, got {num_requests}")
        drift = list(drift_history) if drift_history is not None else []
        drift_cursor = 0
        swaps: list[SwapReport] = []
        started = time.perf_counter()
        futures = []
        for index in range(num_requests):
            name = self.names[index % len(self.names)]
            sample = self.feature_pool[int(self.rng.integers(len(self.feature_pool)))]
            futures.append((name, self.service.predict_async(name, sample)))
            if (
                observe_every
                and (index + 1) % observe_every == 0
                and drift_cursor < len(drift)
            ):
                snapshot = drift[drift_cursor]
                drift_cursor += 1
                for swap_name in self.names:
                    swaps.append(
                        self.service.observe_calibration(swap_name, snapshot)
                    )
        results = [future.result(timeout=120.0) for _, future in futures]
        duration = time.perf_counter() - started

        latencies = np.array([r.latency_seconds for r in results])
        per_model: dict[str, int] = {}
        versions: dict[str, set[int]] = {}
        for result in results:
            per_model[result.model] = per_model.get(result.model, 0) + 1
            versions.setdefault(result.model, set()).add(result.version)
        return LoadReport(
            requests=num_requests,
            completed=len(results),
            duration_seconds=duration,
            throughput_rps=len(results) / duration if duration > 0 else 0.0,
            latency_p50_ms=float(np.percentile(latencies, 50)) * 1e3
            if latencies.size
            else None,
            latency_p99_ms=float(np.percentile(latencies, 99)) * 1e3
            if latencies.size
            else None,
            per_model=per_model,
            versions_served={
                name: sorted(served) for name, served in versions.items()
            },
            swaps=[swap.as_dict() for swap in swaps],
        )
