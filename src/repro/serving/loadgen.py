"""Load generator: drives an :class:`InferenceService` with synthetic traffic.

The generator emulates the steady-state online workload the paper's system
targets — a stream of single-sample prediction requests against one or more
deployed models, optionally with calibration drift injected mid-stream so
hot-swaps happen *while* requests are queued.  It waits for every response,
verifies none were lost, and reduces the run to a JSON-ready
:class:`LoadReport` (throughput, latency percentiles, per-model counts,
swap actions).

Two arrival disciplines are supported:

* :meth:`LoadGenerator.run` — *closed loop*: every request is submitted as
  fast as the previous submission returns, so the offered load adapts to
  the service and the run measures peak throughput.
* :meth:`LoadGenerator.run_open_loop` — *open loop*: requests arrive on a
  fixed-rate or Poisson schedule that does **not** slow down when the
  service stalls, and each request's latency is measured from its
  *scheduled arrival*, not its actual submission.  That convention avoids
  coordinated omission: a service that freezes for a second accumulates
  that second into the latency of every request scheduled during the
  freeze, instead of silently deferring them.  The report's
  ``submit_lag_p99_ms`` shows how far the generator itself fell behind its
  own schedule (a sanity check that the measured p99 is the service's).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.exceptions import ServingError
from repro.serving.service import InferenceService
from repro.serving.watcher import SwapReport
from repro.utils.rng import SeedLike, ensure_rng

import time


@dataclass
class LoadReport:
    """Summary of one load-generation run."""

    requests: int
    completed: int
    duration_seconds: float
    throughput_rps: float
    latency_p50_ms: Optional[float]
    latency_p99_ms: Optional[float]
    per_model: dict[str, int]
    versions_served: dict[str, list[int]]
    swaps: list[dict] = field(default_factory=list)
    #: Arrival discipline: ``"closed"`` (default) or ``"open"``.
    mode: str = "closed"
    #: Target arrival rate of an open-loop run (requests/second).
    arrival_rate: Optional[float] = None
    #: Actually offered rate of an open-loop run (schedule span based).
    offered_rps: Optional[float] = None
    #: p99 of (actual submit − scheduled arrival); large values mean the
    #: generator, not the service, was the bottleneck.
    submit_lag_p99_ms: Optional[float] = None

    def as_dict(self) -> dict:
        """JSON-ready form for the CLI summary."""
        return {
            "requests": self.requests,
            "completed": self.completed,
            "duration_seconds": self.duration_seconds,
            "throughput_rps": self.throughput_rps,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p99_ms": self.latency_p99_ms,
            "per_model": self.per_model,
            "versions_served": self.versions_served,
            "swaps": self.swaps,
            "mode": self.mode,
            "arrival_rate": self.arrival_rate,
            "offered_rps": self.offered_rps,
            "submit_lag_p99_ms": self.submit_lag_p99_ms,
        }


class LoadGenerator:
    """Synthesises request streams against a running service.

    ``service`` may be any object with the :class:`InferenceService` client
    surface (``predict_async`` / ``observe_calibration``) — the sharded
    tier's :class:`~repro.serving.service.ShardedInferenceService` drives
    through the exact same code path.
    """

    def __init__(
        self,
        service: InferenceService,
        feature_pool: np.ndarray,
        names: Sequence[str],
        seed: SeedLike = 0,
    ):
        self.service = service
        self.feature_pool = np.asarray(feature_pool, dtype=float)
        if self.feature_pool.ndim != 2 or not len(self.feature_pool):
            raise ServingError(
                f"feature_pool must be a non-empty (samples, features) matrix, "
                f"got shape {self.feature_pool.shape}"
            )
        self.names = list(names)
        if not self.names:
            raise ServingError("LoadGenerator needs at least one model name")
        self.rng = ensure_rng(seed)

    def run(
        self,
        num_requests: int,
        drift_history=None,
        observe_every: Optional[int] = None,
    ) -> LoadReport:
        """Send ``num_requests`` single-sample requests and await every reply.

        Requests rotate round-robin over the deployed names with samples
        drawn uniformly from the feature pool.  When ``drift_history`` and
        ``observe_every`` are given, one snapshot is fed to each model's
        calibration watcher every ``observe_every`` requests — drift lands
        mid-stream, with requests in flight, exactly the hot-swap scenario
        the scheduler must survive.
        """
        if num_requests < 1:
            raise ServingError(f"num_requests must be >= 1, got {num_requests}")
        drift = list(drift_history) if drift_history is not None else []
        drift_cursor = 0
        swaps: list[SwapReport] = []
        started = time.perf_counter()
        futures = []
        for index in range(num_requests):
            name = self.names[index % len(self.names)]
            sample = self.feature_pool[int(self.rng.integers(len(self.feature_pool)))]
            futures.append((name, self.service.predict_async(name, sample)))
            if (
                observe_every
                and (index + 1) % observe_every == 0
                and drift_cursor < len(drift)
            ):
                snapshot = drift[drift_cursor]
                drift_cursor += 1
                for swap_name in self.names:
                    swaps.append(
                        self.service.observe_calibration(swap_name, snapshot)
                    )
        results = [future.result(timeout=120.0) for _, future in futures]
        duration = time.perf_counter() - started
        latencies = np.array([r.latency_seconds for r in results])
        return self._report(num_requests, results, latencies, duration, swaps)

    def run_open_loop(
        self,
        num_requests: int,
        arrival_rate: float,
        poisson: bool = True,
        drift_history=None,
        observe_every: Optional[int] = None,
        timeout: float = 120.0,
    ) -> LoadReport:
        """Send requests on a fixed schedule, immune to coordinated omission.

        Arrivals follow a Poisson process of rate ``arrival_rate`` requests
        per second (or exactly-spaced ticks with ``poisson=False``), drawn
        deterministically from the generator's seed.  Submission never
        waits for responses, and each request's latency runs from its
        *scheduled arrival* to its completion — a stalled service therefore
        pays for every request scheduled during the stall.  Drift injection
        (``drift_history`` / ``observe_every``) matches :meth:`run`.
        """
        if num_requests < 1:
            raise ServingError(f"num_requests must be >= 1, got {num_requests}")
        if arrival_rate <= 0:
            raise ServingError(f"arrival_rate must be > 0, got {arrival_rate}")
        if poisson:
            gaps = self.rng.exponential(1.0 / arrival_rate, size=num_requests)
        else:
            gaps = np.full(num_requests, 1.0 / arrival_rate)
        gaps[0] = 0.0  # first request fires immediately
        schedule = np.cumsum(gaps)

        drift = list(drift_history) if drift_history is not None else []
        drift_cursor = 0
        swaps: list[SwapReport] = []
        done_at: list[Optional[float]] = [None] * num_requests
        # future.result() returning does NOT guarantee its done-callback has
        # run (CPython notifies waiters before invoking callbacks), so the
        # callbacks count themselves down and the main thread waits on the
        # event before reading done_at.
        stamps_pending = num_requests
        stamps_lock = threading.Lock()
        all_stamped = threading.Event()

        def _stamp(completed_future, index):
            nonlocal stamps_pending
            done_at[index] = time.perf_counter()
            with stamps_lock:
                stamps_pending -= 1
                if stamps_pending == 0:
                    all_stamped.set()

        futures = []
        submit_lags = np.zeros(num_requests)
        started = time.perf_counter()
        for index in range(num_requests):
            name = self.names[index % len(self.names)]
            sample = self.feature_pool[int(self.rng.integers(len(self.feature_pool)))]
            # Sleep to the scheduled arrival; if the generator is behind
            # (the OS descheduled it, or drift observation blocked), record
            # the lag and submit immediately — never skip a request.
            wait = schedule[index] - (time.perf_counter() - started)
            if wait > 0:
                time.sleep(wait)
            submit_lags[index] = max(
                0.0, (time.perf_counter() - started) - schedule[index]
            )
            future = self.service.predict_async(name, sample)
            future.add_done_callback(
                lambda completed_future, index=index: _stamp(
                    completed_future, index
                )
            )
            futures.append(future)
            if (
                observe_every
                and (index + 1) % observe_every == 0
                and drift_cursor < len(drift)
            ):
                snapshot = drift[drift_cursor]
                drift_cursor += 1
                for swap_name in self.names:
                    swaps.append(
                        self.service.observe_calibration(swap_name, snapshot)
                    )
        results = [future.result(timeout=timeout) for future in futures]
        duration = time.perf_counter() - started
        if not all_stamped.wait(timeout=max(timeout, 1.0)):
            raise ServingError(
                "open-loop run: completion stamps missing after all results "
                "resolved (done-callbacks never fired)"
            )
        # Latency from *scheduled arrival* (the open-loop convention).
        latencies = np.array(
            [done_at[i] - started - schedule[i] for i in range(num_requests)]
        )
        offered_span = max(float(schedule[-1]), 1e-9)
        return self._report(
            num_requests,
            results,
            latencies,
            duration,
            swaps,
            mode="open",
            arrival_rate=float(arrival_rate),
            offered_rps=num_requests / offered_span,
            submit_lag_p99_ms=float(np.percentile(submit_lags, 99)) * 1e3,
        )

    def _report(
        self,
        num_requests: int,
        results,
        latencies: np.ndarray,
        duration: float,
        swaps: list[SwapReport],
        **extra,
    ) -> LoadReport:
        """Reduce one run's results to a :class:`LoadReport`."""
        per_model: dict[str, int] = {}
        versions: dict[str, set[int]] = {}
        for result in results:
            per_model[result.model] = per_model.get(result.model, 0) + 1
            versions.setdefault(result.model, set()).add(result.version)
        return LoadReport(
            requests=num_requests,
            completed=len(results),
            duration_seconds=duration,
            throughput_rps=len(results) / duration if duration > 0 else 0.0,
            latency_p50_ms=float(np.percentile(latencies, 50)) * 1e3
            if latencies.size
            else None,
            latency_p99_ms=float(np.percentile(latencies, 99)) * 1e3
            if latencies.size
            else None,
            per_model=per_model,
            versions_served={
                name: sorted(served) for name, served in versions.items()
            },
            swaps=[swap.as_dict() for swap in swaps],
            **extra,
        )
