"""Micro-batching scheduler: coalesces predict() calls into batched executes.

Individual ``predict(sample)`` requests are queued and coalesced into
per-model micro-batches under a max-batch / max-latency policy; each flush
stacks the waiting samples and runs **one**
:meth:`~repro.simulator.Backend.execute_batch` call (via
``forward_noisy_batch`` / ``forward_ideal_batch``), so all requests in a
window share the model's compiled program and the vectorised multi-sample
walk.  Served rows are bit-identical to calling the same ``forward_*_batch``
directly on the stacked window — the scheduler only routes rows, it never
re-derives numbers.

Concurrency model: callers enqueue from any thread; a single dispatch
thread owns the backends (the simulation engine is not thread-safe) and
performs every flush, resolving the registry's *current*
:class:`~repro.serving.registry.ModelVersion` once per flush.  That flush
boundary is the hot-swap protocol: a publish lands between flushes, so
in-flight batches complete under the version they resolved and queued
requests pick up the new version — no request is dropped or served a
half-swapped model.

The scheduler also runs un-threaded: tests and benchmarks call
:meth:`MicroBatchScheduler.flush_pending` directly for deterministic
control over coalescing boundaries.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.exceptions import ServingError
from repro.serving.registry import ModelRegistry, ModelVersion
from repro.serving.telemetry import ServingTelemetry
from repro.simulator import (
    DensityMatrixBackend,
    SimulationEngine,
    StatevectorBackend,
)


@dataclass(frozen=True)
class BatchPolicy:
    """Coalescing policy of the scheduler.

    Attributes
    ----------
    max_batch:
        Flush a model's queue as soon as this many requests are waiting.
    max_latency_ms:
        Flush a model's queue once its oldest request has waited this long,
        even if the batch is not full — bounds worst-case queueing latency.
    """

    max_batch: int = 32
    max_latency_ms: float = 5.0

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ServingError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_latency_ms < 0:
            raise ServingError(
                f"max_latency_ms must be >= 0, got {self.max_latency_ms}"
            )


@dataclass(frozen=True)
class PredictionResult:
    """One served prediction plus its serving metadata."""

    logits: np.ndarray
    prediction: int
    model: str
    version: int
    batch_id: int
    batch_size: int
    latency_seconds: float
    sequence: int


@dataclass
class _Request:
    """Internal queue entry for one pending prediction."""

    name: str
    features: np.ndarray
    future: Future
    sequence: int
    enqueued_at: float


class _Stop:
    """Sentinel asking the dispatch loop to exit."""

    def __init__(self, drain: bool):
        self.drain = drain


@dataclass
class SchedulerStats:
    """Cumulative counters of one scheduler instance."""

    submitted: int = 0
    flushes: int = 0
    full_flushes: int = 0
    deadline_flushes: int = 0
    drain_flushes: int = 0
    cancelled: int = 0


class MicroBatchScheduler:
    """Coalesces per-sample requests into batched backend executions."""

    def __init__(
        self,
        registry: ModelRegistry,
        policy: Optional[BatchPolicy] = None,
        telemetry: Optional[ServingTelemetry] = None,
        engine: Optional[SimulationEngine] = None,
    ):
        self.registry = registry
        self.policy = policy or BatchPolicy()
        self.telemetry = telemetry
        self.stats = SchedulerStats()
        # The dispatch thread owns these backends; one engine is shared so
        # noisy and ideal deployments of the same ansatz share fusion plans.
        engine = engine or SimulationEngine()
        self._density_backend = DensityMatrixBackend(engine=engine)
        self._statevector_backend = StatevectorBackend(engine=engine)
        self.engine = engine
        self._queue: queue.Queue = queue.Queue()
        self._pending: dict[str, list[_Request]] = {}
        self._sequence = itertools.count()
        self._batch_ids = itertools.count()
        self._thread: Optional[threading.Thread] = None
        self._closed = False
        # Serialises the closed-check-then-enqueue in submit() against
        # stop() flipping the flag, so no request can slip into the queue
        # after the drain/cancel sweep has run.
        self._close_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def submit(self, name: str, sample: np.ndarray) -> Future:
        """Enqueue one prediction request; resolves to a :class:`PredictionResult`.

        ``sample`` is a single feature vector.  The model name is validated
        eagerly so an unknown endpoint fails at the call site, not inside
        the dispatch thread.
        """
        self.registry.get(name)  # fail fast on unknown names
        features = np.asarray(sample, dtype=float)
        if features.ndim != 1:
            raise ServingError(
                f"submit expects one feature vector, got shape {features.shape}"
            )
        request = _Request(
            name=name,
            features=features,
            future=Future(),
            sequence=next(self._sequence),
            enqueued_at=time.monotonic(),
        )
        with self._close_lock:
            if self._closed:
                raise ServingError("scheduler is stopped; no new requests accepted")
            self.stats.submitted += 1
            self._queue.put(request)
        if self.telemetry is not None:
            self.telemetry.record_submit(name)
        return request.future

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def is_running(self) -> bool:
        """Whether the background dispatch thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "MicroBatchScheduler":
        """Start the background dispatch thread (idempotent).

        A stopped scheduler cannot be restarted — its queue may hold a
        shutdown sentinel and submit() permanently refuses requests, so a
        "restarted" instance would look alive while serving nothing.
        """
        if self._closed:
            raise ServingError(
                "scheduler was stopped and cannot restart; create a new one"
            )
        if not self.is_running:
            self._thread = threading.Thread(
                target=self._loop, name="serving-dispatch", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop accepting requests and shut the dispatch loop down.

        ``drain=True`` (graceful) serves everything already queued before
        exiting; ``drain=False`` cancels queued requests (their futures
        receive ``CancelledError``) while still letting an in-flight flush
        complete — the KeyboardInterrupt path of the serve loop.
        """
        with self._close_lock:
            # Once the flag is set under the lock, no submit() can enqueue
            # past the sentinel: every accepted request is drained/cancelled.
            self._closed = True
        if self._thread is not None and self._thread.is_alive():
            self._queue.put(_Stop(drain))
            self._thread.join()
            self._thread = None
            return
        # Un-threaded use: apply the same semantics synchronously.
        self._ingest()
        if drain:
            self.flush_pending(force=True)
        else:
            self._cancel_pending()

    def __enter__(self) -> "MicroBatchScheduler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(drain=exc_type is None)

    # ------------------------------------------------------------------
    # Dispatch internals (single-threaded)
    # ------------------------------------------------------------------
    def _ingest(self) -> None:
        """Move every queued request into the per-model pending lists."""
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if isinstance(item, _Stop):
                # Re-queue so the loop's blocking get still sees it.
                self._queue.put(item)
                return
            self._pending.setdefault(item.name, []).append(item)

    def _oldest_deadline(self) -> Optional[float]:
        """Monotonic deadline of the oldest pending request, if any."""
        heads = [
            group[0].enqueued_at for group in self._pending.values() if group
        ]
        if not heads:
            return None
        return min(heads) + self.policy.max_latency_ms / 1e3

    def _ready_groups(self, now: float, force: bool) -> list[str]:
        """Model names due for a flush, oldest head request first (fairness)."""
        ready = []
        for name, group in self._pending.items():
            if not group:
                continue
            full = len(group) >= self.policy.max_batch
            expired = now - group[0].enqueued_at >= self.policy.max_latency_ms / 1e3
            if force or full or expired:
                ready.append(name)
        return sorted(ready, key=lambda name: self._pending[name][0].sequence)

    def flush_pending(self, force: bool = False) -> int:
        """Flush every due micro-batch; returns the number of batches run.

        With ``force=True`` everything pending is flushed regardless of the
        policy.  Un-threaded callers (tests, benchmarks) use this for
        deterministic control of coalescing boundaries; the dispatch thread
        calls it with ``force=False`` on every wake-up.
        """
        self._ingest()
        flushed = 0
        while True:
            now = time.monotonic()
            ready = self._ready_groups(now, force)
            if not ready:
                return flushed
            for name in ready:
                self._flush_one(name, force=force)
                flushed += 1

    def _flush_one(self, name: str, force: bool = False) -> None:
        """Serve up to ``max_batch`` oldest requests of one model."""
        group = self._pending.get(name)
        if not group:
            return
        batch = group[: self.policy.max_batch]
        del group[: len(batch)]
        if not group:
            del self._pending[name]
        if len(batch) >= self.policy.max_batch:
            self.stats.full_flushes += 1
        elif force:
            self.stats.drain_flushes += 1
        else:
            self.stats.deadline_flushes += 1
        self.stats.flushes += 1
        batch_id = next(self._batch_ids)

        # Hot-swap boundary: the current version is resolved exactly once
        # per flush, so every row of a batch is served by one immutable
        # ModelVersion even if a publish lands mid-execution.
        version = self.registry.get(name)
        try:
            logits = self._execute(version, np.stack([r.features for r in batch]))
        except Exception as error:  # pragma: no cover - defensive fan-out
            for request in batch:
                if not request.future.cancelled():
                    request.future.set_exception(error)
            if self.telemetry is not None:
                self.telemetry.record_batch(
                    name, version.version, len(batch), [], failed=True
                )
            return
        now = time.monotonic()
        latencies = []
        for row, request in enumerate(batch):
            latency = now - request.enqueued_at
            latencies.append(latency)
            result = PredictionResult(
                logits=logits[row],
                prediction=int(np.argmax(logits[row])),
                model=name,
                version=version.version,
                batch_id=batch_id,
                batch_size=len(batch),
                latency_seconds=latency,
                sequence=request.sequence,
            )
            if not request.future.cancelled():
                request.future.set_result(result)
        if self.telemetry is not None:
            self.telemetry.record_batch(name, version.version, len(batch), latencies)

    def _execute(self, version: ModelVersion, features: np.ndarray) -> np.ndarray:
        """One batched backend execution for a stacked request window.

        Exactly the computation of ``forward_noisy_batch(features,
        [noise_model])[0]`` (or the ideal equivalent), so a served window is
        bit-identical to the direct batched call.
        """
        model = version.model
        if version.noise_model is not None:
            stack = model.forward_noisy_batch(
                features,
                [version.noise_model],
                backend=self._density_backend,
            )
        else:
            stack = model.forward_ideal_batch(
                features, [None], backend=self._statevector_backend
            )
        return stack[0]

    def _cancel_pending(self) -> None:
        """Cancel every pending request (non-draining shutdown)."""
        for name, group in list(self._pending.items()):
            for request in group:
                if request.future.cancel():
                    self.stats.cancelled += 1
                    if self.telemetry is not None:
                        self.telemetry.record_cancelled(name)
        self._pending.clear()

    def _loop(self) -> None:
        """Dispatch-thread body: wait, ingest, flush due batches."""
        while True:
            deadline = self._oldest_deadline()
            timeout = None
            if deadline is not None:
                timeout = max(deadline - time.monotonic(), 0.0)
            try:
                item = self._queue.get(timeout=timeout)
            except queue.Empty:
                item = None
            if isinstance(item, _Stop):
                self._ingest()
                # Drop the re-queued sentinel if _ingest saw it first.
                while not self._queue.empty():
                    extra = self._queue.get_nowait()
                    if not isinstance(extra, _Stop):
                        self._pending.setdefault(extra.name, []).append(extra)
                if item.drain:
                    self.flush_pending(force=True)
                else:
                    self._cancel_pending()
                return
            if item is not None:
                self._pending.setdefault(item.name, []).append(item)
            self.flush_pending(force=False)
