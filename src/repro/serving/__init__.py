"""Online inference serving: the production face of the reproduction.

Where :mod:`repro.experiments` replays the paper as offline harnesses, this
package *serves* it: deployed :class:`~repro.qnn.model.QNNModel` versions
(:class:`ModelRegistry`), individual predict requests coalesced into
batched backend executions (:class:`MicroBatchScheduler`), drift-triggered
hot-swap adaptation (:class:`CalibrationWatcher`), and per-model telemetry
(:class:`ServingTelemetry`) — composed by :class:`InferenceService` and
driven end-to-end by :class:`LoadGenerator` /
``python -m repro.experiments serve``.
"""

from repro.serving.registry import ModelRegistry, ModelVersion, deployment_key
from repro.serving.scheduler import (
    BatchPolicy,
    MicroBatchScheduler,
    PredictionResult,
    SchedulerStats,
)
from repro.serving.service import InferenceService
from repro.serving.telemetry import LATENCY_WINDOW, ServingTelemetry
from repro.serving.watcher import Adapter, CalibrationWatcher, SwapReport
from repro.serving.loadgen import LoadGenerator, LoadReport

__all__ = [
    "ModelRegistry",
    "ModelVersion",
    "deployment_key",
    "BatchPolicy",
    "MicroBatchScheduler",
    "PredictionResult",
    "SchedulerStats",
    "InferenceService",
    "ServingTelemetry",
    "LATENCY_WINDOW",
    "CalibrationWatcher",
    "SwapReport",
    "Adapter",
    "LoadGenerator",
    "LoadReport",
]
