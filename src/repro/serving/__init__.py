"""Online inference serving: the production face of the reproduction.

Where :mod:`repro.experiments` replays the paper as offline harnesses, this
package *serves* it: deployed :class:`~repro.qnn.model.QNNModel` versions
(:class:`ModelRegistry`), individual predict requests coalesced into
batched backend executions (:class:`MicroBatchScheduler`), drift-triggered
hot-swap adaptation (:class:`CalibrationWatcher`), and per-model telemetry
(:class:`ServingTelemetry`) — composed by :class:`InferenceService` and
driven end-to-end by :class:`LoadGenerator` /
``python -m repro.experiments serve``.

:class:`ShardedInferenceService` scales the same API across processes:
model names are pinned to shard workers by consistent hashing
(:class:`ConsistentHashRouter`), each shard runs a full single-process
stack, and a :class:`ShardSupervisor` restarts dead shards and replays
their state so a crash never loses a request —
``python -m repro.experiments serve --shards 4``.
"""

from repro.serving.registry import ModelRegistry, ModelVersion, deployment_key
from repro.serving.routing import DEFAULT_REPLICAS, ConsistentHashRouter, ring_point
from repro.serving.scheduler import (
    BatchPolicy,
    MicroBatchScheduler,
    PredictionResult,
    SchedulerStats,
)
from repro.serving.service import InferenceService, ShardedInferenceService
from repro.serving.shards import (
    INLINE_WINDOW_BYTES,
    ShardSupervisor,
    SupervisorStats,
)
from repro.serving.telemetry import (
    LATENCY_WINDOW,
    ServingTelemetry,
    merge_shard_snapshots,
)
from repro.serving.watcher import Adapter, CalibrationWatcher, SwapReport
from repro.serving.loadgen import LoadGenerator, LoadReport

__all__ = [
    "ModelRegistry",
    "ModelVersion",
    "deployment_key",
    "BatchPolicy",
    "MicroBatchScheduler",
    "PredictionResult",
    "SchedulerStats",
    "InferenceService",
    "ShardedInferenceService",
    "ConsistentHashRouter",
    "DEFAULT_REPLICAS",
    "ring_point",
    "ShardSupervisor",
    "SupervisorStats",
    "INLINE_WINDOW_BYTES",
    "ServingTelemetry",
    "LATENCY_WINDOW",
    "merge_shard_snapshots",
    "CalibrationWatcher",
    "SwapReport",
    "Adapter",
    "LoadGenerator",
    "LoadReport",
]
