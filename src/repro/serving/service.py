"""The online inference service: registry + scheduler + watchers + telemetry.

:class:`InferenceService` is the front door that composes the serving
subsystem into one object with a small API:

* :meth:`deploy` publishes a model under a name (binding it to a device
  when a calibration snapshot is supplied);
* :meth:`predict` / :meth:`predict_async` / :meth:`predict_many` serve
  individual samples through the micro-batching scheduler;
* :meth:`observe_calibration` feeds drift snapshots to the per-model
  :class:`~repro.serving.watcher.CalibrationWatcher`, hot-swapping the
  deployment when the drift crosses the adaptation boundary;
* :meth:`stats` snapshots telemetry plus every cache layer the request
  path rides on (engine program cache, compilation pipeline artifacts).

The service is a context manager: entering starts the dispatch thread,
a clean exit drains queued work, and an exceptional exit (including
``KeyboardInterrupt``) cancels queued requests while letting in-flight
batches complete — no worker is orphaned and no future is left unresolved.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.exceptions import ServingError
from repro.serving.registry import ModelRegistry, ModelVersion
from repro.serving.scheduler import (
    BatchPolicy,
    MicroBatchScheduler,
    PredictionResult,
)
from repro.serving.telemetry import ServingTelemetry
from repro.serving.watcher import Adapter, CalibrationWatcher, SwapReport
from repro.simulator import NoiseModel
from repro.transpiler import Target
from repro.transpiler.pipeline import PassManager, default_pass_manager


class InferenceService:
    """Calibration-aware model serving with micro-batching and hot-swap."""

    def __init__(
        self,
        policy: Optional[BatchPolicy] = None,
        registry: Optional[ModelRegistry] = None,
        pass_manager: Optional[PassManager] = None,
        telemetry: Optional[ServingTelemetry] = None,
    ):
        self.registry = registry or ModelRegistry()
        self.telemetry = telemetry or ServingTelemetry()
        self.pass_manager = pass_manager or default_pass_manager()
        self.scheduler = MicroBatchScheduler(
            self.registry, policy=policy, telemetry=self.telemetry
        )
        self._watchers: dict[str, CalibrationWatcher] = {}
        self._adapters: dict[str, Optional[Adapter]] = {}

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------
    def deploy(
        self,
        name: str,
        model,
        calibration=None,
        noise_model: Optional[NoiseModel] = None,
        adapter: Optional[Adapter] = None,
    ) -> ModelVersion:
        """Publish ``model`` as the current deployment of ``name``.

        With a ``calibration`` snapshot the model is (re)bound to its device
        through the staged pipeline and served under the derived noise
        model; with an explicit ``noise_model`` the existing binding is kept;
        with neither the model serves the ideal (noise-free) path.
        ``adapter`` (optional) maps future drift snapshots to re-adapted
        parameter vectors for the calibration watcher.
        """
        if calibration is not None:
            if noise_model is not None:
                raise ServingError(
                    "pass calibration or noise_model, not both; the calibration "
                    "path derives its own noise model"
                )
            if model.transpiled is None:
                raise ServingError(
                    f"cannot deploy {name!r} with a calibration snapshot: the "
                    "model has no device binding to recompile"
                )
            if model.transpiled.target is not None:
                target = model.transpiled.target.with_calibration(calibration)
            else:
                target = Target(
                    coupling=model.transpiled.coupling, calibration=calibration
                )
            transpiled = self.pass_manager.compile(model.ansatz, target)
            model = model.with_binding(transpiled)
            noise_model = NoiseModel.from_calibration(calibration)
        version = self.registry.publish(
            name,
            model,
            noise_model=noise_model,
            calibration_date=getattr(calibration, "date", None),
        )
        self._adapters[name] = adapter
        self._watchers.pop(name, None)  # rebuild lazily against the new deploy
        return version

    def _watcher(self, name: str) -> CalibrationWatcher:
        watcher = self._watchers.get(name)
        if watcher is None:
            watcher = CalibrationWatcher(
                self.registry,
                name,
                pass_manager=self.pass_manager,
                adapter=self._adapters.get(name),
                telemetry=self.telemetry,
            )
            self._watchers[name] = watcher
        return watcher

    def observe_calibration(self, name: str, snapshot) -> SwapReport:
        """Feed one drift snapshot to ``name``'s watcher (may hot-swap)."""
        return self._watcher(name).observe(snapshot)

    def rollback(self, name: str) -> ModelVersion:
        """Atomically restore ``name``'s previous version."""
        return self.registry.rollback(name)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def predict_async(self, name: str, sample: np.ndarray):
        """Submit one sample; returns a future of :class:`PredictionResult`.

        Fails fast when the dispatch thread is not running — otherwise the
        request would sit unserved until the caller's timeout expires.
        """
        if not self.scheduler.is_running:
            raise ServingError(
                "service is not started; use 'with service:' or service.start()"
            )
        return self.scheduler.submit(name, sample)

    def predict(
        self, name: str, sample: np.ndarray, timeout: Optional[float] = 60.0
    ) -> PredictionResult:
        """Serve one sample synchronously (micro-batched under the hood)."""
        return self.predict_async(name, sample).result(timeout=timeout)

    def predict_many(
        self,
        name: str,
        samples: Sequence[np.ndarray],
        timeout: Optional[float] = 60.0,
    ) -> list[PredictionResult]:
        """Serve a burst of samples; each is an independent request."""
        futures = [self.predict_async(name, sample) for sample in samples]
        return [future.result(timeout=timeout) for future in futures]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "InferenceService":
        """Start the dispatch thread (idempotent)."""
        self.scheduler.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Shut down; drain queued work (default) or cancel it."""
        self.scheduler.stop(drain=drain)

    def __enter__(self) -> "InferenceService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(drain=exc_type is None)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """JSON-ready snapshot: telemetry, scheduler, and cache layers."""
        engine = self.scheduler.engine
        return {
            "telemetry": self.telemetry.as_dict(),
            "scheduler": {
                "submitted": self.scheduler.stats.submitted,
                "flushes": self.scheduler.stats.flushes,
                "full_flushes": self.scheduler.stats.full_flushes,
                "deadline_flushes": self.scheduler.stats.deadline_flushes,
                "drain_flushes": self.scheduler.stats.drain_flushes,
                "cancelled": self.scheduler.stats.cancelled,
            },
            # The ideal path rides the fused-program cache; the noisy walk
            # rides the bound-circuit cache.  Both are the "shared compiled
            # program" a model+calibration window reuses across flushes.
            "engine_cache": {
                "program_hits": engine.stats.program_hits,
                "program_builds": engine.stats.program_builds,
                "program_hit_rate": engine.stats.program_hit_rate,
                "bound_hits": engine.stats.bound_hits,
                "bound_builds": engine.stats.bound_builds,
                "bound_hit_rate": (
                    engine.stats.bound_hits
                    / (engine.stats.bound_hits + engine.stats.bound_builds)
                    if (engine.stats.bound_hits + engine.stats.bound_builds)
                    else 0.0
                ),
            },
            "compiler": self.pass_manager.stats.as_dict(),
            "deployments": {
                name: {
                    "current_version": self.registry.get(name).version,
                    # Version numbers are monotonic, so the newest retained
                    # number counts every publish even after pruning.
                    "versions_published": self.registry.history(name)[-1].version,
                    "versions_retained": len(self.registry.history(name)),
                    "compilation_digest": self.registry.get(name).compilation_digest,
                }
                for name in self.registry.names()
            },
        }
