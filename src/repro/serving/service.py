"""The online inference service: registry + scheduler + watchers + telemetry.

:class:`InferenceService` is the front door that composes the serving
subsystem into one object with a small API:

* :meth:`deploy` publishes a model under a name (binding it to a device
  when a calibration snapshot is supplied);
* :meth:`predict` / :meth:`predict_async` / :meth:`predict_many` serve
  individual samples through the micro-batching scheduler;
* :meth:`observe_calibration` feeds drift snapshots to the per-model
  :class:`~repro.serving.watcher.CalibrationWatcher`, hot-swapping the
  deployment when the drift crosses the adaptation boundary;
* :meth:`stats` snapshots telemetry plus every cache layer the request
  path rides on (engine program cache, compilation pipeline artifacts).

The service is a context manager: entering starts the dispatch thread,
a clean exit drains queued work, and an exceptional exit (including
``KeyboardInterrupt``) cancels queued requests while letting in-flight
batches complete — no worker is orphaned and no future is left unresolved.

:class:`ShardedInferenceService` is the multi-process tier on top: the same
client API, but requests are routed by consistent hashing on the model name
(:class:`~repro.serving.routing.ConsistentHashRouter`) to N shard processes
(:mod:`repro.serving.shards`), each running its own complete
``InferenceService`` stack.  The front door is an asyncio event loop on a
dedicated thread: submissions land on the loop, coalesce per model under
the batch policy, ship to the owning shard as one window message, and
resolve without ever blocking the loop — so N shards execute N windows
truly in parallel while the front door stays single-threaded and lock-light.
"""

from __future__ import annotations

import asyncio
import itertools
import pickle
import threading
import time
from concurrent.futures import Future
from typing import Optional, Sequence

import numpy as np

from repro.exceptions import ServingError
from repro.serving.registry import ModelRegistry, ModelVersion
from repro.serving.routing import DEFAULT_REPLICAS, ConsistentHashRouter
from repro.serving.scheduler import (
    BatchPolicy,
    MicroBatchScheduler,
    PredictionResult,
)
from repro.serving.shards import (
    INLINE_WINDOW_BYTES,
    ShardSupervisor,
    model_payload_digest,
)
from repro.serving.telemetry import ServingTelemetry, merge_shard_snapshots
from repro.serving.watcher import Adapter, CalibrationWatcher, SwapReport
from repro.simulator import NoiseModel
from repro.transpiler import Target
from repro.transpiler.pipeline import PassManager, default_pass_manager


class InferenceService:
    """Calibration-aware model serving with micro-batching and hot-swap."""

    def __init__(
        self,
        policy: Optional[BatchPolicy] = None,
        registry: Optional[ModelRegistry] = None,
        pass_manager: Optional[PassManager] = None,
        telemetry: Optional[ServingTelemetry] = None,
    ):
        self.registry = registry or ModelRegistry()
        self.telemetry = telemetry or ServingTelemetry()
        self.pass_manager = pass_manager or default_pass_manager()
        self.scheduler = MicroBatchScheduler(
            self.registry, policy=policy, telemetry=self.telemetry
        )
        self._watchers: dict[str, CalibrationWatcher] = {}
        self._adapters: dict[str, Optional[Adapter]] = {}

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------
    def deploy(
        self,
        name: str,
        model,
        calibration=None,
        noise_model: Optional[NoiseModel] = None,
        adapter: Optional[Adapter] = None,
    ) -> ModelVersion:
        """Publish ``model`` as the current deployment of ``name``.

        With a ``calibration`` snapshot the model is (re)bound to its device
        through the staged pipeline and served under the derived noise
        model; with an explicit ``noise_model`` the existing binding is kept;
        with neither the model serves the ideal (noise-free) path.
        ``adapter`` (optional) maps future drift snapshots to re-adapted
        parameter vectors for the calibration watcher.
        """
        if calibration is not None:
            if noise_model is not None:
                raise ServingError(
                    "pass calibration or noise_model, not both; the calibration "
                    "path derives its own noise model"
                )
            if model.transpiled is None:
                raise ServingError(
                    f"cannot deploy {name!r} with a calibration snapshot: the "
                    "model has no device binding to recompile"
                )
            if model.transpiled.target is not None:
                target = model.transpiled.target.with_calibration(calibration)
            else:
                target = Target(
                    coupling=model.transpiled.coupling, calibration=calibration
                )
            transpiled = self.pass_manager.compile(model.ansatz, target)
            model = model.with_binding(transpiled)
            noise_model = NoiseModel.from_calibration(calibration)
        version = self.registry.publish(
            name,
            model,
            noise_model=noise_model,
            calibration_date=getattr(calibration, "date", None),
        )
        self._adapters[name] = adapter
        self._watchers.pop(name, None)  # rebuild lazily against the new deploy
        return version

    def _watcher(self, name: str) -> CalibrationWatcher:
        watcher = self._watchers.get(name)
        if watcher is None:
            watcher = CalibrationWatcher(
                self.registry,
                name,
                pass_manager=self.pass_manager,
                adapter=self._adapters.get(name),
                telemetry=self.telemetry,
            )
            self._watchers[name] = watcher
        return watcher

    def observe_calibration(self, name: str, snapshot) -> SwapReport:
        """Feed one drift snapshot to ``name``'s watcher (may hot-swap)."""
        return self._watcher(name).observe(snapshot)

    def rollback(self, name: str) -> ModelVersion:
        """Atomically restore ``name``'s previous version."""
        return self.registry.rollback(name)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def predict_async(self, name: str, sample: np.ndarray):
        """Submit one sample; returns a future of :class:`PredictionResult`.

        Fails fast when the dispatch thread is not running — otherwise the
        request would sit unserved until the caller's timeout expires.
        """
        if not self.scheduler.is_running:
            raise ServingError(
                "service is not started; use 'with service:' or service.start()"
            )
        return self.scheduler.submit(name, sample)

    def predict(
        self, name: str, sample: np.ndarray, timeout: Optional[float] = 60.0
    ) -> PredictionResult:
        """Serve one sample synchronously (micro-batched under the hood)."""
        return self.predict_async(name, sample).result(timeout=timeout)

    def predict_many(
        self,
        name: str,
        samples: Sequence[np.ndarray],
        timeout: Optional[float] = 60.0,
    ) -> list[PredictionResult]:
        """Serve a burst of samples; each is an independent request."""
        futures = [self.predict_async(name, sample) for sample in samples]
        return [future.result(timeout=timeout) for future in futures]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "InferenceService":
        """Start the dispatch thread (idempotent)."""
        self.scheduler.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Shut down; drain queued work (default) or cancel it."""
        self.scheduler.stop(drain=drain)

    def __enter__(self) -> "InferenceService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(drain=exc_type is None)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """JSON-ready snapshot: telemetry, scheduler, and cache layers.

        The telemetry block passes through the typed
        :class:`~repro.protocol.TelemetrySnapshot` model, so the single-
        process and sharded services emit the same validated shape.
        """
        engine = self.scheduler.engine
        return {
            "telemetry": self.telemetry.snapshot().to_canonical_dict(),
            "scheduler": {
                "submitted": self.scheduler.stats.submitted,
                "flushes": self.scheduler.stats.flushes,
                "full_flushes": self.scheduler.stats.full_flushes,
                "deadline_flushes": self.scheduler.stats.deadline_flushes,
                "drain_flushes": self.scheduler.stats.drain_flushes,
                "cancelled": self.scheduler.stats.cancelled,
            },
            # The ideal path rides the fused-program cache; the noisy walk
            # rides the bound-circuit cache.  Both are the "shared compiled
            # program" a model+calibration window reuses across flushes.
            "engine_cache": {
                "program_hits": engine.stats.program_hits,
                "program_builds": engine.stats.program_builds,
                "program_hit_rate": engine.stats.program_hit_rate,
                "bound_hits": engine.stats.bound_hits,
                "bound_builds": engine.stats.bound_builds,
                "bound_hit_rate": (
                    engine.stats.bound_hits
                    / (engine.stats.bound_hits + engine.stats.bound_builds)
                    if (engine.stats.bound_hits + engine.stats.bound_builds)
                    else 0.0
                ),
            },
            "compiler": self.pass_manager.stats.as_dict(),
            "deployments": {
                name: {
                    "current_version": self.registry.get(name).version,
                    # Version numbers are monotonic, so the newest retained
                    # number counts every publish even after pruning.
                    "versions_published": self.registry.history(name)[-1].version,
                    "versions_retained": len(self.registry.history(name)),
                    "compilation_digest": self.registry.get(name).compilation_digest,
                }
                for name in self.registry.names()
            },
        }


class _FrontRequest:
    """One client request waiting at the sharded front door."""

    __slots__ = ("name", "features", "future", "sequence", "enqueued_at")

    def __init__(self, name: str, features: np.ndarray, sequence: int):
        self.name = name
        self.features = features
        self.future: Future = Future()
        self.sequence = sequence
        self.enqueued_at = time.monotonic()


class ShardedInferenceService:
    """Multi-process serving: consistent-hash routing over shard workers.

    The client surface mirrors :class:`InferenceService` — ``deploy`` /
    ``predict`` / ``predict_async`` / ``predict_many`` /
    ``observe_calibration`` / ``stats`` — so load generators and harnesses
    drive either tier unchanged.  Internally every model name is pinned to
    one shard process; the front-door event loop coalesces submissions per
    model under the batch policy and ships each window as a single message,
    which the shard serves as exactly one scheduler flush (one registry
    resolution, one batched backend call).  Shard death is handled by the
    :class:`~repro.serving.shards.ShardSupervisor` restart protocol and is
    invisible to callers beyond latency.

    ``predict_aio`` exposes the same request as an awaitable for callers
    that already live on an asyncio loop.
    """

    def __init__(
        self,
        num_shards: int = 4,
        policy: Optional[BatchPolicy] = None,
        replicas: int = DEFAULT_REPLICAS,
        poll_seconds: float = 0.2,
    ):
        if num_shards < 1:
            raise ServingError(f"num_shards must be >= 1, got {num_shards}")
        self.policy = policy or BatchPolicy()
        self.router = ConsistentHashRouter(range(num_shards), replicas=replicas)
        self.supervisor = ShardSupervisor(
            num_shards,
            policy={
                "max_batch": self.policy.max_batch,
                "max_latency_ms": self.policy.max_latency_ms,
            },
            poll_seconds=poll_seconds,
        )
        self.num_shards = num_shards
        self._deployments: dict[str, dict] = {}
        # id(model) -> (model, pickled bytes, digest).  The model object is
        # retained in the tuple so its id stays pinned for the cache's
        # lifetime — otherwise CPython could reuse a freed model's id for a
        # different model and deploy() would ship the wrong bytes.
        self._model_bytes: dict[int, tuple[object, bytes, str]] = {}
        self._sequence = itertools.count()
        self._groups: dict[str, list[_FrontRequest]] = {}
        self._timers: dict[str, object] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._loop_thread: Optional[threading.Thread] = None
        self._closed = False
        self._close_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------
    def route(self, name: str) -> int:
        """The shard id that owns ``name`` (stable across restarts)."""
        return self.router.route(name)

    def deploy(
        self,
        name: str,
        model,
        calibration=None,
        noise_model: Optional[NoiseModel] = None,
        adapter: Optional[Adapter] = None,
    ) -> dict:
        """Publish ``model`` under ``name`` on its consistent-hash shard.

        Semantics match :meth:`InferenceService.deploy` — the shard performs
        the calibration-aware recompilation itself (deterministically, so a
        restarted shard reconverges to the same artifacts).  The pickled
        model crosses the process boundary once per content digest per
        shard; repeat deploys ship only the digest.  Returns the shard's
        deploy report (name, version, compilation digest, shard id).
        """
        self.supervisor.start()
        cached = self._model_bytes.get(id(model))
        if cached is None or cached[0] is not model:
            model_bytes = pickle.dumps(model, protocol=pickle.HIGHEST_PROTOCOL)
            cached = (model, model_bytes, model_payload_digest(model_bytes))
            self._model_bytes[id(model)] = cached
        _, model_bytes, digest = cached
        shard_id = self.route(name)
        payload = {
            "op": "deploy",
            "name": name,
            "model_digest": digest,
            "model_bytes": model_bytes,
            "calibration": calibration,
            "noise_model": noise_model,
            "adapter": adapter,
        }
        report = self.supervisor.submit(shard_id, payload).result(timeout=120.0)
        self._deployments[name] = report
        return report

    def observe_calibration(self, name: str, snapshot) -> SwapReport:
        """Feed one drift snapshot to ``name``'s shard-local watcher."""
        self._require_deployed(name)
        return self.supervisor.submit(
            self.route(name), {"op": "observe", "name": name, "snapshot": snapshot}
        ).result(timeout=120.0)

    def rollback(self, name: str) -> int:
        """Atomically restore ``name``'s previous version on its shard."""
        self._require_deployed(name)
        return self.supervisor.submit(
            self.route(name), {"op": "rollback", "name": name}
        ).result(timeout=120.0)

    def _require_deployed(self, name: str) -> None:
        if name not in self._deployments:
            raise ServingError(
                f"no model published under {name!r}; "
                f"known names: {sorted(self._deployments)}"
            )

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def predict_async(self, name: str, sample: np.ndarray) -> Future:
        """Submit one sample; returns a future of :class:`PredictionResult`."""
        self._require_deployed(name)
        if not self.is_running:
            raise ServingError(
                "service is not started; use 'with service:' or service.start()"
            )
        features = np.asarray(sample, dtype=float)
        if features.ndim != 1:
            raise ServingError(
                f"submit expects one feature vector, got shape {features.shape}"
            )
        with self._close_lock:
            if self._closed:
                raise ServingError("service is stopped; no new requests accepted")
            request = _FrontRequest(name, features, next(self._sequence))
            self._loop.call_soon_threadsafe(self._enqueue, request)
        return request.future

    async def predict_aio(self, name: str, sample: np.ndarray) -> PredictionResult:
        """Awaitable predict for callers already on an asyncio loop."""
        return await asyncio.wrap_future(self.predict_async(name, sample))

    def predict(
        self, name: str, sample: np.ndarray, timeout: Optional[float] = 60.0
    ) -> PredictionResult:
        """Serve one sample synchronously (coalesced under the hood)."""
        return self.predict_async(name, sample).result(timeout=timeout)

    def predict_many(
        self,
        name: str,
        samples: Sequence[np.ndarray],
        timeout: Optional[float] = 60.0,
    ) -> list[PredictionResult]:
        """Serve a burst of samples; each is an independent request."""
        futures = [self.predict_async(name, sample) for sample in samples]
        return [future.result(timeout=timeout) for future in futures]

    # ------------------------------------------------------------------
    # Front-door event loop (coalescing reactor)
    # ------------------------------------------------------------------
    def _enqueue(self, request: _FrontRequest) -> None:
        """Loop-thread: buffer one request; flush when the policy says so."""
        group = self._groups.setdefault(request.name, [])
        group.append(request)
        if len(group) >= self.policy.max_batch:
            self._flush_group(request.name)
        elif len(group) == 1:
            self._timers[request.name] = self._loop.call_later(
                self.policy.max_latency_ms / 1e3, self._flush_group, request.name
            )

    def _flush_group(self, name: str) -> None:
        """Loop-thread: ship one model's waiting requests as one window."""
        timer = self._timers.pop(name, None)
        if timer is not None:
            timer.cancel()
        group = self._groups.pop(name, None)
        if not group:
            return
        try:
            # np.stack raises on mixed-length feature vectors for one name;
            # fail the whole group instead of leaving its futures unresolved
            # (the event-loop callback would otherwise swallow the error).
            window = np.stack([request.features for request in group])
            if window.nbytes >= INLINE_WINDOW_BYTES:
                features = self.supervisor.share_window(window)
            else:
                features = window
        except Exception as error:
            for request in group:
                if not request.future.cancelled():
                    request.future.set_exception(error)
            return
        payload = {"op": "predict", "name": name, "features": features}
        try:
            batch_future = self.supervisor.submit(self.route(name), payload)
        except Exception as error:
            if isinstance(features, dict):
                self.supervisor.release_window(features)
            for request in group:
                if not request.future.cancelled():
                    request.future.set_exception(error)
            return
        batch_future.add_done_callback(
            lambda future, group=group, name=name: self._on_window_done(
                name, group, future
            )
        )

    def _on_window_done(self, name: str, group: list, batch_future: Future) -> None:
        """Collector-thread: fan one window reply out to request futures."""
        now = time.monotonic()
        if batch_future.cancelled():
            for request in group:
                request.future.cancel()
            return
        error = batch_future.exception()
        if error is not None:
            for request in group:
                if not request.future.cancelled():
                    request.future.set_exception(error)
            return
        reply = batch_future.result()
        logits = reply["logits"]
        predictions = reply["predictions"]
        for row, request in enumerate(group):
            result = PredictionResult(
                logits=logits[row],
                prediction=int(predictions[row]),
                model=name,
                version=reply["versions"][row],
                batch_id=reply["batch_ids"][row],
                batch_size=reply["batch_sizes"][row],
                latency_seconds=now - request.enqueued_at,
                sequence=request.sequence,
            )
            if not request.future.cancelled():
                request.future.set_result(result)

    def _flush_all(self) -> None:
        """Loop-thread: force-flush every buffered group (drain path)."""
        for name in list(self._groups):
            self._flush_group(name)

    def _cancel_buffered(self) -> None:
        """Loop-thread: cancel every buffered request (non-drain shutdown)."""
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()
        for group in self._groups.values():
            for request in group:
                request.future.cancel()
        self._groups.clear()

    def _run_on_loop(self, callback) -> None:
        """Run ``callback`` on the loop thread and wait for it."""
        done: Future = Future()

        def runner():
            try:
                callback()
                done.set_result(None)
            except BaseException as error:  # pragma: no cover - defensive
                done.set_exception(error)

        self._loop.call_soon_threadsafe(runner)
        done.result(timeout=30.0)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def is_running(self) -> bool:
        """Whether the front-door event loop is serving."""
        return (
            self._loop_thread is not None
            and self._loop_thread.is_alive()
            and not self._closed
        )

    def start(self) -> "ShardedInferenceService":
        """Spawn the shards and the front-door event loop (idempotent)."""
        if self._closed:
            raise ServingError(
                "service was stopped and cannot restart; create a new one"
            )
        self.supervisor.start()
        if self._loop_thread is None or not self._loop_thread.is_alive():
            self._loop = asyncio.new_event_loop()
            started = threading.Event()

            def run():
                asyncio.set_event_loop(self._loop)
                self._loop.call_soon(started.set)
                self._loop.run_forever()

            self._loop_thread = threading.Thread(
                target=run, name="serving-front-door", daemon=True
            )
            self._loop_thread.start()
            started.wait(timeout=10.0)
        return self

    def stop(self, drain: bool = True) -> None:
        """Shut down; drain buffered + in-flight work (default) or cancel it."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        if self._loop_thread is not None and self._loop_thread.is_alive():
            if drain:
                self._run_on_loop(self._flush_all)
                self.supervisor.drain()
            else:
                self._run_on_loop(self._cancel_buffered)
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._loop_thread.join(timeout=10.0)
            self._loop.close()
            self._loop_thread = None
        self.supervisor.close(drain=drain)

    def __enter__(self) -> "ShardedInferenceService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(drain=exc_type is None)

    # ------------------------------------------------------------------
    # Ops hooks + introspection
    # ------------------------------------------------------------------
    def kill_shard(self, shard_id: int) -> Optional[int]:
        """Hard-kill one shard (chaos hook); the supervisor restarts it."""
        return self.supervisor.kill(shard_id)

    def reset_telemetry(self) -> None:
        """Zero every shard's telemetry (back-to-back load runs)."""
        futures = [
            self.supervisor.submit(shard_id, {"op": "reset_telemetry"})
            for shard_id in self.supervisor.shard_ids()
        ]
        for future in futures:
            future.result(timeout=30.0)

    def stats(self) -> dict:
        """JSON-ready snapshot merged across every shard process.

        ``telemetry`` carries the cross-shard merge (per-model stats plus
        per-shard rollups including restarts and in-flight depth);
        ``shards`` keeps each shard's full single-process stats block; and
        ``supervisor`` exposes the lifecycle counters of the restart
        protocol.
        """
        futures = {
            shard_id: self.supervisor.submit(shard_id, {"op": "stats"})
            for shard_id in self.supervisor.shard_ids()
        }
        shard_stats = {
            shard_id: future.result(timeout=60.0)
            for shard_id, future in futures.items()
        }
        telemetry = merge_shard_snapshots(
            {sid: stats.get("telemetry", {}) for sid, stats in shard_stats.items()},
            shard_rollups=self.supervisor.rollups(),
        )
        return {
            "telemetry": telemetry,
            "shards": {str(sid): stats for sid, stats in shard_stats.items()},
            "supervisor": {
                "shards_spawned": self.supervisor.stats.shards_spawned,
                "shards_restarted": self.supervisor.stats.shards_restarted,
                "messages_completed": self.supervisor.stats.messages_completed,
                "messages_resubmitted": self.supervisor.stats.messages_resubmitted,
                "state_ops_replayed": self.supervisor.stats.state_ops_replayed,
                "state_ops_quarantined": self.supervisor.stats.state_ops_quarantined,
                "models_shipped": self.supervisor.stats.models_shipped,
                "restarts": {
                    str(sid): count
                    for sid, count in self.supervisor.restarts().items()
                },
            },
            "deployments": {
                name: dict(report) for name, report in self._deployments.items()
            },
            "routing": {
                name: self.route(name) for name in sorted(self._deployments)
            },
        }
