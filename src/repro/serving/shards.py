"""Shard worker processes and their supervisor.

A *shard* is one long-lived spawn-context process that owns a complete
single-process serving stack — its own
:class:`~repro.simulator.SimulationEngine`,
:class:`~repro.serving.registry.ModelRegistry` slice,
:class:`~repro.serving.scheduler.MicroBatchScheduler` and per-model
:class:`~repro.serving.watcher.CalibrationWatcher` — wrapped in the generic
actor loop from :mod:`repro.runtime.workers`.  The parent never touches a
shard's engine; it only exchanges small request/response messages:

========== ==========================================================
op          effect inside the shard
========== ==========================================================
``deploy``   publish a model (ships pickled bytes once per model digest;
             repeat deploys of the same digest cross as a digest reference)
``predict``  serve one coalesced window of requests for one model — the
             shard submits every row to its scheduler and force-flushes,
             so a window is exactly one registry resolution + one batched
             backend call (flush boundary = hot-swap boundary, as in PR 4)
``observe``  feed one calibration snapshot to the model's watcher
             (may hot-swap the deployment; never touches in-flight windows)
``rollback`` restore the previous registry version
``stats``    snapshot the shard's telemetry + scheduler + cache stats
``reset_telemetry`` zero the shard's telemetry between load runs
========== ==========================================================

Large request windows cross via the content-addressed shared-memory store
(:class:`~repro.runtime.workers.SharedArrayStore`); small windows (the
common case — a micro-batch of feature vectors is a few KiB) ship inline,
which is faster than a digest + block round-trip.

:class:`ShardSupervisor` owns the fleet of shards.  It tracks, per shard,
the ordered *state log* (every deploy / observe / rollback payload) and the
ordered set of in-flight messages.  When a shard dies, the supervisor
respawns it, replays the state log (deterministic compilation + the
registry's content-dedupe make the replayed registry converge to the exact
pre-crash state, including version numbers), then resubmits the dead
shard's unanswered messages in their original order — so a crash costs
clients latency, never an answer.  A predict racing a hot-swap may complete
under the newer version after a restart, which is the same nondeterminism a
client already observes from ordinary swap timing.
"""

from __future__ import annotations

import hashlib
import logging
import pickle
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import Future
from dataclasses import dataclass
from multiprocessing import get_context
from multiprocessing.connection import wait as _wait_readers
from typing import Optional

import numpy as np

from repro.exceptions import ServingError
from repro.protocol import ProtocolError, ShardDeploy, ShardStateOp
from repro.runtime.workers import (
    SharedArrayStore,
    attach_shared_array,
    spawn_actor,
)

__all__ = [
    "INLINE_WINDOW_BYTES",
    "MAX_MESSAGE_ATTEMPTS",
    "ShardHandler",
    "ShardSupervisor",
    "SupervisorStats",
]

#: Request windows smaller than this ship inline through the message queue;
#: larger windows cross via the content-addressed shared-memory store.  A
#: micro-batch of feature vectors is typically a few KiB, far below the
#: digest + attach overhead break-even.
INLINE_WINDOW_BYTES = 256 * 1024

#: How many times one message may take a shard down before its future is
#: failed instead of resubmitted (mirrors the worker pool's guard against
#: a poison message respawning forever).
MAX_MESSAGE_ATTEMPTS = 3

#: How many shared-memory attachments a shard keeps mapped at once.
_ATTACH_CACHE_CAPACITY = 16


class ShardHandler:
    """Child-process actor handler: one complete serving stack per shard.

    Instantiated by :func:`repro.runtime.workers.actor_main` inside the
    spawned shard, so everything here runs single-threaded in the shard
    process; the parent's supervisor provides all cross-shard concurrency.
    """

    def __init__(self, shard_id: int, policy: Optional[dict] = None):
        # Local import: service.py imports this module for the sharded
        # front door, and __init__ only runs inside the child process.
        from repro.serving.scheduler import BatchPolicy
        from repro.serving.service import InferenceService

        self.shard_id = shard_id
        self.service = InferenceService(
            policy=BatchPolicy(**policy) if policy else None
        )
        self._models: dict[str, object] = {}  # model digest -> unpickled model
        self._blocks: dict[str, object] = {}
        self._block_order: deque[str] = deque()

    # ------------------------------------------------------------------
    def __call__(self, payload: dict):
        """Dispatch one message to its op handler."""
        op = payload.get("op")
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            raise ServingError(f"shard {self.shard_id}: unknown op {op!r}")
        return handler(payload)

    def _op_deploy(self, payload: dict) -> dict:
        digest = payload["model_digest"]
        model = self._models.get(digest)
        if model is None:
            model_bytes = payload.get("model_bytes")
            if model_bytes is None:
                raise ServingError(
                    f"shard {self.shard_id}: model digest {digest} not shipped"
                )
            self._models[digest] = model = pickle.loads(model_bytes)
        version = self.service.deploy(
            payload["name"],
            model,
            calibration=payload.get("calibration"),
            noise_model=payload.get("noise_model"),
            adapter=payload.get("adapter"),
        )
        return {
            "name": version.name,
            "version": version.version,
            "compilation_digest": version.compilation_digest,
            "shard": self.shard_id,
        }

    def _decode_window(self, features) -> np.ndarray:
        if isinstance(features, dict):
            window = attach_shared_array(features, self._blocks)
            # Bound the attachment cache: every window is content-addressed,
            # so a long-lived shard would otherwise map every block it saw.
            name = features["name"]
            if name in self._block_order:
                self._block_order.remove(name)
            self._block_order.append(name)
            while len(self._block_order) > _ATTACH_CACHE_CAPACITY:
                evicted = self._block_order.popleft()
                block = self._blocks.pop(evicted, None)
                if block is not None:
                    try:
                        block.close()
                    except Exception:
                        pass
            return window
        return np.asarray(features, dtype=float)

    def _op_predict(self, payload: dict) -> dict:
        window = self._decode_window(payload["features"])
        scheduler = self.service.scheduler
        futures = [scheduler.submit(payload["name"], row) for row in window]
        scheduler.flush_pending(force=True)
        results = [future.result(timeout=0) for future in futures]
        return {
            "logits": np.stack([r.logits for r in results]),
            "predictions": np.asarray([r.prediction for r in results]),
            "versions": [r.version for r in results],
            "batch_ids": [r.batch_id for r in results],
            "batch_sizes": [r.batch_size for r in results],
            "shard": self.shard_id,
        }

    def _op_observe(self, payload: dict):
        return self.service.observe_calibration(payload["name"], payload["snapshot"])

    def _op_rollback(self, payload: dict) -> int:
        return self.service.rollback(payload["name"]).version

    def _op_stats(self, payload: dict) -> dict:
        stats = self.service.stats()
        stats["shard"] = self.shard_id
        return stats

    def _op_reset_telemetry(self, payload: dict) -> None:
        self.service.telemetry.reset()

    def _op_ping(self, payload: dict) -> int:
        return self.shard_id

    def close(self) -> None:
        """Detach shared-memory blocks on process exit."""
        for block in self._blocks.values():
            try:
                block.close()
            except Exception:
                pass


#: Ops that mutate shard registry state and must be replayed on restart.
_STATE_OPS = frozenset({"deploy", "observe", "rollback"})

_logger = logging.getLogger(__name__)


def _state_op_record(payload: dict):
    """The typed audit record of one state-mutating payload.

    Model bytes, snapshots, and adapters travel out-of-band as python
    objects; the record pins the JSON-able identity (op, name, digests,
    dates) and *validates it at submit time*, so a malformed state op
    fails in the caller's stack trace instead of poisoning the replay
    log.
    """
    op = payload.get("op")
    try:
        if op == "deploy":
            return ShardDeploy(
                name=payload["name"],
                model_digest=payload["model_digest"],
                calibration_date=getattr(payload.get("calibration"), "date", None),
                has_model_bytes=payload.get("model_bytes") is not None,
                has_noise_model=payload.get("noise_model") is not None,
                has_adapter=payload.get("adapter") is not None,
            )
        return ShardStateOp(
            op=op,
            name=payload["name"],
            date=getattr(payload.get("snapshot"), "date", None),
        )
    except KeyError as error:
        raise ProtocolError(
            f"state op {op!r} payload is missing required key {error}"
        ) from error


class _StateLogEntry:
    """One state-mutating payload retained for crash replay.

    ``record`` is the validated protocol message pinned at submit time
    (:class:`~repro.protocol.ShardDeploy` for deploys,
    :class:`~repro.protocol.ShardStateOp` otherwise).  ``attempts``
    counts how many times the shard died while this entry was in flight
    (originally or as a replay); once it reaches
    :data:`MAX_MESSAGE_ATTEMPTS` the entry is quarantined — skipped by
    every subsequent replay — so a poison deploy cannot crash-loop the
    shard forever.
    """

    __slots__ = ("payload", "record", "attempts", "quarantined")

    def __init__(self, payload: dict):
        self.payload = payload
        self.record = _state_op_record(payload)
        self.attempts = 0
        self.quarantined = False


class _Envelope:
    """One shipped message: payload, resolution future, delivery bookkeeping."""

    __slots__ = (
        "task_id",
        "payload",
        "future",
        "state_op",
        "replay",
        "attempts",
        "log_entry",
    )

    def __init__(self, task_id: int, payload: dict, future: Future, replay: bool = False):
        self.task_id = task_id
        self.payload = payload
        self.future = future
        self.state_op = payload.get("op") in _STATE_OPS
        #: Internal envelope regenerated from the state log during a
        #: restart; dropped (and regenerated again) if the shard dies twice.
        self.replay = replay
        self.attempts = 1
        #: The state-log entry this envelope applies (state ops only).
        self.log_entry: Optional[_StateLogEntry] = None


class _ShardHandle:
    """Parent-side view of one shard process."""

    __slots__ = (
        "shard_id",
        "process",
        "inbox",
        "outbox",
        "known_models",
        "state_log",
        "in_flight",
        "restarts",
    )

    def __init__(self, shard_id: int):
        self.shard_id = shard_id
        self.process = None
        self.inbox = None
        #: Per-shard reply queue.  Each shard owns its own channel (and the
        #: channel dies with the shard) so a crashing process can never
        #: poison a lock or pipe another shard's replies depend on — a
        #: single shared reply queue deadlocks the fleet when one child
        #: dies holding the queue's write lock.
        self.outbox = None
        self.known_models: set[str] = set()
        #: Ordered entries of every state-mutating op ever shipped.
        self.state_log: list[_StateLogEntry] = []
        #: task_id -> _Envelope of every unanswered message, ship order.
        self.in_flight: "OrderedDict[int, _Envelope]" = OrderedDict()
        self.restarts = 0


@dataclass
class SupervisorStats:
    """Cumulative lifecycle counters of one :class:`ShardSupervisor`."""

    shards_spawned: int = 0
    shards_restarted: int = 0
    messages_completed: int = 0
    messages_resubmitted: int = 0
    state_ops_replayed: int = 0
    state_ops_quarantined: int = 0
    models_shipped: int = 0
    windows_shared: int = 0


class ShardSupervisor:
    """Spawns, monitors, restarts, and routes messages to shard processes.

    The supervisor is transport + supervision only: it never inspects model
    state.  All shard state it needs for recovery is the per-shard ordered
    state log (deploy/observe/rollback payloads, with model bytes retained)
    plus the in-flight envelope queue.
    """

    def __init__(
        self,
        num_shards: int,
        policy: Optional[dict] = None,
        poll_seconds: float = 0.2,
    ):
        if num_shards < 1:
            raise ServingError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = num_shards
        self.policy = policy
        self.poll_seconds = poll_seconds
        self.stats = SupervisorStats()
        self._context = get_context("spawn")
        self._store = SharedArrayStore()
        self._shards: dict[int, _ShardHandle] = {
            shard_id: _ShardHandle(shard_id) for shard_id in range(num_shards)
        }
        self._lock = threading.RLock()
        self._task_counter = 0
        self._envelopes: dict[int, _Envelope] = {}
        self._collector: Optional[threading.Thread] = None
        self._closed = False
        self._idle = threading.Condition(self._lock)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ShardSupervisor":
        """Spawn every shard process and the collector thread (idempotent)."""
        with self._lock:
            if self._closed:
                raise ServingError("supervisor is closed")
            for handle in self._shards.values():
                if handle.process is None:
                    self._spawn(handle)
        if self._collector is None or not self._collector.is_alive():
            self._collector = threading.Thread(
                target=self._collect_loop, name="shard-collector", daemon=True
            )
            self._collector.start()
        return self

    def _spawn(self, handle: _ShardHandle) -> None:
        # SimpleQueue: replies are written synchronously from the shard's
        # main thread (no feeder), so a crash in handler code can never
        # interleave with a half-written reply frame.
        handle.outbox = self._context.SimpleQueue()
        handle.process, handle.inbox = spawn_actor(
            self._context,
            handle.outbox,
            ShardHandler,
            {"shard_id": handle.shard_id, "policy": self.policy},
            name=f"repro-shard-{handle.shard_id}",
        )
        handle.known_models = set()
        self.stats.shards_spawned += 1

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run; a closed supervisor rejects work."""
        return self._closed

    def shard_ids(self) -> list[int]:
        """Ids of the supervised shards."""
        return sorted(self._shards)

    def pids(self) -> dict[int, Optional[int]]:
        """Current PID of each shard process (None before :meth:`start`)."""
        with self._lock:
            return {
                shard_id: (handle.process.pid if handle.process else None)
                for shard_id, handle in self._shards.items()
            }

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def submit(self, shard_id: int, payload: dict) -> Future:
        """Ship one message to a shard; the future resolves with its reply."""
        with self._lock:
            if self._closed:
                raise ServingError("supervisor is closed; no new messages accepted")
            handle = self._shards.get(shard_id)
            if handle is None:
                raise ServingError(
                    f"unknown shard {shard_id}; shards: {sorted(self._shards)}"
                )
            if handle.process is None:
                raise ServingError("supervisor is not started; call start() first")
            self._task_counter += 1
            envelope = _Envelope(self._task_counter, payload, Future())
            if envelope.state_op:
                entry = _StateLogEntry(payload)
                envelope.log_entry = entry
                handle.state_log.append(entry)
            self._ship(handle, envelope)
            return envelope.future

    def share_window(self, window: np.ndarray) -> dict:
        """Expose a large request window via the content-addressed store.

        The block is pinned against LRU eviction until the window's message
        resolves (the supervisor releases the pin in :meth:`_resolve`, the
        give-up path, and on close) — so no matter how many distinct
        windows are in flight, a shard can never find its block unlinked.
        """
        with self._lock:
            meta = self._store.share(window, pin=True)
            self.stats.windows_shared += 1
            return meta

    def release_window(self, meta: dict) -> None:
        """Drop the pin :meth:`share_window` took (callers that never
        submitted the window must release it themselves)."""
        with self._lock:
            self._store.release(meta.get("name"))

    def _release_window_pin(self, envelope: _Envelope) -> None:
        """Unpin a predict envelope's shared window (lock held)."""
        features = envelope.payload.get("features")
        if isinstance(features, dict):
            self._store.release(features.get("name"))

    def _ship(self, handle: _ShardHandle, envelope: _Envelope) -> None:
        """Deliver one envelope (lock held), content-addressing model bytes."""
        payload = envelope.payload
        if payload.get("op") == "deploy":
            digest = payload["model_digest"]
            if digest in handle.known_models:
                payload = {k: v for k, v in payload.items() if k != "model_bytes"}
            else:
                handle.known_models.add(digest)
                self.stats.models_shipped += 1
        handle.in_flight[envelope.task_id] = envelope
        self._envelopes[envelope.task_id] = envelope
        handle.inbox.put((envelope.task_id, payload))

    # ------------------------------------------------------------------
    # Collection + supervision
    # ------------------------------------------------------------------
    def _collect_loop(self) -> None:
        last_health_check = time.monotonic()
        while not self._closed:
            with self._lock:
                outboxes = [
                    handle.outbox
                    for handle in self._shards.values()
                    if handle.outbox is not None
                ]
            replies = []
            try:
                ready = _wait_readers(
                    [outbox._reader for outbox in outboxes],
                    timeout=self.poll_seconds,
                )
            except OSError:  # an outbox was torn down mid-wait
                ready = []
            readers = {outbox._reader: outbox for outbox in outboxes}
            for reader in ready:
                outbox = readers.get(reader)
                if outbox is None:
                    continue
                try:
                    while not outbox.empty():
                        replies.append(outbox.get())
                except (EOFError, OSError):
                    continue  # shard died mid-reply; recovery resubmits
            now = time.monotonic()
            with self._lock:
                for task_id, ok, value in replies:
                    self._resolve(task_id, ok, value)
                if now - last_health_check >= self.poll_seconds:
                    last_health_check = now
                    self._recover_dead_shards()
                if not self._envelopes:
                    self._idle.notify_all()

    def _resolve(self, task_id: int, ok: bool, value) -> None:
        envelope = self._envelopes.pop(task_id, None)
        if envelope is None:
            return  # straggler from before a restart
        for handle in self._shards.values():
            handle.in_flight.pop(task_id, None)
        self._release_window_pin(envelope)
        self.stats.messages_completed += 1
        if ok:
            envelope.future.set_result(value)
        else:
            envelope.future.set_exception(
                ServingError(f"shard message {envelope.payload.get('op')!r} failed:\n{value}")
            )

    def _recover_dead_shards(self) -> None:
        # Guarded on _closed (both this and close() run under the lock):
        # the collector's final iteration may wake *after* close() sent the
        # shutdown sentinels, and must not resurrect cleanly-stopped shards.
        if self._closed:
            return
        for handle in self._shards.values():
            if handle.process is not None and not handle.process.is_alive():
                self._recover(handle)

    def _recover(self, handle: _ShardHandle) -> None:
        """Respawn a dead shard; replay its state; resubmit unanswered work.

        The state log is replayed *first* (in original submission order) so
        the new process reconstructs the exact registry the old one held —
        deterministic compilation plus the registry's content-dedupe mean
        replayed publishes converge to the same versions.  Unanswered
        non-state messages are then resubmitted in their original order.
        In-flight state ops are resolved by their own replay envelope, so
        nothing is applied twice.

        Every message in flight at crash time — state op or not — counts
        one attempt; a state-log entry whose attempts reach
        :data:`MAX_MESSAGE_ATTEMPTS` is quarantined (skipped by this and
        every later replay, its caller's future failed) so one poison
        deploy cannot crash-loop the shard forever.
        """
        try:
            handle.process.join(timeout=0)
        except Exception:
            pass
        # Discard the dead shard's channels wholesale: anything unread in
        # them is covered by state replay + envelope resubmission, and a
        # fresh pair means nothing the dying process may have poisoned
        # (locks, partial frames) survives into the restarted shard.
        # cancel_join_thread, not join_thread: the inbox feeder may be
        # blocked writing a window into the dead shard's full pipe.
        if handle.inbox is not None:
            try:
                handle.inbox.cancel_join_thread()
                handle.inbox.close()
            except Exception:
                pass
        if handle.outbox is not None:
            try:
                handle.outbox.close()
            except Exception:
                pass
        old_in_flight = handle.in_flight
        handle.in_flight = OrderedDict()
        for envelope in old_in_flight.values():
            self._envelopes.pop(envelope.task_id, None)
            # Any state op unanswered at crash time is a crash suspect,
            # whether it was the caller's original ship or a replay.
            if envelope.log_entry is not None:
                envelope.log_entry.attempts += 1
        self._spawn(handle)
        handle.restarts += 1
        self.stats.shards_restarted += 1

        # Map in-flight state-log entries to their caller envelopes so the
        # replay resolves the caller's original future.
        pending_state = {
            id(envelope.log_entry): envelope
            for envelope in old_in_flight.values()
            if envelope.log_entry is not None and not envelope.replay
        }
        for entry in handle.state_log:
            if entry.quarantined:
                continue
            envelope = pending_state.get(id(entry))
            if entry.attempts >= MAX_MESSAGE_ATTEMPTS:
                entry.quarantined = True
                self.stats.state_ops_quarantined += 1
                error = ServingError(
                    f"state op {entry.payload.get('op')!r} "
                    f"(name={entry.payload.get('name')!r}) killed shard "
                    f"{handle.shard_id} {entry.attempts} times; quarantined "
                    "from replay — the shard restarts without it"
                )
                _logger.error("%s", error)
                if envelope is not None:
                    envelope.future.set_exception(error)
                continue
            if envelope is None:
                self._task_counter += 1
                envelope = _Envelope(
                    self._task_counter, entry.payload, Future(), replay=True
                )
                envelope.log_entry = entry
                envelope.future.add_done_callback(self._check_replay)
            else:
                envelope.attempts += 1
            self.stats.state_ops_replayed += 1
            self._ship(handle, envelope)
        for envelope in old_in_flight.values():
            if envelope.replay or envelope.state_op:
                continue  # replay envelopes are regenerated from the log
            envelope.attempts += 1
            if envelope.attempts > MAX_MESSAGE_ATTEMPTS:
                self._release_window_pin(envelope)
                envelope.future.set_exception(
                    ServingError(
                        f"message {envelope.payload.get('op')!r} killed shard "
                        f"{handle.shard_id} {MAX_MESSAGE_ATTEMPTS} times; giving up"
                    )
                )
                continue
            self.stats.messages_resubmitted += 1
            self._ship(handle, envelope)

    @staticmethod
    def _check_replay(future: Future) -> None:
        """Surface a failed state replay loudly instead of swallowing it."""
        error = future.exception()
        if error is not None:  # pragma: no cover - defensive
            _logger.error("shard state replay failed: %s", error)

    # ------------------------------------------------------------------
    # Ops hooks
    # ------------------------------------------------------------------
    def kill(self, shard_id: int) -> Optional[int]:
        """Hard-kill one shard process (chaos hook); returns the old PID.

        The collector notices the death within ``poll_seconds`` and runs the
        restart protocol — callers observe nothing but latency.
        """
        with self._lock:
            handle = self._shards[shard_id]
            if handle.process is None:
                return None
            pid = handle.process.pid
            handle.process.kill()
        return pid

    def restarts(self) -> dict[int, int]:
        """Restart count per shard id."""
        with self._lock:
            return {sid: handle.restarts for sid, handle in self._shards.items()}

    def state_log_records(self, shard_id: int) -> list[ShardStateOp]:
        """One shard's ordered state log as typed audit records.

        Each entry is a uniform :class:`~repro.protocol.ShardStateOp`
        (op, name, date, model digest) with the entry's live replay
        bookkeeping (``attempts``, ``quarantined``) folded in — the
        machine-readable view of exactly what a restarted shard will
        replay.
        """
        with self._lock:
            handle = self._shards.get(shard_id)
            if handle is None:
                raise ServingError(
                    f"unknown shard {shard_id}; shards: {sorted(self._shards)}"
                )
            records = []
            for entry in handle.state_log:
                record = entry.record
                if isinstance(record, ShardDeploy):
                    records.append(
                        ShardStateOp(
                            op="deploy",
                            name=record.name,
                            date=record.calibration_date,
                            model_digest=record.model_digest,
                            attempts=entry.attempts,
                            quarantined=entry.quarantined,
                        )
                    )
                else:
                    records.append(
                        record.model_copy(
                            update={
                                "attempts": entry.attempts,
                                "quarantined": entry.quarantined,
                            }
                        )
                    )
            return records

    def rollups(self) -> dict[int, dict]:
        """Supervisor-side per-shard rollups for the telemetry merge."""
        with self._lock:
            return {
                shard_id: {
                    "restarts": handle.restarts,
                    "in_flight": len(handle.in_flight),
                    "deployed_digests": len(handle.known_models),
                    "state_ops": len(handle.state_log),
                    "pid": handle.process.pid if handle.process else None,
                }
                for shard_id, handle in self._shards.items()
            }

    def drain(self, timeout: float = 60.0) -> bool:
        """Wait until no message is in flight; returns False on timeout."""
        deadline = time.monotonic() + timeout
        with self._idle:
            while self._envelopes:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._idle.wait(timeout=min(remaining, 0.1))
        return True

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def close(self, drain: bool = True) -> None:
        """Stop every shard and release shared resources.

        With ``drain=True`` the call first waits for in-flight messages to
        be answered, then stops the actors via their sentinel; with
        ``drain=False`` unanswered futures are cancelled and the processes
        are terminated immediately.
        """
        if self._closed:
            return
        if drain:
            self.drain()
        with self._lock:
            self._closed = True
            for envelope in list(self._envelopes.values()):
                envelope.future.cancel()
            self._envelopes.clear()
            handles = list(self._shards.values())
        for handle in handles:
            if handle.process is None:
                continue
            if drain and handle.process.is_alive():
                try:
                    handle.inbox.put(None)
                except Exception:
                    pass
        for handle in handles:
            if handle.process is None:
                continue
            if drain:
                handle.process.join(timeout=5.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=5.0)
        if self._collector is not None:
            self._collector.join(timeout=5.0)
            self._collector = None
        self._store.close()

    def __enter__(self) -> "ShardSupervisor":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        try:
            if not self._closed:
                self.close(drain=False)
        except Exception:
            pass


def model_payload_digest(model_bytes: bytes) -> str:
    """Content digest identifying one pickled model payload."""
    return hashlib.blake2b(model_bytes, digest_size=16).hexdigest()
