"""Serving telemetry: QPS, batch-size histogram, latency percentiles, swaps.

One :class:`ServingTelemetry` instance is shared by the scheduler (which
records every flushed batch), the calibration watcher (which records swap
actions), and the service front door (which records submissions and
cancellations).  All counters are guarded by one lock — recording is a few
dict updates, far cheaper than the simulations it measures — and
:meth:`ServingTelemetry.as_dict` emits a JSON-ready snapshot for the CLI
stats block.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Optional

import numpy as np

#: Per-model cap on retained latency samples; percentile estimates use the
#: most recent window, which bounds a long-lived server's memory.
LATENCY_WINDOW: int = 4096


class _ModelCounters:
    """Mutable per-model counters (internal to :class:`ServingTelemetry`)."""

    __slots__ = (
        "submitted",
        "completed",
        "failed",
        "cancelled",
        "batches",
        "batch_sizes",
        "latencies",
        "versions_served",
        "first_submit",
        "last_complete",
    )

    def __init__(self) -> None:
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.cancelled = 0
        self.batches = 0
        self.batch_sizes: dict[int, int] = {}
        self.latencies: deque[float] = deque(maxlen=LATENCY_WINDOW)
        self.versions_served: set[int] = set()
        self.first_submit: Optional[float] = None
        self.last_complete: Optional[float] = None


class ServingTelemetry:
    """Aggregates per-model serving metrics for the stats block."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._models: dict[str, _ModelCounters] = {}
        self._swaps: dict[str, int] = {}

    def _counters(self, name: str) -> _ModelCounters:
        counters = self._models.get(name)
        if counters is None:
            counters = self._models[name] = _ModelCounters()
        return counters

    # ------------------------------------------------------------------
    def record_submit(self, name: str) -> None:
        """Count one accepted request for ``name``."""
        now = time.monotonic()
        with self._lock:
            counters = self._counters(name)
            counters.submitted += 1
            if counters.first_submit is None:
                counters.first_submit = now

    def record_batch(
        self,
        name: str,
        version: int,
        size: int,
        latencies: list[float],
        failed: bool = False,
    ) -> None:
        """Count one flushed micro-batch and its per-request latencies."""
        now = time.monotonic()
        with self._lock:
            counters = self._counters(name)
            counters.batches += 1
            counters.batch_sizes[size] = counters.batch_sizes.get(size, 0) + 1
            counters.versions_served.add(version)
            if failed:
                counters.failed += size
            else:
                counters.completed += size
                counters.latencies.extend(latencies)
                counters.last_complete = now

    def record_cancelled(self, name: str, count: int = 1) -> None:
        """Count requests cancelled by a non-draining shutdown."""
        with self._lock:
            self._counters(name).cancelled += count

    def record_swap(self, name: str, action: str) -> None:
        """Count one calibration-watcher action (refresh/recompile/readapt)."""
        with self._lock:
            key = f"{name}:{action}"
            self._swaps[key] = self._swaps.get(key, 0) + 1

    # ------------------------------------------------------------------
    def model_stats(self, name: str) -> dict:
        """JSON-ready metrics for one model name."""
        with self._lock:
            counters = self._models.get(name)
            if counters is None:
                return {}
            latencies = np.asarray(counters.latencies, dtype=float)
            elapsed = None
            if counters.first_submit is not None and counters.last_complete is not None:
                elapsed = max(counters.last_complete - counters.first_submit, 1e-9)
            return {
                "submitted": counters.submitted,
                "completed": counters.completed,
                "failed": counters.failed,
                "cancelled": counters.cancelled,
                "batches": counters.batches,
                "batch_size_histogram": {
                    str(size): count
                    for size, count in sorted(counters.batch_sizes.items())
                },
                "mean_batch_size": (
                    counters.completed / counters.batches if counters.batches else 0.0
                ),
                "qps": (counters.completed / elapsed) if elapsed else 0.0,
                "latency_p50_ms": (
                    float(np.percentile(latencies, 50)) * 1e3 if latencies.size else None
                ),
                "latency_p99_ms": (
                    float(np.percentile(latencies, 99)) * 1e3 if latencies.size else None
                ),
                "versions_served": sorted(counters.versions_served),
            }

    def as_dict(self) -> dict:
        """Snapshot of every model's metrics plus the swap counters."""
        with self._lock:
            names = list(self._models)
            swaps = dict(self._swaps)
        return {
            "models": {name: self.model_stats(name) for name in names},
            "swaps": swaps,
        }
