"""Serving telemetry: QPS, batch-size histogram, latency percentiles, swaps.

One :class:`ServingTelemetry` instance is shared by the scheduler (which
records every flushed batch), the calibration watcher (which records swap
actions), and the service front door (which records submissions and
cancellations).  All counters are guarded by one lock — recording is a few
dict updates, far cheaper than the simulations it measures — and
:meth:`ServingTelemetry.as_dict` emits a JSON-ready snapshot for the CLI
stats block.

The sharded service adds a process dimension: every shard owns a private
``ServingTelemetry`` whose snapshot crosses the process boundary as a plain
dict, and :func:`merge_shard_snapshots` folds those snapshots (plus the
supervisor's per-shard lifecycle rollups) into one service-wide view.
:meth:`ServingTelemetry.reset` zeroes a live instance so back-to-back load
runs measure from a clean slate without rebuilding the serving stack.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Optional

import numpy as np

from repro.protocol import TelemetrySnapshot

#: Per-model cap on retained latency samples; percentile estimates use the
#: most recent window, which bounds a long-lived server's memory.
LATENCY_WINDOW: int = 4096


class _ModelCounters:
    """Mutable per-model counters (internal to :class:`ServingTelemetry`)."""

    __slots__ = (
        "submitted",
        "completed",
        "failed",
        "cancelled",
        "batches",
        "batch_sizes",
        "latencies",
        "versions_served",
        "first_submit",
        "last_complete",
    )

    def __init__(self) -> None:
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.cancelled = 0
        self.batches = 0
        self.batch_sizes: dict[int, int] = {}
        self.latencies: deque[float] = deque(maxlen=LATENCY_WINDOW)
        self.versions_served: set[int] = set()
        self.first_submit: Optional[float] = None
        self.last_complete: Optional[float] = None


class ServingTelemetry:
    """Aggregates per-model serving metrics for the stats block."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._models: dict[str, _ModelCounters] = {}
        self._swaps: dict[str, int] = {}

    def _counters(self, name: str) -> _ModelCounters:
        counters = self._models.get(name)
        if counters is None:
            counters = self._models[name] = _ModelCounters()
        return counters

    # ------------------------------------------------------------------
    def record_submit(self, name: str) -> None:
        """Count one accepted request for ``name``."""
        now = time.monotonic()
        with self._lock:
            counters = self._counters(name)
            counters.submitted += 1
            if counters.first_submit is None:
                counters.first_submit = now

    def record_batch(
        self,
        name: str,
        version: int,
        size: int,
        latencies: list[float],
        failed: bool = False,
    ) -> None:
        """Count one flushed micro-batch and its per-request latencies."""
        now = time.monotonic()
        with self._lock:
            counters = self._counters(name)
            counters.batches += 1
            counters.batch_sizes[size] = counters.batch_sizes.get(size, 0) + 1
            counters.versions_served.add(version)
            if failed:
                counters.failed += size
            else:
                counters.completed += size
                counters.latencies.extend(latencies)
            # Failed batches still advance the activity clock: the requests
            # *were* dispatched and answered (with an error), so a run that
            # ends in failures must not deflate elapsed time — that would
            # inflate the reported QPS of the successful prefix.
            counters.last_complete = now

    def record_cancelled(self, name: str, count: int = 1) -> None:
        """Count requests cancelled by a non-draining shutdown."""
        with self._lock:
            self._counters(name).cancelled += count

    def record_swap(self, name: str, action: str) -> None:
        """Count one calibration-watcher action (refresh/recompile/readapt)."""
        with self._lock:
            key = f"{name}:{action}"
            self._swaps[key] = self._swaps.get(key, 0) + 1

    # ------------------------------------------------------------------
    def model_stats(self, name: str) -> dict:
        """JSON-ready metrics for one model name."""
        with self._lock:
            counters = self._models.get(name)
            if counters is None:
                return {}
            latencies = np.asarray(counters.latencies, dtype=float)
            elapsed = None
            if counters.first_submit is not None and counters.last_complete is not None:
                elapsed = max(counters.last_complete - counters.first_submit, 1e-9)
            return {
                "submitted": counters.submitted,
                "completed": counters.completed,
                "failed": counters.failed,
                "cancelled": counters.cancelled,
                "batches": counters.batches,
                "batch_size_histogram": {
                    str(size): count
                    for size, count in sorted(counters.batch_sizes.items())
                },
                "mean_batch_size": (
                    counters.completed / counters.batches if counters.batches else 0.0
                ),
                "failure_rate": (
                    counters.failed / (counters.completed + counters.failed)
                    if (counters.completed + counters.failed)
                    else 0.0
                ),
                "qps": (counters.completed / elapsed) if elapsed else 0.0,
                "latency_p50_ms": (
                    float(np.percentile(latencies, 50)) * 1e3 if latencies.size else None
                ),
                "latency_p99_ms": (
                    float(np.percentile(latencies, 99)) * 1e3 if latencies.size else None
                ),
                "versions_served": sorted(counters.versions_served),
            }

    def as_dict(self) -> dict:
        """Snapshot of every model's metrics plus the swap counters."""
        with self._lock:
            names = list(self._models)
            swaps = dict(self._swaps)
        return {
            "models": {name: self.model_stats(name) for name in names},
            "swaps": swaps,
        }

    def snapshot(self) -> TelemetrySnapshot:
        """The current state as a validated protocol message.

        This is the form that crosses process/persistence boundaries:
        shard snapshots validate through it before merging, and the run
        store persists it under ``serving.telemetry.snapshot``.
        """
        return TelemetrySnapshot.model_validate(self.as_dict())

    def reset(self) -> None:
        """Zero every counter (back-to-back load runs on one live service)."""
        with self._lock:
            self._models.clear()
            self._swaps.clear()


def _merge_model_stats(stats: list[dict]) -> dict:
    """Fold per-shard snapshots of one model name into one stats dict.

    Consistent hashing pins a name to one shard, so this is normally a
    single-element copy; after a ring resize the same name can briefly have
    history on two shards, in which case additive counters sum, histograms
    merge, and latency percentiles take the worst shard (percentiles cannot
    be merged exactly from summaries — worst-case is the honest bound).
    """
    if len(stats) == 1:
        return dict(stats[0])
    merged = dict(stats[0])
    for other in stats[1:]:
        for key in ("submitted", "completed", "failed", "cancelled", "batches"):
            merged[key] = merged.get(key, 0) + other.get(key, 0)
        histogram = dict(merged.get("batch_size_histogram", {}))
        for size, count in other.get("batch_size_histogram", {}).items():
            histogram[size] = histogram.get(size, 0) + count
        merged["batch_size_histogram"] = dict(sorted(histogram.items()))
        merged["qps"] = merged.get("qps", 0.0) + other.get("qps", 0.0)
        for key in ("latency_p50_ms", "latency_p99_ms"):
            values = [v for v in (merged.get(key), other.get(key)) if v is not None]
            merged[key] = max(values) if values else None
        merged["versions_served"] = sorted(
            set(merged.get("versions_served", [])) | set(other.get("versions_served", []))
        )
    completed, failed = merged.get("completed", 0), merged.get("failed", 0)
    merged["mean_batch_size"] = (
        completed / merged["batches"] if merged.get("batches") else 0.0
    )
    merged["failure_rate"] = (
        failed / (completed + failed) if (completed + failed) else 0.0
    )
    return merged


def merge_shard_snapshots(
    shard_snapshots: dict[int, dict],
    shard_rollups: Optional[dict[int, dict]] = None,
) -> dict:
    """One service-wide telemetry view from per-shard snapshot dicts.

    ``shard_snapshots`` maps shard id to that shard's
    :meth:`ServingTelemetry.as_dict` (as returned across the process
    boundary); ``shard_rollups`` optionally adds supervisor-side lifecycle
    counters (restarts, in-flight depth, queued requests) per shard.  The
    result carries the merged per-model stats and swap counters at the top
    level — same shape as a single-process snapshot — plus a ``shards``
    block holding each shard's own rollup for the per-shard QPS / queue
    depth / batch-histogram / restart view.
    """
    models: dict[str, list[dict]] = {}
    swaps: dict[str, int] = {}
    shards: dict[str, dict] = {}
    for shard_id in sorted(shard_snapshots):
        raw = shard_snapshots[shard_id] or {}
        # Validate each shard's snapshot at the merge boundary: a shard
        # shipping a malformed snapshot fails here, by type, instead of
        # corrupting the merged rollup downstream.
        snapshot = TelemetrySnapshot.model_validate(raw).to_canonical_dict()
        for name, stats in snapshot.get("models", {}).items():
            if stats:
                models.setdefault(name, []).append(stats)
        for key, count in snapshot.get("swaps", {}).items():
            swaps[key] = swaps.get(key, 0) + count
        rollup = {
            "models": sorted(snapshot.get("models", {})),
            "qps": sum(
                stats.get("qps", 0.0)
                for stats in snapshot.get("models", {}).values()
                if stats
            ),
            "completed": sum(
                stats.get("completed", 0)
                for stats in snapshot.get("models", {}).values()
                if stats
            ),
            "batch_size_histogram": _merge_histograms(
                stats.get("batch_size_histogram", {})
                for stats in snapshot.get("models", {}).values()
                if stats
            ),
        }
        if shard_rollups and shard_id in shard_rollups:
            rollup.update(shard_rollups[shard_id])
        shards[str(shard_id)] = rollup
    merged = TelemetrySnapshot.model_validate(
        {
            "models": {
                name: _merge_model_stats(stats) for name, stats in models.items()
            },
            "swaps": swaps,
            "shards": shards,
        }
    )
    return merged.to_canonical_dict()


def _merge_histograms(histograms) -> dict:
    """Sum batch-size histograms (string keys, sorted numerically)."""
    merged: dict[str, int] = {}
    for histogram in histograms:
        for size, count in histogram.items():
            merged[size] = merged.get(size, 0) + count
    return {size: merged[size] for size in sorted(merged, key=int)}
