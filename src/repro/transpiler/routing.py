"""SWAP routing onto a restricted coupling map.

The router walks the circuit in order, maintaining the current
logical-to-physical mapping.  When a two-qubit gate addresses physical qubits
that are not adjacent, SWAPs are inserted along a shortest path until the
operands meet.  The result records, for every *original* gate, the physical
qubits it ended up acting on — exactly the association ``A(g_i)`` that the
noise-aware compression algorithm needs.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.circuits import QuantumCircuit, parameter_digest
from repro.exceptions import TranspilerError
from repro.gates import Gate
from repro.transpiler.coupling import CouplingMap
from repro.transpiler.layout import Layout
from repro.utils.lru import lru_get, lru_put

#: Per-routing capacity of the basis-translation memo (distinct parameter
#: bindings held at once; the online loops cycle through a handful).
PHYSICAL_CACHE_SIZE = 128


@dataclass
class RoutedCircuit:
    """A circuit mapped and routed onto physical qubits.

    Attributes
    ----------
    circuit:
        The routed circuit on ``coupling.num_qubits`` physical qubits.  Gates
        keep their ``param_ref`` so the routed circuit can still be bound to
        a trainable-parameter vector.
    coupling:
        The device coupling map used for routing.
    initial_layout:
        Logical-to-physical map before the first gate.
    final_mapping:
        ``{logical: physical}`` map after the last gate (SWAPs permute it).
    gate_physical_qubits:
        For each gate of the *original* circuit (same order), the physical
        qubits it acts on after routing.
    ref_physical_qubits:
        ``{param_ref: physical qubit tuple}`` for every trainable gate — the
        association ``A(g_i)`` consumed by noise-aware compression.
    num_swaps:
        Number of SWAP gates inserted.
    """

    circuit: QuantumCircuit
    coupling: CouplingMap
    initial_layout: Layout
    final_mapping: dict[int, int]
    gate_physical_qubits: list[tuple[int, ...]]
    ref_physical_qubits: dict[int, tuple[int, ...]]
    num_swaps: int
    _physical_cache: OrderedDict = field(
        default_factory=OrderedDict, repr=False, compare=False
    )

    def measured_physical_qubits(self, logical_qubits: list[int]) -> list[int]:
        """Physical qubits to measure for the given logical readout qubits."""
        return [self.final_mapping[q] for q in logical_qubits]

    def to_physical(self, parameters: Sequence[float] | np.ndarray) -> QuantumCircuit:
        """Bind parameters and translate to the native basis, memoised.

        The memo lives on the routed artifact — the object the pipeline
        shares across incremental per-day recompilations — so the online
        loops that re-evaluate the same few bindings across many days pay
        for basis translation once per binding, not once per day.  Returned
        circuits are shared: callers must treat them as read-only.
        """
        from repro.transpiler.basis import to_basis

        parameters = np.asarray(parameters, dtype=float)
        key = parameter_digest(self.circuit, parameters)
        cached = lru_get(self._physical_cache, key)
        if cached is not None:
            return cached
        physical = to_basis(self.circuit.bind_parameters(parameters))
        lru_put(self._physical_cache, key, physical, PHYSICAL_CACHE_SIZE)
        return physical


def route_circuit(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    layout: Optional[Layout] = None,
) -> RoutedCircuit:
    """Route ``circuit`` onto ``coupling`` starting from ``layout``.

    Uses greedy shortest-path SWAP insertion, which is adequate for the small
    ring-entangled ansatzes of the paper (and deterministic, which matters
    for reproducibility).
    """
    if layout is None:
        from repro.transpiler.layout import trivial_layout

        layout = trivial_layout(circuit.num_qubits, coupling)
    if layout.num_logical != circuit.num_qubits:
        raise TranspilerError(
            f"layout covers {layout.num_logical} logical qubits, circuit has "
            f"{circuit.num_qubits}"
        )

    logical_to_physical = dict(layout.as_dict())
    physical_to_logical = {p: l for l, p in logical_to_physical.items()}

    routed = QuantumCircuit(coupling.num_qubits, name=f"{circuit.name}@{coupling.name}")
    gate_physical: list[tuple[int, ...]] = []
    ref_physical: dict[int, tuple[int, ...]] = {}
    num_swaps = 0

    def swap_physical(pa: int, pb: int) -> None:
        """Insert a SWAP between adjacent physical qubits and update maps."""
        nonlocal num_swaps
        routed.add("swap", [pa, pb])
        num_swaps += 1
        la = physical_to_logical.get(pa)
        lb = physical_to_logical.get(pb)
        if la is not None:
            logical_to_physical[la] = pb
        if lb is not None:
            logical_to_physical[lb] = pa
        physical_to_logical.pop(pa, None)
        physical_to_logical.pop(pb, None)
        if la is not None:
            physical_to_logical[pb] = la
        if lb is not None:
            physical_to_logical[pa] = lb

    for gate in circuit.gates:
        if gate.num_qubits == 1:
            physical = (logical_to_physical[gate.qubits[0]],)
        else:
            control, target = gate.qubits
            p_control = logical_to_physical[control]
            p_target = logical_to_physical[target]
            if not coupling.is_adjacent(p_control, p_target):
                path = coupling.shortest_path(p_control, p_target)
                # Move the control along the path until it neighbours the target.
                for hop in path[1:-1]:
                    swap_physical(logical_to_physical[control], hop)
                p_control = logical_to_physical[control]
                p_target = logical_to_physical[target]
                if not coupling.is_adjacent(p_control, p_target):
                    raise TranspilerError(
                        f"routing failed to make qubits {control} and {target} adjacent"
                    )
            physical = (p_control, p_target)
        routed.append(Gate(gate.name, physical, gate.param, gate.param_ref, gate.trainable))
        gate_physical.append(physical)
        if gate.param_ref is not None:
            ref_physical[gate.param_ref] = physical

    return RoutedCircuit(
        circuit=routed,
        coupling=coupling,
        initial_layout=layout,
        final_mapping=dict(logical_to_physical),
        gate_physical_qubits=gate_physical,
        ref_physical_qubits=ref_physical,
        num_swaps=num_swaps,
    )
