"""Device coupling maps and the backend topologies used in the paper.

The paper evaluates on IBM *belem* (5 qubits, T-shaped coupling) and
*ibm-jakarta* (7 qubits, H-shaped coupling).  A :class:`CouplingMap` wraps
the undirected connectivity graph and precomputes all-pairs shortest paths
for the SWAP router.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import networkx as nx

from repro.exceptions import TranspilerError


@dataclass
class CouplingMap:
    """Undirected qubit connectivity of a device."""

    num_qubits: int
    edges: tuple[tuple[int, int], ...]
    name: str = "device"
    _graph: nx.Graph = field(init=False, repr=False)
    _paths: dict[int, dict[int, list[int]]] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.num_qubits <= 0:
            raise TranspilerError(f"num_qubits must be positive, got {self.num_qubits}")
        graph = nx.Graph()
        graph.add_nodes_from(range(self.num_qubits))
        for a, b in self.edges:
            if not (0 <= a < self.num_qubits and 0 <= b < self.num_qubits):
                raise TranspilerError(f"edge ({a}, {b}) references a missing qubit")
            if a == b:
                raise TranspilerError(f"self-loop edge ({a}, {b}) is not allowed")
            graph.add_edge(a, b)
        if self.num_qubits > 1 and not nx.is_connected(graph):
            raise TranspilerError(f"coupling map {self.name!r} is not connected")
        self._graph = graph
        self._paths = dict(nx.all_pairs_shortest_path(graph))
        self.edges = tuple(tuple(sorted(edge)) for edge in graph.edges())

    @property
    def graph(self) -> nx.Graph:
        """The underlying :mod:`networkx` graph."""
        return self._graph

    def is_adjacent(self, qubit_a: int, qubit_b: int) -> bool:
        """Whether a two-qubit gate can run directly between the qubits."""
        return self._graph.has_edge(qubit_a, qubit_b)

    def distance(self, qubit_a: int, qubit_b: int) -> int:
        """Shortest-path distance (number of edges) between two qubits."""
        return len(self._paths[qubit_a][qubit_b]) - 1

    def shortest_path(self, qubit_a: int, qubit_b: int) -> list[int]:
        """One shortest path between the qubits, inclusive of endpoints."""
        return list(self._paths[qubit_a][qubit_b])

    def neighbors(self, qubit: int) -> list[int]:
        """Neighbours of ``qubit`` in the coupling graph."""
        return sorted(self._graph.neighbors(qubit))

    def iter_connected_subsets(self, size: int) -> Iterable[tuple[int, ...]]:
        """Lazily yield connected physical-qubit subsets of ``size`` elements.

        Deterministic (lexicographic ``combinations``) order.  Laziness
        matters on the large device-library lattices: the layout search caps
        its candidate count, so only a prefix of the ``C(n, k)`` subset
        space is ever materialised or connectivity-checked.
        """
        if size <= 0 or size > self.num_qubits:
            raise TranspilerError(
                f"subset size {size} invalid for {self.num_qubits} qubits"
            )
        from itertools import combinations

        for combo in combinations(range(self.num_qubits), size):
            if nx.is_connected(self._graph.subgraph(combo)):
                yield combo

    def connected_subsets(self, size: int) -> list[tuple[int, ...]]:
        """All connected subsets of physical qubits with ``size`` elements.

        Eager form of :meth:`iter_connected_subsets`, kept for callers that
        want the full list (fine on the paper's <= 7-qubit devices).
        """
        return list(self.iter_connected_subsets(size))


def belem_coupling() -> CouplingMap:
    """IBM *belem*: 5 qubits in a T shape (0-1-2, 1-3, 3-4)."""
    return CouplingMap(
        num_qubits=5,
        edges=((0, 1), (1, 2), (1, 3), (3, 4)),
        name="ibmq_belem",
    )


def jakarta_coupling() -> CouplingMap:
    """IBM *jakarta*: 7 qubits in an H shape (0-1-2, 1-3, 3-5, 4-5-6)."""
    return CouplingMap(
        num_qubits=7,
        edges=((0, 1), (1, 2), (1, 3), (3, 5), (4, 5), (5, 6)),
        name="ibm_jakarta",
    )


def linear_coupling(num_qubits: int, name: str = "linear") -> CouplingMap:
    """A simple line topology, useful in tests."""
    edges = tuple((i, i + 1) for i in range(num_qubits - 1))
    return CouplingMap(num_qubits=num_qubits, edges=edges, name=name)


def fully_connected_coupling(num_qubits: int, name: str = "full") -> CouplingMap:
    """All-to-all connectivity (no routing needed), useful in tests."""
    edges = tuple(
        (i, j) for i in range(num_qubits) for j in range(i + 1, num_qubits)
    )
    return CouplingMap(num_qubits=num_qubits, edges=edges, name=name)


NAMED_COUPLINGS = {
    "belem": belem_coupling,
    "ibmq_belem": belem_coupling,
    "jakarta": jakarta_coupling,
    "ibm_jakarta": jakarta_coupling,
}


def get_coupling(name: str) -> CouplingMap:
    """Look up a named device topology."""
    key = name.lower()
    if key not in NAMED_COUPLINGS:
        raise TranspilerError(
            f"unknown device {name!r}; known devices: {sorted(set(NAMED_COUPLINGS))}"
        )
    return NAMED_COUPLINGS[key]()
