"""The compilation target: device topology + native basis + calibration.

A :class:`Target` bundles everything the compilation pipeline needs to know
about the machine a circuit is being lowered onto:

* the :class:`~repro.transpiler.coupling.CouplingMap` (which qubits can talk),
* the native basis (the gate set physical circuits are expressed in),
* optionally the day's :class:`~repro.calibration.snapshot.CalibrationSnapshot`
  (which qubits/couplers are currently noisy).

Each ingredient is *content-digested* so pass artifacts can be cached and
shared: two targets with the same digests are interchangeable for
compilation purposes, regardless of object identity.  The calibration digest
is kept separate from the structural (coupling + basis) digest because only
calibration-dependent passes — noise-aware layout, noise-cost metrics — need
to re-run when the snapshot changes; layout/routing artifacts keyed on the
structural digest survive a calibration refresh (see
:mod:`repro.transpiler.pipeline`).

The calibration object is duck-typed (anything exposing ``single_qubit_error``
/ ``two_qubit_error`` / ``readout_error`` tables works) so this module never
imports :mod:`repro.calibration` and the transpiler stays dependency-free.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional

from repro.transpiler.coupling import CouplingMap

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.calibration.snapshot import CalibrationSnapshot

#: The native basis of all IBM-style devices modelled in this repo.
DEFAULT_BASIS: tuple[str, ...] = ("rz", "sx", "x", "cx")


def coupling_digest(coupling: CouplingMap) -> str:
    """Content digest of a coupling map's structure (qubit count + edges).

    The device *name* is deliberately excluded: two devices with identical
    connectivity produce identical layout/routing artifacts, so they should
    share cache entries.
    """
    hasher = hashlib.blake2b(digest_size=16)
    hasher.update(f"n={coupling.num_qubits};".encode())
    for a, b in sorted(coupling.edges):
        hasher.update(f"{a}-{b};".encode())
    return hasher.hexdigest()


def calibration_digest(calibration: Optional["CalibrationSnapshot"]) -> str:
    """Content digest of a calibration snapshot's error tables.

    ``None`` (no calibration — trivial layout, no noise costs) digests to a
    distinct constant.  The snapshot ``date`` is excluded: two days with
    bit-identical error tables compile identically.
    """
    hasher = hashlib.blake2b(digest_size=16)
    if calibration is None:
        hasher.update(b"<no-calibration>")
        return hasher.hexdigest()
    hasher.update(f"n={calibration.num_qubits};".encode())
    for qubit, error in sorted(calibration.single_qubit_error.items()):
        hasher.update(f"sq:{qubit}:{error!r};".encode())
    for pair, error in sorted(calibration.two_qubit_error.items()):
        hasher.update(f"cx:{pair}:{error!r};".encode())
    for qubit, error in sorted(calibration.readout_error.items()):
        hasher.update(f"ro:{qubit}:{error!r};".encode())
    return hasher.hexdigest()


@dataclass(frozen=True)
class Target:
    """What the pipeline compiles *onto*: topology, basis, calibration.

    Attributes
    ----------
    coupling:
        The device connectivity graph.
    basis:
        Native gate names; physical circuits are expressed in this basis.
    calibration:
        Optional error-rate snapshot driving the noise-aware passes.  A
        target without calibration compiles with the trivial layout.
    """

    coupling: CouplingMap
    basis: tuple[str, ...] = DEFAULT_BASIS
    calibration: Optional["CalibrationSnapshot"] = None
    _digests: dict = field(
        default_factory=dict, init=False, repr=False, compare=False, hash=False
    )

    def __post_init__(self) -> None:
        # Only the IBM-style default basis is lowered today
        # (repro.transpiler.basis.to_basis is hard-wired to it); the field
        # exists so future basis support changes cache keys correctly.
        # Reject anything else rather than silently compiling to the wrong
        # gate set.
        if tuple(self.basis) != DEFAULT_BASIS:
            from repro.exceptions import TranspilerError

            raise TranspilerError(
                f"unsupported native basis {self.basis!r}; only "
                f"{DEFAULT_BASIS!r} is currently lowered"
            )

    @property
    def num_qubits(self) -> int:
        """Number of physical qubits on the target device."""
        return self.coupling.num_qubits

    @property
    def name(self) -> str:
        """The underlying device name (for reports and logs)."""
        return self.coupling.name

    # ------------------------------------------------------------------
    # Content digests (memoised per instance; all inputs are immutable
    # by convention)
    # ------------------------------------------------------------------
    @property
    def structural_digest(self) -> str:
        """Digest of the calibration-independent part (coupling + basis)."""
        cached = self._digests.get("structural")
        if cached is None:
            hasher = hashlib.blake2b(digest_size=16)
            hasher.update(coupling_digest(self.coupling).encode())
            hasher.update("|".join(self.basis).encode())
            cached = hasher.hexdigest()
            self._digests["structural"] = cached
        return cached

    @property
    def calibration_key(self) -> str:
        """Digest of the calibration snapshot (stable for ``None``)."""
        cached = self._digests.get("calibration")
        if cached is None:
            cached = calibration_digest(self.calibration)
            self._digests["calibration"] = cached
        return cached

    @property
    def digest(self) -> str:
        """Full content digest: structural digest + calibration digest."""
        cached = self._digests.get("full")
        if cached is None:
            hasher = hashlib.blake2b(digest_size=16)
            hasher.update(self.structural_digest.encode())
            hasher.update(self.calibration_key.encode())
            cached = hasher.hexdigest()
            self._digests["full"] = cached
        return cached

    # ------------------------------------------------------------------
    def with_calibration(self, calibration: Optional["CalibrationSnapshot"]) -> "Target":
        """The same device under a different calibration snapshot.

        This is the per-day recompilation entry point: the returned target
        shares the coupling map (hence the structural digest and every
        structure-keyed pass artifact) and differs only in the calibration
        digest.
        """
        return replace(self, calibration=calibration)
