"""Logical-to-physical compilation: layout, routing, basis translation."""

from repro.transpiler.basis import (
    decompose_gate,
    normalize_angle,
    pulse_count_for_angle,
    to_basis,
)
from repro.transpiler.coupling import (
    CouplingMap,
    belem_coupling,
    fully_connected_coupling,
    get_coupling,
    jakarta_coupling,
    linear_coupling,
)
from repro.transpiler.layout import Layout, noise_aware_layout, trivial_layout
from repro.transpiler.metrics import (
    CircuitMetrics,
    compression_ratio,
    expected_error_cost,
    physical_metrics,
)
from repro.transpiler.passes import TranspiledCircuit, transpile
from repro.transpiler.routing import RoutedCircuit, route_circuit

__all__ = [
    "CouplingMap",
    "belem_coupling",
    "jakarta_coupling",
    "linear_coupling",
    "fully_connected_coupling",
    "get_coupling",
    "Layout",
    "trivial_layout",
    "noise_aware_layout",
    "RoutedCircuit",
    "route_circuit",
    "to_basis",
    "decompose_gate",
    "normalize_angle",
    "pulse_count_for_angle",
    "CircuitMetrics",
    "physical_metrics",
    "expected_error_cost",
    "compression_ratio",
    "TranspiledCircuit",
    "transpile",
]
