"""Logical-to-physical compilation: staged pipeline, layout, routing, basis."""

from repro.transpiler.basis import (
    decompose_gate,
    normalize_angle,
    pulse_count_for_angle,
    to_basis,
)
from repro.transpiler.coupling import (
    CouplingMap,
    belem_coupling,
    fully_connected_coupling,
    get_coupling,
    jakarta_coupling,
    linear_coupling,
)
from repro.transpiler.devices import (
    DEVICE_LIBRARY,
    get_device_coupling,
    grid_coupling,
    heavy_hex_coupling,
    list_devices,
    ring_coupling,
)
from repro.transpiler.layout import (
    Layout,
    LayoutDecision,
    noise_aware_layout,
    scored_noise_aware_layout,
    trivial_layout,
)
from repro.transpiler.metrics import (
    CircuitMetrics,
    compression_ratio,
    expected_error_cost,
    physical_metrics,
)
from repro.transpiler.passes import (
    TranspiledCircuit,
    legacy_transpile,
    transpile,
    transpile_batch,
    validate_initial_layout,
)
from repro.transpiler.pipeline import (
    PassManager,
    PassManagerStats,
    PipelineConfig,
    default_pass_manager,
    set_default_pass_manager,
)
from repro.transpiler.routing import RoutedCircuit, route_circuit
from repro.transpiler.target import Target, calibration_digest, coupling_digest

__all__ = [
    "CouplingMap",
    "belem_coupling",
    "jakarta_coupling",
    "linear_coupling",
    "fully_connected_coupling",
    "get_coupling",
    "DEVICE_LIBRARY",
    "get_device_coupling",
    "grid_coupling",
    "heavy_hex_coupling",
    "ring_coupling",
    "list_devices",
    "Layout",
    "LayoutDecision",
    "trivial_layout",
    "noise_aware_layout",
    "scored_noise_aware_layout",
    "RoutedCircuit",
    "route_circuit",
    "to_basis",
    "decompose_gate",
    "normalize_angle",
    "pulse_count_for_angle",
    "CircuitMetrics",
    "physical_metrics",
    "expected_error_cost",
    "compression_ratio",
    "TranspiledCircuit",
    "transpile",
    "transpile_batch",
    "legacy_transpile",
    "validate_initial_layout",
    "Target",
    "coupling_digest",
    "calibration_digest",
    "PassManager",
    "PassManagerStats",
    "PipelineConfig",
    "default_pass_manager",
    "set_default_pass_manager",
]
