"""Translation to the native basis ``{rz, sx, x, cx}``.

This pass reproduces the physical-circuit-length mechanism that motivates
QuCAD: on IBM-style hardware ``rz`` is a virtual (noise-free, zero-duration)
frame change, while ``sx``/``x`` are real pulses and ``cx`` is the expensive
two-qubit interaction.  A rotation whose angle sits at a *compression level*
(0, pi/2, pi, 3pi/2 modulo 2 pi) therefore needs fewer — or zero — pulses
than a generic angle, and a controlled rotation at angle 0 vanishes
altogether.  Compressing parameters onto those levels shortens the physical
circuit, which is exactly why compression helps under noise.
"""

from __future__ import annotations

import numpy as np

from repro.circuits import QuantumCircuit
from repro.exceptions import TranspilerError
from repro.gates import Gate

#: Angle comparisons use this tolerance: values this close to a special
#: angle are treated as exactly that angle.
ANGLE_ATOL = 1e-9

TWO_PI = 2.0 * np.pi


def normalize_angle(theta: float, period: float = TWO_PI) -> float:
    """Reduce ``theta`` into ``[0, period)`` with tolerance snapping."""
    reduced = float(theta) % period
    if reduced > period - ANGLE_ATOL:
        reduced = 0.0
    return reduced


def _is(theta: float, value: float) -> bool:
    return abs(theta - value) < 1e-9


def _rz(qubit: int, angle: float) -> list[Gate]:
    angle = normalize_angle(angle)
    if _is(angle, 0.0):
        return []
    return [Gate("rz", (qubit,), param=angle)]


def decompose_rz(theta: float, qubit: int) -> list[Gate]:
    """RZ is virtual: emit it directly (or nothing for angle 0)."""
    return _rz(qubit, theta)


def decompose_rx(theta: float, qubit: int) -> list[Gate]:
    """RX in the native basis.

    Pulse cost: 0 at angle 0, one pulse at pi/2, pi, 3pi/2, two pulses
    otherwise (standard ``RZ-SX-RZ-SX-RZ`` Euler form).
    """
    angle = normalize_angle(theta)
    if _is(angle, 0.0):
        return []
    if _is(angle, np.pi):
        return [Gate("x", (qubit,))]
    if _is(angle, np.pi / 2):
        return [Gate("sx", (qubit,))]
    if _is(angle, 3 * np.pi / 2):
        return _rz(qubit, np.pi) + [Gate("sx", (qubit,))] + _rz(qubit, np.pi)
    return (
        _rz(qubit, np.pi / 2)
        + [Gate("sx", (qubit,))]
        + _rz(qubit, angle + np.pi)
        + [Gate("sx", (qubit,))]
        + _rz(qubit, np.pi / 2)
    )


def decompose_ry(theta: float, qubit: int) -> list[Gate]:
    """RY in the native basis via ``RY = RZ(pi/2) RX RZ(-pi/2)`` (up to phase).

    The circuit applies ``rz(-pi/2)`` first, so the operator product is
    ``RZ(pi/2) · RX(theta) · RZ(-pi/2)``, which conjugates X into Y.
    """
    angle = normalize_angle(theta)
    if _is(angle, 0.0):
        return []
    return _rz(qubit, -np.pi / 2) + decompose_rx(angle, qubit) + _rz(qubit, np.pi / 2)


def decompose_h(qubit: int) -> list[Gate]:
    """Hadamard: one SX pulse between virtual Z rotations."""
    return _rz(qubit, np.pi / 2) + [Gate("sx", (qubit,))] + _rz(qubit, np.pi / 2)


def decompose_swap(qubit_a: int, qubit_b: int) -> list[Gate]:
    """SWAP as three CX gates."""
    return [
        Gate("cx", (qubit_a, qubit_b)),
        Gate("cx", (qubit_b, qubit_a)),
        Gate("cx", (qubit_a, qubit_b)),
    ]


def decompose_controlled_rotation(
    name: str, theta: float, control: int, target: int
) -> list[Gate]:
    """Controlled rotations via the standard two-CX construction.

    * angle ``0 (mod 4 pi)``: identity — nothing is emitted;
    * angle ``2 pi (mod 4 pi)``: equals Z on the control — a free ``rz(pi)``;
    * otherwise two CX gates plus single-qubit rotations on the target.
    """
    if name == "cp":
        # The controlled phase has period 2 pi (unlike CRX/CRY/CRZ) and equals
        # CRZ up to a virtual rotation on the control.
        reduced = normalize_angle(theta)
        if reduced < ANGLE_ATOL:
            return []
        return _rz(control, reduced / 2.0) + decompose_controlled_rotation(
            "crz", reduced, control, target
        )
    angle = float(theta) % (2 * TWO_PI)
    if angle < ANGLE_ATOL or angle > 2 * TWO_PI - ANGLE_ATOL:
        return []
    if abs(angle - TWO_PI) < ANGLE_ATOL:
        return _rz(control, np.pi)
    if abs(angle - np.pi) < ANGLE_ATOL or abs(angle - 3 * np.pi) < ANGLE_ATOL:
        # A controlled rotation by pi equals a controlled Pauli up to a
        # virtual phase on the control: CRX(pi) = Sdg_c . CX, CRY(pi) =
        # Sdg_c . CY, CRZ(pi) = Sdg_c . CZ (and the 3*pi variants pick up S
        # instead of Sdg).  These cost a single CX, which is why pi is a
        # compression level for entangling gates as well.
        control_phase = -np.pi / 2 if abs(angle - np.pi) < ANGLE_ATOL else np.pi / 2
        phase_fix = _rz(control, control_phase)
        if name == "crx":
            return [Gate("cx", (control, target))] + phase_fix
        if name == "cry":
            return (
                _rz(target, -np.pi / 2)
                + [Gate("cx", (control, target))]
                + _rz(target, np.pi / 2)
                + phase_fix
            )
        if name == "crz":
            return (
                decompose_h(target)
                + [Gate("cx", (control, target))]
                + decompose_h(target)
                + phase_fix
            )
    half = angle / 2.0
    if name == "crz":
        return (
            _rz(target, half)
            + [Gate("cx", (control, target))]
            + _rz(target, -half)
            + [Gate("cx", (control, target))]
        )
    if name == "cry":
        return (
            decompose_ry(half, target)
            + [Gate("cx", (control, target))]
            + decompose_ry(-half, target)
            + [Gate("cx", (control, target))]
        )
    if name == "crx":
        return (
            decompose_h(target)
            + decompose_controlled_rotation("crz", angle, control, target)
            + decompose_h(target)
        )
    raise TranspilerError(f"unsupported controlled rotation {name!r}")


def decompose_gate(gate: Gate) -> list[Gate]:
    """Translate one gate into the native basis."""
    name = gate.name
    if name in {"rz", "p"}:
        return decompose_rz(gate.param, gate.qubits[0]) if name == "rz" else _rz(
            gate.qubits[0], gate.param
        )
    if name in {"x", "sx", "cx"}:
        return [Gate(name, gate.qubits)]
    if name == "id":
        return []
    if name == "z":
        return _rz(gate.qubits[0], np.pi)
    if name == "s":
        return _rz(gate.qubits[0], np.pi / 2)
    if name == "sdg":
        return _rz(gate.qubits[0], -np.pi / 2)
    if name == "t":
        return _rz(gate.qubits[0], np.pi / 4)
    if name == "tdg":
        return _rz(gate.qubits[0], -np.pi / 4)
    if name == "sxdg":
        return _rz(gate.qubits[0], np.pi) + [Gate("sx", gate.qubits)] + _rz(
            gate.qubits[0], np.pi
        )
    if name == "y":
        return _rz(gate.qubits[0], np.pi) + [Gate("x", gate.qubits)]
    if name == "h":
        return decompose_h(gate.qubits[0])
    if name == "rx":
        return decompose_rx(gate.param, gate.qubits[0])
    if name == "ry":
        return decompose_ry(gate.param, gate.qubits[0])
    if name == "swap":
        return decompose_swap(*gate.qubits)
    if name == "cz":
        control, target = gate.qubits
        return decompose_h(target) + [Gate("cx", (control, target))] + decompose_h(target)
    if name == "cy":
        control, target = gate.qubits
        return (
            _rz(target, -np.pi / 2)
            + [Gate("cx", (control, target))]
            + _rz(target, np.pi / 2)
        )
    if name in {"crx", "cry", "crz", "cp"}:
        if gate.param is None:
            raise TranspilerError(
                f"gate {name!r} must be bound before basis translation"
            )
        return decompose_controlled_rotation(name, gate.param, *gate.qubits)
    if name == "rzz":
        control, target = gate.qubits
        return (
            [Gate("cx", (control, target))]
            + _rz(target, gate.param)
            + [Gate("cx", (control, target))]
        )
    raise TranspilerError(f"no basis decomposition registered for gate {name!r}")


def to_basis(circuit: QuantumCircuit) -> QuantumCircuit:
    """Translate a fully bound circuit into the native basis.

    Raises :class:`TranspilerError` if any parametric gate is unbound.
    """
    result = QuantumCircuit(circuit.num_qubits, name=f"{circuit.name}:basis")
    for gate in circuit.gates:
        if gate.is_parametric and gate.param is None:
            raise TranspilerError(
                f"gate {gate.name!r} (ref {gate.param_ref}) must be bound before "
                "basis translation"
            )
        for native in decompose_gate(gate):
            result.append(native)
    return result


def pulse_count_for_angle(theta: float) -> int:
    """Number of physical pulses a single-qubit rotation at ``theta`` costs."""
    angle = normalize_angle(theta)
    if _is(angle, 0.0):
        return 0
    if _is(angle, np.pi) or _is(angle, np.pi / 2) or _is(angle, 3 * np.pi / 2):
        return 1
    return 2
