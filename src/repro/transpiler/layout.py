"""Logical-to-physical qubit layout selection.

Two strategies are provided:

* :func:`trivial_layout` maps logical qubit ``i`` to physical qubit ``i``.
* :func:`noise_aware_layout` enumerates connected physical subsets and
  assignment permutations, scoring each candidate by the calibration error it
  would accumulate for the circuit's interaction pattern (the standard
  noise-aware mapping idea the paper cites as related work [11]).

:func:`scored_noise_aware_layout` is the same search but additionally
returns a :class:`LayoutDecision` — the winning layout together with the
*decision boundary* (how far the calibration may drift before the winner
could change).  The staged pipeline uses it to prove that yesterday's layout
is still optimal for today's snapshot and skip the whole search.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.circuits import QuantumCircuit
from repro.exceptions import TranspilerError
from repro.transpiler.coupling import CouplingMap

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.calibration.snapshot import CalibrationSnapshot


@dataclass(frozen=True)
class Layout:
    """An injective map from logical qubits to physical qubits."""

    logical_to_physical: tuple[int, ...]

    def __post_init__(self) -> None:
        physical = self.logical_to_physical
        if len(set(physical)) != len(physical):
            raise TranspilerError(f"layout {physical} maps two logical qubits together")

    @property
    def num_logical(self) -> int:
        """Number of logical qubits placed by the layout."""
        return len(self.logical_to_physical)

    def physical(self, logical: int) -> int:
        """Physical qubit hosting ``logical``."""
        return self.logical_to_physical[logical]

    def as_dict(self) -> dict[int, int]:
        """The layout as a ``{logical: physical}`` dict."""
        return {i: p for i, p in enumerate(self.logical_to_physical)}

    def inverse(self) -> dict[int, int]:
        """The layout as a ``{physical: logical}`` dict."""
        return {p: i for i, p in enumerate(self.logical_to_physical)}


def interaction_counts(circuit: QuantumCircuit) -> dict[tuple[int, int], int]:
    """Count two-qubit interactions per unordered logical pair."""
    counts: dict[tuple[int, int], int] = {}
    for gate in circuit.gates:
        if gate.num_qubits == 2:
            pair = tuple(sorted(gate.qubits))
            counts[pair] = counts.get(pair, 0) + 1
    return counts


def single_qubit_gate_counts(circuit: QuantumCircuit) -> dict[int, int]:
    """Count single-qubit gates per logical qubit."""
    counts: dict[int, int] = {}
    for gate in circuit.gates:
        if gate.num_qubits == 1:
            counts[gate.qubits[0]] = counts.get(gate.qubits[0], 0) + 1
    return counts


def trivial_layout(num_logical: int, coupling: CouplingMap) -> Layout:
    """Map logical qubit ``i`` to physical qubit ``i``."""
    if num_logical > coupling.num_qubits:
        raise TranspilerError(
            f"circuit needs {num_logical} qubits but device has {coupling.num_qubits}"
        )
    return Layout(tuple(range(num_logical)))


def _feature_index(calibration: "CalibrationSnapshot") -> dict[str, int]:
    """Map calibration feature names to their :meth:`to_vector` positions.

    Derived directly from :meth:`CalibrationSnapshot.feature_names`
    (``sq_{q}`` / ``cx_{a}_{b}`` / ``ro_{q}``), so the coefficient layout
    can never drift out of sync with the snapshot's vectorization order.
    """
    return {name: position for position, name in enumerate(calibration.feature_names())}


def _routed_layout_cost(
    circuit: QuantumCircuit,
    assignment: tuple[int, ...],
    coupling: CouplingMap,
    calibration: "CalibrationSnapshot",
    feature_index: Optional[dict] = None,
    calibration_vector: Optional[np.ndarray] = None,
) -> tuple[float, np.ndarray]:
    """Expected accumulated error after actually routing the candidate layout.

    Every candidate assignment is routed with the same SWAP router that the
    final transpilation will use, and the routed gates are charged their
    calibration error (a SWAP is three CX, a controlled rotation two CX, a
    generic single-qubit rotation two pulses).  This makes the layout both
    noise-aware and routing-aware, mirroring noise-adaptive mapping [11].

    Returns ``(cost, coefficients)``.  The cost is linear in the
    calibration's feature vector ``v``: ``cost = c . v`` with the
    non-negative per-feature coefficient vector ``c`` (gates touching error
    rates absent from the calibration tables contribute exactly 0 for *any*
    snapshot with the same feature layout, so they carry no coefficient).
    The cost is evaluated as that dot product, which makes it a pure
    function of ``(c, v)``: two candidates with identical coefficient
    vectors score bit-identically under *every* calibration — the property
    the :class:`LayoutDecision` drift bound uses to discharge symmetric
    ties.
    """
    from repro.transpiler.routing import route_circuit

    if feature_index is None:
        feature_index = _feature_index(calibration)
    if calibration_vector is None:
        calibration_vector = calibration.to_vector()
    routed = route_circuit(circuit, coupling, Layout(assignment))
    coefficients = np.zeros(len(feature_index))
    for gate in routed.circuit.gates:
        if gate.num_qubits == 2:
            if gate.name == "swap":
                multiplier = 3.0
            elif gate.name in {"cx", "cz", "cy"}:
                multiplier = 1.0
            else:
                multiplier = 2.0
            low, high = sorted(gate.qubits)
            feature = f"cx_{low}_{high}"
        else:
            multiplier = 2.0 if gate.is_parametric else 1.0
            feature = f"sq_{gate.qubits[0]}"
        position = feature_index.get(feature)
        if position is not None:
            coefficients[position] += multiplier
    for logical in range(circuit.num_qubits):
        position = feature_index.get(f"ro_{routed.final_mapping[logical]}")
        if position is not None:
            coefficients[position] += 1.0
    cost = float(coefficients @ calibration_vector) if coefficients.size else 0.0
    return cost, coefficients


@dataclass(frozen=True)
class LayoutDecision:
    """The outcome of one noise-aware layout search, with its safety boundary.

    Every candidate's cost is *linear* in the calibration feature vector:
    ``cost_b(v) = c_b . v`` with non-negative coefficients.  For the winner
    ``w`` and any other enumerated candidate ``b``,

    ``cost_b(v') - cost_w(v') >= gap_b - |c_b - c_w| . |v' - v|``

    so the winner provably stays *strictly* optimal at ``v'`` whenever every
    candidate's decision-time gap exceeds its coefficient-difference-weighted
    drift (plus a tiny float-safety slack).  Inside that boundary a fresh
    search at ``v'`` would pick the same assignment — the search compares
    candidates with strict ``<`` in a deterministic enumeration order — so
    the cached layout (and everything routed from it) can be reused with
    bit-identical results.

    Candidates whose coefficient vector *equals* the winner's (symmetric
    assignments charging exactly the same couplers/qubits — the common tie
    for the QuCAD ansatz) score bit-identically under every calibration
    because the cost is evaluated as the same dot product; the strict-``<``
    tie-break then keeps the earlier-enumerated winner forever, so those
    rows are dropped from the boundary at construction.  Ties between
    *different* coefficient vectors (``gap == 0``, ``diff != 0``)
    conservatively disable reuse: any drift favouring the runner-up flips
    the winner.

    Attributes
    ----------
    layout:
        The winning assignment.
    best_cost:
        Cost of the winner at decision time.
    gaps:
        Per-candidate cost gap ``cost_b - best_cost`` for every enumerated
        non-winning candidate (shape ``(candidates - 1,)``).
    coeff_diffs:
        Matching ``|c_b - c_w|`` rows (shape ``(candidates - 1, features)``).
    feature_names:
        The calibration's feature layout at decision time.
    calibration_vector:
        The calibration's feature vector at decision time.
    max_candidates:
        The enumeration cap in force (reuse requires the same cap, since the
        optimality proof only covers the enumerated candidate set).
    """

    layout: Layout
    best_cost: float
    gaps: np.ndarray
    coeff_diffs: np.ndarray
    feature_names: tuple[str, ...]
    calibration_vector: np.ndarray
    max_candidates: Optional[int] = None

    @property
    def margin(self) -> float:
        """Smallest cost gap between the winner and any other candidate."""
        return float(np.min(self.gaps)) if self.gaps.size else float("inf")

    def _slack(self) -> float:
        """Float-safety slack absorbing accumulation-order rounding noise."""
        return 1e-12 * (1.0 + abs(self.best_cost))

    def still_optimal_for(self, calibration: "CalibrationSnapshot") -> bool:
        """Whether the cached winner provably stays optimal for ``calibration``.

        Requires the snapshot to expose the same feature layout the decision
        was made under; any mismatch conservatively returns ``False``.
        """
        if tuple(calibration.feature_names()) != self.feature_names:
            return False
        if not self.gaps.size:
            return True
        drift = np.abs(calibration.to_vector() - self.calibration_vector)
        return bool(np.all(self.gaps > self.coeff_diffs @ drift + self._slack()))


def scored_noise_aware_layout(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    calibration: "CalibrationSnapshot",
    max_candidates: Optional[int] = None,
) -> LayoutDecision:
    """Run the noise-aware layout search and report its decision boundary.

    Identical enumeration order and tie-breaking to
    :func:`noise_aware_layout` (which delegates here), plus the per-candidate
    gap/coefficient bookkeeping that enables provably-safe layout reuse
    across calibration drift.
    """
    num_logical = circuit.num_qubits
    if num_logical > coupling.num_qubits:
        raise TranspilerError(
            f"circuit needs {num_logical} qubits but device has {coupling.num_qubits}"
        )
    feature_index = _feature_index(calibration)
    calibration_vector = calibration.to_vector()
    scored: list[tuple[float, np.ndarray]] = []
    best_index: Optional[int] = None
    best_assignment: Optional[tuple[int, ...]] = None
    best_cost = float("inf")
    for subset in coupling.iter_connected_subsets(num_logical):
        for assignment in permutations(subset):
            cost, coefficients = _routed_layout_cost(
                circuit, assignment, coupling, calibration,
                feature_index, calibration_vector,
            )
            if cost < best_cost:
                best_cost = cost
                best_assignment = assignment
                best_index = len(scored)
            scored.append((cost, coefficients))
            if max_candidates is not None and len(scored) >= max_candidates:
                break
        if max_candidates is not None and len(scored) >= max_candidates:
            break
    if best_assignment is None or best_index is None:
        raise TranspilerError("no valid layout found")
    best_coefficients = scored[best_index][1]
    gap_rows = []
    diff_rows = []
    for index, (cost, coefficients) in enumerate(scored):
        if index == best_index:
            continue
        difference = np.abs(coefficients - best_coefficients)
        if not difference.any():
            continue  # identical coefficients: tied forever, never overtakes
        gap_rows.append(cost - best_cost)
        diff_rows.append(difference)
    if gap_rows:
        gaps = np.array(gap_rows)
        coeff_diffs = np.stack(diff_rows)
    else:
        gaps = np.zeros(0)
        coeff_diffs = np.zeros((0, len(feature_index)))
    return LayoutDecision(
        layout=Layout(best_assignment),
        best_cost=best_cost,
        gaps=gaps,
        coeff_diffs=coeff_diffs,
        feature_names=tuple(feature_index),  # insertion order == feature_names()
        calibration_vector=calibration_vector,
        max_candidates=max_candidates,
    )


def noise_aware_layout(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    calibration: "CalibrationSnapshot",
    max_candidates: Optional[int] = None,
) -> Layout:
    """Pick the lowest-cost assignment of logical to physical qubits.

    Enumerates connected physical subsets of the required size and all
    permutations within each subset, routing each candidate to score it; the
    devices used in the paper have at most 7 qubits so the search space stays
    tiny.  Larger device-library targets go through the pipeline, which caps
    the enumeration (see :class:`repro.transpiler.pipeline.PassManager`).
    """
    return scored_noise_aware_layout(
        circuit, coupling, calibration, max_candidates=max_candidates
    ).layout
