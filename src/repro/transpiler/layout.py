"""Logical-to-physical qubit layout selection.

Two strategies are provided:

* :func:`trivial_layout` maps logical qubit ``i`` to physical qubit ``i``.
* :func:`noise_aware_layout` enumerates connected physical subsets and
  assignment permutations, scoring each candidate by the calibration error it
  would accumulate for the circuit's interaction pattern (the standard
  noise-aware mapping idea the paper cites as related work [11]).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations
from typing import TYPE_CHECKING, Optional

from repro.circuits import QuantumCircuit
from repro.exceptions import TranspilerError
from repro.transpiler.coupling import CouplingMap

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.calibration.snapshot import CalibrationSnapshot


@dataclass(frozen=True)
class Layout:
    """An injective map from logical qubits to physical qubits."""

    logical_to_physical: tuple[int, ...]

    def __post_init__(self) -> None:
        physical = self.logical_to_physical
        if len(set(physical)) != len(physical):
            raise TranspilerError(f"layout {physical} maps two logical qubits together")

    @property
    def num_logical(self) -> int:
        """Number of logical qubits placed by the layout."""
        return len(self.logical_to_physical)

    def physical(self, logical: int) -> int:
        """Physical qubit hosting ``logical``."""
        return self.logical_to_physical[logical]

    def as_dict(self) -> dict[int, int]:
        """The layout as a ``{logical: physical}`` dict."""
        return {i: p for i, p in enumerate(self.logical_to_physical)}

    def inverse(self) -> dict[int, int]:
        """The layout as a ``{physical: logical}`` dict."""
        return {p: i for i, p in enumerate(self.logical_to_physical)}


def interaction_counts(circuit: QuantumCircuit) -> dict[tuple[int, int], int]:
    """Count two-qubit interactions per unordered logical pair."""
    counts: dict[tuple[int, int], int] = {}
    for gate in circuit.gates:
        if gate.num_qubits == 2:
            pair = tuple(sorted(gate.qubits))
            counts[pair] = counts.get(pair, 0) + 1
    return counts


def single_qubit_gate_counts(circuit: QuantumCircuit) -> dict[int, int]:
    """Count single-qubit gates per logical qubit."""
    counts: dict[int, int] = {}
    for gate in circuit.gates:
        if gate.num_qubits == 1:
            counts[gate.qubits[0]] = counts.get(gate.qubits[0], 0) + 1
    return counts


def trivial_layout(num_logical: int, coupling: CouplingMap) -> Layout:
    """Map logical qubit ``i`` to physical qubit ``i``."""
    if num_logical > coupling.num_qubits:
        raise TranspilerError(
            f"circuit needs {num_logical} qubits but device has {coupling.num_qubits}"
        )
    return Layout(tuple(range(num_logical)))


def _routed_layout_cost(
    circuit: QuantumCircuit,
    assignment: tuple[int, ...],
    coupling: CouplingMap,
    calibration: "CalibrationSnapshot",
) -> float:
    """Expected accumulated error after actually routing the candidate layout.

    Every candidate assignment is routed with the same SWAP router that the
    final transpilation will use, and the routed gates are charged their
    calibration error (a SWAP is three CX, a controlled rotation two CX, a
    generic single-qubit rotation two pulses).  This makes the layout both
    noise-aware and routing-aware, mirroring noise-adaptive mapping [11].
    """
    from repro.transpiler.routing import route_circuit

    routed = route_circuit(circuit, coupling, Layout(assignment))
    cost = 0.0
    for gate in routed.circuit.gates:
        if gate.num_qubits == 2:
            error = calibration.cx_error(*gate.qubits)
            if gate.name == "swap":
                cost += 3.0 * error
            elif gate.name in {"cx", "cz", "cy"}:
                cost += error
            else:
                cost += 2.0 * error
        else:
            multiplier = 2.0 if gate.is_parametric else 1.0
            cost += multiplier * calibration.gate_error(gate.qubits[0])
    for logical in range(circuit.num_qubits):
        cost += calibration.readout(routed.final_mapping[logical])
    return cost


def noise_aware_layout(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    calibration: "CalibrationSnapshot",
    max_candidates: Optional[int] = None,
) -> Layout:
    """Pick the lowest-cost assignment of logical to physical qubits.

    Enumerates connected physical subsets of the required size and all
    permutations within each subset, routing each candidate to score it; the
    devices used in the paper have at most 7 qubits so the search space stays
    tiny.
    """
    num_logical = circuit.num_qubits
    if num_logical > coupling.num_qubits:
        raise TranspilerError(
            f"circuit needs {num_logical} qubits but device has {coupling.num_qubits}"
        )
    best_assignment: Optional[tuple[int, ...]] = None
    best_cost = float("inf")
    candidates = 0
    for subset in coupling.connected_subsets(num_logical):
        for assignment in permutations(subset):
            cost = _routed_layout_cost(circuit, assignment, coupling, calibration)
            candidates += 1
            if cost < best_cost:
                best_cost = cost
                best_assignment = assignment
            if max_candidates is not None and candidates >= max_candidates:
                break
        if max_candidates is not None and candidates >= max_candidates:
            break
    if best_assignment is None:
        raise TranspilerError("no valid layout found")
    return Layout(best_assignment)
