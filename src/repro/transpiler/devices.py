"""Device library: parametric topologies beyond the paper's two IBM chips.

The paper evaluates on *ibmq_belem* (5 qubits) and *ibm_jakarta* (7 qubits)
only.  For scenario diversity — and to exercise the staged compilation
pipeline on devices where the layout search space actually matters — this
module provides a library of synthetic-but-realistic topologies:

* **line_N** — 1-D chains (the minimal-connectivity worst case for routing),
* **ring_N** — cycles (every qubit has degree 2 but no dead ends),
* **grid_RxC** — 2-D lattices (the Google-style square grid),
* **heavy_hex_16 / heavy_hex_27** — the IBM heavy-hex lattice at Falcon
  sizes (*ibmq_guadalupe*-like and *ibm_hanoi*-like connectivity).

Each library entry is a factory returning a fresh
:class:`~repro.transpiler.coupling.CouplingMap`.  :func:`get_device_coupling`
resolves a device name against this library first and falls back to the
paper's named IBM couplings, so every call site that accepts a device name
(the experiments CLI, :func:`repro.calibration.synthetic.generate_device_history`)
understands both vocabularies.  Topologies span 5–27 qubits; note that the
density-matrix *simulation* cost is exponential in device size, so the
longitudinal experiments should stick to the <= 8-qubit entries while the
larger lattices serve the transpiler and its benchmarks.
"""

from __future__ import annotations

from typing import Callable

from repro.exceptions import TranspilerError
from repro.transpiler.coupling import (
    CouplingMap,
    NAMED_COUPLINGS,
    linear_coupling,
)


def ring_coupling(num_qubits: int, name: str | None = None) -> CouplingMap:
    """A cycle topology: qubit ``i`` couples to ``(i + 1) % n``."""
    if num_qubits < 3:
        raise TranspilerError(f"a ring needs at least 3 qubits, got {num_qubits}")
    edges = tuple((i, (i + 1) % num_qubits) for i in range(num_qubits))
    return CouplingMap(
        num_qubits=num_qubits, edges=edges, name=name or f"ring_{num_qubits}"
    )


def grid_coupling(rows: int, cols: int, name: str | None = None) -> CouplingMap:
    """A ``rows x cols`` square lattice in row-major qubit order."""
    if rows < 1 or cols < 1:
        raise TranspilerError(f"grid dimensions must be positive, got {rows}x{cols}")
    edges = []
    for r in range(rows):
        for c in range(cols):
            q = r * cols + c
            if c + 1 < cols:
                edges.append((q, q + 1))
            if r + 1 < rows:
                edges.append((q, q + cols))
    return CouplingMap(
        num_qubits=rows * cols, edges=tuple(edges), name=name or f"grid_{rows}x{cols}"
    )


#: The 16-qubit heavy-hex lattice (ibmq_guadalupe connectivity).
_HEAVY_HEX_16_EDGES = (
    (0, 1), (1, 2), (1, 4), (2, 3), (3, 5), (4, 7), (5, 8),
    (6, 7), (7, 10), (8, 9), (8, 11), (10, 12), (11, 14),
    (12, 13), (12, 15), (13, 14),
)

#: The 27-qubit heavy-hex lattice (IBM Falcon: ibm_hanoi / ibmq_montreal).
_HEAVY_HEX_27_EDGES = (
    (0, 1), (1, 2), (1, 4), (2, 3), (3, 5), (4, 7), (5, 8),
    (6, 7), (7, 10), (8, 9), (8, 11), (10, 12), (11, 14),
    (12, 13), (12, 15), (13, 14), (14, 16), (15, 18), (16, 19),
    (17, 18), (18, 21), (19, 20), (19, 22), (21, 23), (22, 25),
    (23, 24), (24, 25), (25, 26),
)


def heavy_hex_coupling(num_qubits: int = 27, name: str | None = None) -> CouplingMap:
    """An IBM heavy-hex lattice at one of the supported Falcon sizes.

    Heavy-hex is IBM's production topology: hexagon cells whose edges carry
    an extra qubit, keeping every qubit at degree <= 3.  Supported sizes are
    16 (*ibmq_guadalupe*-like) and 27 (*ibm_hanoi*-like).
    """
    if num_qubits == 16:
        edges = _HEAVY_HEX_16_EDGES
    elif num_qubits == 27:
        edges = _HEAVY_HEX_27_EDGES
    else:
        raise TranspilerError(
            f"heavy-hex lattice is defined for 16 or 27 qubits, got {num_qubits}"
        )
    return CouplingMap(
        num_qubits=num_qubits, edges=edges, name=name or f"heavy_hex_{num_qubits}"
    )


#: name -> CouplingMap factory for every library topology (5–27 qubits).
DEVICE_LIBRARY: dict[str, Callable[[], CouplingMap]] = {
    "line_5": lambda: linear_coupling(5, name="line_5"),
    "line_7": lambda: linear_coupling(7, name="line_7"),
    "line_12": lambda: linear_coupling(12, name="line_12"),
    "ring_5": lambda: ring_coupling(5),
    "ring_6": lambda: ring_coupling(6),
    "ring_8": lambda: ring_coupling(8),
    "ring_12": lambda: ring_coupling(12),
    "grid_2x3": lambda: grid_coupling(2, 3),
    "grid_2x4": lambda: grid_coupling(2, 4),
    "grid_3x3": lambda: grid_coupling(3, 3),
    "grid_4x5": lambda: grid_coupling(4, 5),
    "grid_5x5": lambda: grid_coupling(5, 5),
    "heavy_hex_16": lambda: heavy_hex_coupling(16),
    "heavy_hex_27": lambda: heavy_hex_coupling(27),
}


def list_devices() -> list[str]:
    """Every selectable device name: the library plus the paper's IBM chips."""
    return sorted(set(DEVICE_LIBRARY) | set(NAMED_COUPLINGS))


def get_device_coupling(name: str) -> CouplingMap:
    """Resolve a device name to a coupling map (library first, then IBM)."""
    key = name.lower()
    if key in DEVICE_LIBRARY:
        return DEVICE_LIBRARY[key]()
    if key in NAMED_COUPLINGS:
        return NAMED_COUPLINGS[key]()
    raise TranspilerError(
        f"unknown device {name!r}; known devices: {list_devices()}"
    )
