"""Physical-circuit metrics: length, pulse counts, expected noise cost.

"Circuit length" in the paper means the number of real (noisy) physical
operations after transpilation — virtual ``rz`` gates are free.  These
metrics quantify how much a compressed model actually shortens the executed
circuit and how much error it is expected to accumulate under a given
calibration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.circuits import QuantumCircuit
from repro.simulator.noise_model import VIRTUAL_GATES, NoiseModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.calibration.snapshot import CalibrationSnapshot


@dataclass(frozen=True)
class CircuitMetrics:
    """Summary of the physical cost of a basis-translated circuit."""

    total_gates: int
    virtual_gates: int
    single_qubit_pulses: int
    two_qubit_gates: int
    depth: int

    @property
    def noisy_operations(self) -> int:
        """Physical operations that accumulate error (pulses + CX)."""
        return self.single_qubit_pulses + self.two_qubit_gates

    @property
    def physical_length(self) -> int:
        """Alias used in reports: the paper's notion of circuit length."""
        return self.noisy_operations


def physical_metrics(circuit: QuantumCircuit) -> CircuitMetrics:
    """Compute :class:`CircuitMetrics` for a circuit in the native basis."""
    virtual = 0
    pulses = 0
    two_qubit = 0
    for gate in circuit.gates:
        if gate.name in VIRTUAL_GATES:
            virtual += 1
        elif gate.num_qubits == 1:
            pulses += 1
        else:
            two_qubit += 1
    return CircuitMetrics(
        total_gates=len(circuit.gates),
        virtual_gates=virtual,
        single_qubit_pulses=pulses,
        two_qubit_gates=two_qubit,
        depth=circuit.depth(),
    )


def expected_error_cost(
    circuit: QuantumCircuit,
    noise_model: NoiseModel,
    measured_qubits: Optional[list[int]] = None,
) -> float:
    """Sum of per-gate error rates plus readout error of measured qubits.

    This first-order proxy (errors add, no cancellation) is what noise-aware
    layout and the repository manager use to compare circuits cheaply without
    a full density-matrix simulation.
    """
    cost = 0.0
    for gate in circuit.gates:
        cost += noise_model.gate_error_rate(gate)
    if measured_qubits:
        for qubit in measured_qubits:
            error = noise_model.readout_error.get(qubit)
            if error is not None:
                cost += 0.5 * (error.prob_1_given_0 + error.prob_0_given_1)
    return float(cost)


def compression_ratio(original: CircuitMetrics, compressed: CircuitMetrics) -> float:
    """Relative reduction in noisy operations achieved by compression."""
    if original.noisy_operations == 0:
        return 0.0
    saved = original.noisy_operations - compressed.noisy_operations
    return saved / original.noisy_operations
