"""Top-level transpilation entry points.

:func:`transpile` maps a logical circuit onto a device through the staged
:class:`~repro.transpiler.pipeline.PassManager` (layout → routing → basis
translation → metrics, with per-pass artifact caching), and keeps the
bookkeeping the rest of the framework needs:

* the routed circuit still referencing trainable parameters,
* the physical qubits associated with every trainable parameter
  (``A(g_i)`` in the paper's notation),
* the measurement mapping after routing SWAPs.

:func:`transpile_batch` compiles many (circuit, day) pairs at once with
deduplicated pass work; :func:`legacy_transpile` preserves the original
single-shot path so tests can pin that the pipeline's output is identical.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence, Union

import numpy as np

from repro.circuits import QuantumCircuit, circuit_structure_digest
from repro.exceptions import TranspilerError
from repro.transpiler.coupling import CouplingMap
from repro.transpiler.layout import Layout, noise_aware_layout, trivial_layout
from repro.transpiler.metrics import CircuitMetrics, physical_metrics
from repro.transpiler.routing import RoutedCircuit, route_circuit
from repro.transpiler.target import Target, coupling_digest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.calibration.snapshot import CalibrationSnapshot


def validate_initial_layout(
    circuit: QuantumCircuit, coupling: CouplingMap, layout: Layout
) -> None:
    """Check an explicit initial layout against the circuit and device.

    Historically a wrong-sized or out-of-range layout sailed into routing
    and failed deep inside the SWAP search with an opaque ``KeyError``;
    validating up front turns that into a clear :class:`TranspilerError`.
    """
    if layout.num_logical != circuit.num_qubits:
        raise TranspilerError(
            f"initial layout places {layout.num_logical} logical qubits but the "
            f"circuit has {circuit.num_qubits}"
        )
    for logical, physical in enumerate(layout.logical_to_physical):
        if not 0 <= physical < coupling.num_qubits:
            raise TranspilerError(
                f"initial layout maps logical qubit {logical} to physical qubit "
                f"{physical}, outside device {coupling.name!r} with "
                f"{coupling.num_qubits} qubits"
            )


@dataclass
class TranspiledCircuit:
    """Result of mapping a logical circuit onto a physical device."""

    logical: QuantumCircuit
    routed: RoutedCircuit
    coupling: CouplingMap
    target: Optional[Target] = None

    @property
    def initial_layout(self) -> Layout:
        """The pre-routing layout (hosts the data-encoding rotations)."""
        return self.routed.initial_layout

    @property
    def final_mapping(self) -> dict[int, int]:
        """Logical-to-physical mapping after routing's SWAP insertions."""
        return self.routed.final_mapping

    @property
    def ref_physical_qubits(self) -> dict[int, tuple[int, ...]]:
        """Physical qubits touched by each trainable parameter."""
        return self.routed.ref_physical_qubits

    def compilation_digest(self) -> str:
        """Content digest of everything this compilation fixed.

        Covers the routed physical structure, the initial layout (where the
        data encoding lands), the final mapping (where readouts land), and
        the device topology — exactly the compilation-determined inputs of a
        downstream evaluation, so the runtime's evaluation cache can key on
        it.  Two recompilations that landed on identical artifacts (e.g.
        via incremental layout reuse) share the digest and therefore share
        cache entries.
        """
        hasher = hashlib.blake2b(digest_size=16)
        hasher.update(circuit_structure_digest(self.routed.circuit).encode())
        hasher.update(str(self.initial_layout.logical_to_physical).encode())
        hasher.update(str(sorted(self.final_mapping.items())).encode())
        hasher.update(coupling_digest(self.coupling).encode())
        return hasher.hexdigest()

    def bind(self, parameters: Sequence[float] | np.ndarray) -> QuantumCircuit:
        """Bind a trainable-parameter vector into the routed circuit."""
        return self.routed.circuit.bind_parameters(parameters)

    def to_physical(self, parameters: Sequence[float] | np.ndarray) -> QuantumCircuit:
        """Bind parameters and translate to the native basis.

        The translated circuit is memoised per parameter digest on the
        *routed artifact* (mirroring the engine's compiled-program cache):
        the online loops re-evaluate the same few bindings across many
        days, and because incremental recompilations share the routed
        artifact, the memo survives per-day rebinds too.  Callers must
        treat the returned circuit as read-only — all existing consumers
        do.
        """
        return self.routed.to_physical(parameters)

    def physical_metrics(self, parameters: Sequence[float] | np.ndarray) -> CircuitMetrics:
        """Metrics of the basis-translated circuit for the given parameters."""
        return physical_metrics(self.to_physical(parameters))

    def measured_physical_qubits(self, logical_qubits: Sequence[int]) -> list[int]:
        """Physical qubits to read out for the given logical qubits."""
        return [self.final_mapping[q] for q in logical_qubits]

    def encoding_physical_qubit(self, logical_qubit: int) -> int:
        """Physical qubit that hosts ``logical_qubit`` before the ansatz runs."""
        return self.initial_layout.physical(logical_qubit)


def legacy_transpile(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    calibration: Optional["CalibrationSnapshot"] = None,
    initial_layout: Optional[Layout] = None,
) -> TranspiledCircuit:
    """The single-shot, cache-free transpilation path.

    Kept as the behavioural reference for the *pipeline*: it runs every
    pass from scratch on each call (sharing the same pass implementations,
    including the layout scorer), and equivalence tests pin that the staged
    pipeline — with all its caching and incremental reuse — produces
    identical layouts, routed operations, and mappings on every existing
    call-site shape.
    """
    if circuit.num_qubits > coupling.num_qubits:
        raise TranspilerError(
            f"circuit needs {circuit.num_qubits} qubits but device "
            f"{coupling.name!r} has {coupling.num_qubits}"
        )
    if initial_layout is not None:
        validate_initial_layout(circuit, coupling, initial_layout)
        layout = initial_layout
    elif calibration is not None:
        layout = noise_aware_layout(circuit, coupling, calibration)
    else:
        layout = trivial_layout(circuit.num_qubits, coupling)
    routed = route_circuit(circuit, coupling, layout)
    return TranspiledCircuit(
        logical=circuit,
        routed=routed,
        coupling=coupling,
        target=Target(coupling=coupling, calibration=calibration),
    )


def transpile(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    calibration: Optional["CalibrationSnapshot"] = None,
    initial_layout: Optional[Layout] = None,
    pass_manager=None,
) -> TranspiledCircuit:
    """Map ``circuit`` onto ``coupling`` through the staged pipeline.

    If ``calibration`` is provided the layout pass is noise-aware (it avoids
    the noisiest qubits and couplers of that snapshot); otherwise the trivial
    layout is used.  An explicit ``initial_layout`` overrides both and is
    validated against the circuit and the coupling map up front.

    Compilation runs on ``pass_manager`` (default: the process-wide
    :func:`~repro.transpiler.pipeline.default_pass_manager`), so repeated
    per-day recompilations reuse layout/routing artifacts whenever that is
    provably result-identical.
    """
    from repro.transpiler.pipeline import default_pass_manager

    manager = pass_manager if pass_manager is not None else default_pass_manager()
    return manager.compile(
        circuit,
        coupling=coupling,
        calibration=calibration,
        initial_layout=initial_layout,
    )


def transpile_batch(
    circuits: Union[QuantumCircuit, Sequence[QuantumCircuit]],
    targets: Union[Target, Sequence["Target"]],
    pass_manager=None,
) -> list[TranspiledCircuit]:
    """Compile many (circuit, target) pairs with deduplicated pass work.

    Broadcasts a single circuit across many targets (one model over a
    calibration history) or a single target across many circuits (many
    models onto one device).  See
    :meth:`repro.transpiler.pipeline.PassManager.compile_batch`.
    """
    from repro.transpiler.pipeline import default_pass_manager

    manager = pass_manager if pass_manager is not None else default_pass_manager()
    return manager.compile_batch(circuits, targets)
