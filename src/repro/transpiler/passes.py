"""Top-level transpilation entry point.

:func:`transpile` chains layout, routing, and (on demand) basis translation,
and keeps the bookkeeping the rest of the framework needs:

* the routed circuit still referencing trainable parameters,
* the physical qubits associated with every trainable parameter
  (``A(g_i)`` in the paper's notation),
* the measurement mapping after routing SWAPs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.circuits import QuantumCircuit
from repro.exceptions import TranspilerError
from repro.transpiler.basis import to_basis
from repro.transpiler.coupling import CouplingMap
from repro.transpiler.layout import Layout, noise_aware_layout, trivial_layout
from repro.transpiler.metrics import CircuitMetrics, physical_metrics
from repro.transpiler.routing import RoutedCircuit, route_circuit

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.calibration.snapshot import CalibrationSnapshot


@dataclass
class TranspiledCircuit:
    """Result of mapping a logical circuit onto a physical device."""

    logical: QuantumCircuit
    routed: RoutedCircuit
    coupling: CouplingMap

    @property
    def initial_layout(self) -> Layout:
        """The pre-routing layout (hosts the data-encoding rotations)."""
        return self.routed.initial_layout

    @property
    def final_mapping(self) -> dict[int, int]:
        """Logical-to-physical mapping after routing's SWAP insertions."""
        return self.routed.final_mapping

    @property
    def ref_physical_qubits(self) -> dict[int, tuple[int, ...]]:
        """Physical qubits touched by each trainable parameter."""
        return self.routed.ref_physical_qubits

    def bind(self, parameters: Sequence[float] | np.ndarray) -> QuantumCircuit:
        """Bind a trainable-parameter vector into the routed circuit."""
        return self.routed.circuit.bind_parameters(parameters)

    def to_physical(self, parameters: Sequence[float] | np.ndarray) -> QuantumCircuit:
        """Bind parameters and translate to the native basis."""
        return to_basis(self.bind(parameters))

    def physical_metrics(self, parameters: Sequence[float] | np.ndarray) -> CircuitMetrics:
        """Metrics of the basis-translated circuit for the given parameters."""
        return physical_metrics(self.to_physical(parameters))

    def measured_physical_qubits(self, logical_qubits: Sequence[int]) -> list[int]:
        """Physical qubits to read out for the given logical qubits."""
        return [self.final_mapping[q] for q in logical_qubits]

    def encoding_physical_qubit(self, logical_qubit: int) -> int:
        """Physical qubit that hosts ``logical_qubit`` before the ansatz runs."""
        return self.initial_layout.physical(logical_qubit)


def transpile(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    calibration: Optional["CalibrationSnapshot"] = None,
    initial_layout: Optional[Layout] = None,
) -> TranspiledCircuit:
    """Map ``circuit`` onto ``coupling``.

    If ``calibration`` is provided the layout pass is noise-aware (it avoids
    the noisiest qubits and couplers of that snapshot); otherwise the trivial
    layout is used.  An explicit ``initial_layout`` overrides both.
    """
    if circuit.num_qubits > coupling.num_qubits:
        raise TranspilerError(
            f"circuit needs {circuit.num_qubits} qubits but device "
            f"{coupling.name!r} has {coupling.num_qubits}"
        )
    if initial_layout is not None:
        layout = initial_layout
    elif calibration is not None:
        layout = noise_aware_layout(circuit, coupling, calibration)
    else:
        layout = trivial_layout(circuit.num_qubits, coupling)
    routed = route_circuit(circuit, coupling, layout)
    return TranspiledCircuit(logical=circuit, routed=routed, coupling=coupling)
