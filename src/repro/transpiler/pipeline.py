"""Staged compilation pipeline: discrete passes with per-pass artifact caches.

The legacy :func:`repro.transpiler.passes.transpile` recomputed layout,
routing, and metrics from scratch on every call — the paper's whole premise
is recompiling the *same* model day after day as calibration drifts, so
almost all of that work repeats.  The :class:`PassManager` splits
compilation into discrete passes and caches each pass's artifact under
content digests:

``layout``
    Noise-aware (calibration-dependent).  Keyed on
    ``(circuit, structural target, calibration)``.  When an exact key misses,
    the *incremental* path checks the previous :class:`~repro.transpiler.layout.LayoutDecision`
    for this (circuit, device): if the new snapshot sits inside the
    decision's provable optimality boundary, the cached layout is reused
    without searching — and the result is bit-identical to a full search.
``routing``
    Structure-dependent only.  Keyed on ``(circuit, structural target,
    layout)``; a reused layout therefore reuses the routed artifact too.
``basis translation / metrics``
    Binding-dependent; memoised per parameter digest on the
    :class:`~repro.transpiler.passes.TranspiledCircuit` itself.

A process-wide :func:`default_pass_manager` serves every call site that does
not bring its own manager (mirroring the simulator's ``default_engine``), so
models, harnesses, and the CLI all share one artifact pool.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.circuits import QuantumCircuit, circuit_structure_digest, parameter_digest
from repro.exceptions import TranspilerError
from repro.transpiler.coupling import CouplingMap
from repro.transpiler.layout import (
    Layout,
    LayoutDecision,
    scored_noise_aware_layout,
    trivial_layout,
)
from repro.transpiler.passes import (
    TranspiledCircuit,
    validate_initial_layout,
)
from repro.transpiler.routing import RoutedCircuit, route_circuit
from repro.transpiler.target import Target
from repro.utils.lru import lru_get, lru_put


@dataclass(frozen=True)
class PipelineConfig:
    """Tuning knobs of a :class:`PassManager`.

    Attributes
    ----------
    incremental:
        Enable boundary-checked layout reuse across calibration drift.
        Reuse is only taken when provably result-identical, so this is safe
        to leave on; it exists for A/B benchmarking.
    max_layout_candidates:
        Hard cap on the layout enumeration (``None`` = automatic policy).
    exhaustive_layout_max_qubits:
        Devices up to this size search exhaustively (the paper's devices
        have at most 7 qubits, preserving legacy-identical layouts there).
    large_device_layout_candidates:
        Deterministic enumeration cap applied to larger device-library
        targets, where the subset/permutation space explodes.  The cap
        truncates the lexicographic subset enumeration, so on big lattices
        the search is biased toward low-index regions of the chip — a
        deliberate determinism/runtime trade-off (the incremental-reuse
        proof covers exactly the enumerated candidate set); diversified
        sampling is future work.
    max_artifacts:
        LRU capacity of each per-pass artifact cache.
    """

    incremental: bool = True
    max_layout_candidates: Optional[int] = None
    exhaustive_layout_max_qubits: int = 7
    large_device_layout_candidates: int = 600
    max_artifacts: int = 256


@dataclass
class PassManagerStats:
    """Cumulative pass/cache counters of a :class:`PassManager`."""

    compile_calls: int = 0
    result_hits: int = 0
    result_passes_avoided: int = 0
    layout_runs: int = 0
    layout_hits: int = 0
    layout_reuses: int = 0
    trivial_layouts: int = 0
    explicit_layouts: int = 0
    routing_runs: int = 0
    routing_hits: int = 0

    @property
    def layout_hit_rate(self) -> float:
        """Fraction of noise-aware layout requests served without a search."""
        served = self.layout_hits + self.layout_reuses
        total = served + self.layout_runs
        return served / total if total else 0.0

    @property
    def routing_hit_rate(self) -> float:
        """Fraction of routing requests served from the artifact cache."""
        total = self.routing_hits + self.routing_runs
        return self.routing_hits / total if total else 0.0

    @property
    def pass_cache_hit_rate(self) -> float:
        """Fraction of all pass executions avoided via caches or reuse.

        A result-cache hit contributes exactly the passes that compile
        would otherwise have run (``result_passes_avoided``: routing only
        for trivial/explicit-layout compiles, layout + routing otherwise),
        so the rate reflects genuinely avoided work.
        """
        avoided = (
            self.result_passes_avoided
            + self.layout_hits
            + self.layout_reuses
            + self.routing_hits
        )
        total = avoided + self.layout_runs + self.routing_runs
        return avoided / total if total else 0.0

    def as_dict(self) -> dict:
        """JSON-friendly counters plus derived hit rates (for CLI reports)."""
        return {
            "compile_calls": self.compile_calls,
            "result_hits": self.result_hits,
            "layout_runs": self.layout_runs,
            "layout_hits": self.layout_hits,
            "layout_reuses": self.layout_reuses,
            "routing_runs": self.routing_runs,
            "routing_hits": self.routing_hits,
            "layout_hit_rate": self.layout_hit_rate,
            "routing_hit_rate": self.routing_hit_rate,
            "pass_cache_hit_rate": self.pass_cache_hit_rate,
        }


def _circuit_key(circuit: QuantumCircuit) -> str:
    """Content key of a circuit: structure digest + bound-angle digest.

    Routing copies each gate's angle/ref into the routed artifact, so two
    circuits may share pass artifacts only when both their structure *and*
    their (possibly unbound) per-gate parameters coincide.
    """
    return f"{circuit_structure_digest(circuit)}:{parameter_digest(circuit)}"


class PassManager:
    """Runs the staged pipeline with per-pass artifact caching.

    One manager owns three LRU caches (layouts, routed circuits, assembled
    :class:`~repro.transpiler.passes.TranspiledCircuit` results) plus the
    per-(circuit, device) :class:`~repro.transpiler.layout.LayoutDecision`
    records that drive incremental recompilation.  All keys are content
    digests, so independently constructed but identical circuits/targets
    share artifacts.
    """

    def __init__(self, config: Optional[PipelineConfig] = None):
        self.config = config or PipelineConfig()
        self.stats = PassManagerStats()
        self._layouts: OrderedDict[tuple, Layout] = OrderedDict()
        self._decisions: OrderedDict[tuple, LayoutDecision] = OrderedDict()
        self._routings: OrderedDict[tuple, RoutedCircuit] = OrderedDict()
        self._results: OrderedDict[tuple, TranspiledCircuit] = OrderedDict()

    # -- cache plumbing -------------------------------------------------
    @staticmethod
    def _lru_get(cache: OrderedDict, key):
        return lru_get(cache, key)

    def _lru_put(self, cache: OrderedDict, key, value) -> None:
        lru_put(cache, key, value, self.config.max_artifacts)

    def clear(self) -> None:
        """Drop every cached artifact and layout decision."""
        self._layouts.clear()
        self._decisions.clear()
        self._routings.clear()
        self._results.clear()

    def layout_decision(
        self, circuit: QuantumCircuit, target: Target
    ) -> Optional[LayoutDecision]:
        """The recorded :class:`LayoutDecision` for ``(circuit, device)``, if any.

        Read-only introspection for callers that want to reason about the
        incremental-recompilation boundary without compiling — e.g. the
        serving layer's calibration watcher, which records whether a drift
        observation fell inside the provable reuse boundary.  Returns the
        decision from the most recent full layout search for this circuit
        on this structural target, or ``None`` when no search has run (or
        the record was evicted).
        """
        key = (_circuit_key(circuit), target.structural_digest)
        return self._lru_get(self._decisions, key)

    def cache_sizes(self) -> dict[str, int]:
        """Current entry counts per artifact cache (for tests/introspection)."""
        return {
            "layouts": len(self._layouts),
            "decisions": len(self._decisions),
            "routings": len(self._routings),
            "results": len(self._results),
        }

    # -- pass policy ----------------------------------------------------
    def _layout_candidate_cap(self, coupling: CouplingMap) -> Optional[int]:
        """The enumeration cap for the noise-aware layout search."""
        if self.config.max_layout_candidates is not None:
            return self.config.max_layout_candidates
        if coupling.num_qubits <= self.config.exhaustive_layout_max_qubits:
            return None
        return self.config.large_device_layout_candidates

    # -- the pipeline ---------------------------------------------------
    def _layout_pass(
        self, circuit: QuantumCircuit, target: Target, circuit_key: str
    ) -> Layout:
        """Layout selection: explicit cache, then boundary reuse, then search."""
        calibration = target.calibration
        if calibration is None:
            self.stats.trivial_layouts += 1
            return trivial_layout(circuit.num_qubits, target.coupling)
        cap = self._layout_candidate_cap(target.coupling)
        exact_key = (circuit_key, target.structural_digest, target.calibration_key, cap)
        cached = self._lru_get(self._layouts, exact_key)
        if cached is not None:
            self.stats.layout_hits += 1
            return cached
        decision_key = (circuit_key, target.structural_digest)
        decision = self._lru_get(self._decisions, decision_key)
        if (
            self.config.incremental
            and decision is not None
            and decision.max_candidates == cap
            and decision.still_optimal_for(calibration)
        ):
            self.stats.layout_reuses += 1
            self._lru_put(self._layouts, exact_key, decision.layout)
            return decision.layout
        decision = scored_noise_aware_layout(
            circuit, target.coupling, calibration, max_candidates=cap
        )
        self.stats.layout_runs += 1
        self._lru_put(self._decisions, decision_key, decision)
        self._lru_put(self._layouts, exact_key, decision.layout)
        return decision.layout

    def _routing_pass(
        self, circuit: QuantumCircuit, target: Target, circuit_key: str, layout: Layout
    ) -> RoutedCircuit:
        """SWAP routing, cached per (circuit, device, layout)."""
        key = (circuit_key, target.structural_digest, layout.logical_to_physical)
        cached = self._lru_get(self._routings, key)
        if cached is not None:
            self.stats.routing_hits += 1
            return cached
        routed = route_circuit(circuit, target.coupling, layout)
        self.stats.routing_runs += 1
        self._lru_put(self._routings, key, routed)
        return routed

    def compile(
        self,
        circuit: QuantumCircuit,
        target: Optional[Target] = None,
        *,
        coupling: Optional[CouplingMap] = None,
        calibration=None,
        initial_layout: Optional[Layout] = None,
    ) -> TranspiledCircuit:
        """Compile ``circuit`` onto ``target`` through the staged pipeline.

        Either a :class:`~repro.transpiler.target.Target` or a bare
        ``coupling`` (optionally with ``calibration``) may be given,
        mirroring the legacy :func:`~repro.transpiler.passes.transpile`
        signature.  Output is identical to the legacy single-shot path on
        devices within the exhaustive-search size (all existing call sites).
        """
        if target is None:
            if coupling is None:
                raise TranspilerError("compile() needs a Target or a coupling map")
            target = Target(coupling=coupling, calibration=calibration)
        elif coupling is not None or calibration is not None:
            raise TranspilerError(
                "pass either a Target or coupling/calibration, not both"
            )
        if circuit.num_qubits > target.coupling.num_qubits:
            raise TranspilerError(
                f"circuit needs {circuit.num_qubits} qubits but device "
                f"{target.coupling.name!r} has {target.coupling.num_qubits}"
            )
        if initial_layout is not None:
            validate_initial_layout(circuit, target.coupling, initial_layout)

        self.stats.compile_calls += 1
        circuit_key = _circuit_key(circuit)
        layout_key = (
            "<auto>" if initial_layout is None else initial_layout.logical_to_physical
        )
        # Only the auto noise-aware layout depends on the calibration; with
        # an explicit layout (or none at all) the whole compilation is
        # calibration-independent, so per-day recompiles share one result.
        calibration_dependent = initial_layout is None and target.calibration is not None
        result_key = (
            circuit_key,
            target.structural_digest,
            target.calibration_key if calibration_dependent else "<structural>",
            layout_key,
            self._layout_candidate_cap(target.coupling),
        )
        cached = self._lru_get(self._results, result_key)
        if cached is not None:
            self.stats.result_hits += 1
            self.stats.result_passes_avoided += 2 if calibration_dependent else 1
            return cached

        if initial_layout is not None:
            self.stats.explicit_layouts += 1
            layout = initial_layout
        else:
            layout = self._layout_pass(circuit, target, circuit_key)
        routed = self._routing_pass(circuit, target, circuit_key, layout)
        result = TranspiledCircuit(
            logical=circuit,
            routed=routed,
            coupling=target.coupling,
            # A calibration-independent compilation is stamped with the
            # structural target so a cached result never carries a stale
            # calibration snapshot when served on a later day.
            target=target if calibration_dependent else target.with_calibration(None),
        )
        self._lru_put(self._results, result_key, result)
        return result

    def compile_batch(
        self,
        circuits: Union[QuantumCircuit, Sequence[QuantumCircuit]],
        targets: Union[Target, Sequence[Target]],
    ) -> list[TranspiledCircuit]:
        """Compile many (circuit, target) pairs with deduplicated pass work.

        Either argument may be a single item, which is broadcast against the
        other — e.g. one model across a 30-day calibration history, or many
        models onto one device.  Work dedup falls out of the per-pass
        caches: repeated structures share routing, drifting snapshots inside
        the layout decision boundary share layouts.
        """
        if isinstance(circuits, QuantumCircuit):
            circuits = [circuits]
        else:
            circuits = list(circuits)
        if isinstance(targets, Target):
            targets = [targets]
        else:
            targets = list(targets)
        if len(circuits) == 1 and len(targets) > 1:
            circuits = circuits * len(targets)
        if len(targets) == 1 and len(circuits) > 1:
            targets = targets * len(circuits)
        if len(circuits) != len(targets):
            raise TranspilerError(
                f"cannot pair {len(circuits)} circuits with {len(targets)} targets"
            )
        return [
            self.compile(circuit, target)
            for circuit, target in zip(circuits, targets)
        ]


# ---------------------------------------------------------------------------
# Shared default pass manager
# ---------------------------------------------------------------------------

_default_pass_manager: Optional[PassManager] = None


def default_pass_manager() -> PassManager:
    """The process-wide pass manager shared by all default call sites."""
    global _default_pass_manager
    if _default_pass_manager is None:
        _default_pass_manager = PassManager()
    return _default_pass_manager


def set_default_pass_manager(manager: Optional[PassManager]) -> None:
    """Replace the process-wide pass manager (``None`` resets to a fresh one)."""
    global _default_pass_manager
    _default_pass_manager = manager
