"""Fleet reports: per-cell results and fleet-wide aggregates.

A fleet run is a grid of ``(device × scenario)`` cells; each cell replays
one drift scenario on one device through the experiment runner and the
serving watcher.  The report types themselves are typed protocol
messages — :class:`~repro.protocol.FleetCellResult` is the validated
record of one cell (accuracy-over-days, adaptation-action counts,
compile-cache and evaluation-cache statistics) and
:class:`~repro.protocol.FleetReport` stitches the cells into one
JSON-ready fleet report with aggregate rollups, which the CLI
(``python -m repro.experiments fleet``) prints, the run store persists,
and CI asserts on.  This module re-exports them from
:mod:`repro.protocol` so fleet callers keep one import path.
"""

from __future__ import annotations

from repro.protocol import (
    WATCHER_ACTIONS,
    FleetCellResult,
    FleetReport,
    canonical_report_dict,
)

__all__ = [
    "WATCHER_ACTIONS",
    "FleetCellResult",
    "FleetReport",
    "canonical_report_dict",
]
