"""Fleet reports: per-cell results and fleet-wide aggregates.

A fleet run is a grid of ``(device × scenario)`` cells; each cell replays
one drift scenario on one device through the experiment runner and the
serving watcher.  :class:`FleetCellResult` is the machine-readable record
of one cell — accuracy-over-days, adaptation-action counts, compile-cache
and evaluation-cache statistics — and :class:`FleetReport` stitches the
cells into one JSON-ready fleet report with aggregate rollups, which the
CLI (``python -m repro.experiments fleet``) prints and CI asserts on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

#: The adaptation actions a CalibrationWatcher classifies swaps into.
WATCHER_ACTIONS: tuple[str, ...] = ("refresh", "recompile", "readapt")


@dataclass
class FleetCellResult:
    """Everything one ``(device, scenario)`` cell produced.

    Attributes
    ----------
    device / scenario:
        The cell's coordinates in the fleet grid.
    days:
        Number of online days replayed.
    dates:
        Calendar labels of the replayed days.
    accuracy:
        Per-day accuracy of the deployed model under the scenario's drift.
    actions:
        ``{"refresh" | "recompile" | "readapt": count}`` from the
        :class:`~repro.serving.watcher.CalibrationWatcher` replay.
    boundary_reuses:
        Days whose layout decision was provably still optimal (the
        incremental-recompilation fast path).
    versions_published:
        Model versions the watcher published to the registry.
    compiler:
        The cell's :class:`~repro.transpiler.pipeline.PassManagerStats`
        counters (compile-cache hit rates).
    runner:
        Evaluation-runner counters including evaluation-cache statistics.
    wall_seconds:
        Wall time the cell took end to end.
    """

    device: str
    scenario: str
    days: int
    dates: list[Optional[str]] = field(default_factory=list)
    accuracy: list[float] = field(default_factory=list)
    actions: dict[str, int] = field(default_factory=dict)
    boundary_reuses: int = 0
    versions_published: int = 0
    compiler: dict = field(default_factory=dict)
    runner: dict = field(default_factory=dict)
    wall_seconds: float = 0.0

    @property
    def mean_accuracy(self) -> float:
        """Mean per-day accuracy over the replayed days."""
        return float(np.mean(self.accuracy)) if self.accuracy else float("nan")

    @property
    def min_accuracy(self) -> float:
        """Worst single-day accuracy (collapse indicator)."""
        return float(np.min(self.accuracy)) if self.accuracy else float("nan")

    @property
    def final_accuracy(self) -> float:
        """Accuracy on the last replayed day."""
        return float(self.accuracy[-1]) if self.accuracy else float("nan")

    def as_dict(self) -> dict:
        """JSON-ready cell record for the fleet report."""
        return {
            "device": self.device,
            "scenario": self.scenario,
            "days": self.days,
            "dates": list(self.dates),
            "accuracy": [float(value) for value in self.accuracy],
            "mean_accuracy": self.mean_accuracy,
            "min_accuracy": self.min_accuracy,
            "final_accuracy": self.final_accuracy,
            "actions": dict(self.actions),
            "boundary_reuses": self.boundary_reuses,
            "versions_published": self.versions_published,
            "compiler": dict(self.compiler),
            "runner": dict(self.runner),
            "wall_seconds": self.wall_seconds,
        }


@dataclass
class FleetReport:
    """All cells of one fleet run plus fleet-wide aggregates."""

    dataset_name: str
    cells: list[FleetCellResult] = field(default_factory=list)
    wall_seconds: float = 0.0

    def cell(self, device: str, scenario: str) -> FleetCellResult:
        """The recorded result for one ``(device, scenario)`` cell."""
        for cell in self.cells:
            if cell.device == device and cell.scenario == scenario:
                return cell
        raise KeyError(f"no cell recorded for ({device!r}, {scenario!r})")

    def summary(self) -> dict:
        """Fleet-wide rollup: grid shape, accuracy spread, action totals."""
        devices = sorted({cell.device for cell in self.cells})
        scenarios = sorted({cell.scenario for cell in self.cells})
        actions = {action: 0 for action in WATCHER_ACTIONS}
        for cell in self.cells:
            for action, count in cell.actions.items():
                actions[action] = actions.get(action, 0) + count
        means = [cell.mean_accuracy for cell in self.cells]
        hit_rates = [
            cell.compiler.get("pass_cache_hit_rate", 0.0) for cell in self.cells
        ]
        worst = min(self.cells, key=lambda cell: cell.mean_accuracy, default=None)
        return {
            "dataset": self.dataset_name,
            "cells": len(self.cells),
            "devices": devices,
            "scenarios": scenarios,
            "mean_accuracy": float(np.mean(means)) if means else float("nan"),
            "worst_cell": (
                None
                if worst is None
                else {
                    "device": worst.device,
                    "scenario": worst.scenario,
                    "mean_accuracy": worst.mean_accuracy,
                }
            ),
            "actions": actions,
            "mean_pass_cache_hit_rate": (
                float(np.mean(hit_rates)) if hit_rates else 0.0
            ),
            "wall_seconds": self.wall_seconds,
        }

    def as_dict(self) -> dict:
        """The full JSON fleet report: per-cell records + aggregates."""
        return {
            "summary": self.summary(),
            "cells": [cell.as_dict() for cell in self.cells],
        }

    def format(self) -> str:
        """A compact human-readable table of the fleet grid."""
        header = (
            f"{'device':<14} {'scenario':<16} {'mean':>6} {'min':>6} "
            f"{'refresh':>8} {'recompile':>10} {'readapt':>8} {'cache':>6}"
        )
        lines = [header, "-" * len(header)]
        for cell in self.cells:
            lines.append(
                f"{cell.device:<14} {cell.scenario:<16} "
                f"{cell.mean_accuracy:6.3f} {cell.min_accuracy:6.3f} "
                f"{cell.actions.get('refresh', 0):8d} "
                f"{cell.actions.get('recompile', 0):10d} "
                f"{cell.actions.get('readapt', 0):8d} "
                f"{cell.compiler.get('pass_cache_hit_rate', 0.0):6.1%}"
            )
        return "\n".join(lines)
