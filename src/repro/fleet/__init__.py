"""Device-fleet drift replay: (device × scenario) grids through the stack.

Where :mod:`repro.experiments` replays the paper on one device under one
synthetic trace, this package sweeps a whole grid — every device of the
library crossed with every :class:`~repro.calibration.scenarios.DriftScenario`
— through the experiment runner *and* the serving watcher, producing one
machine-readable fleet report (per-cell accuracy-over-days, adaptation
action counts, compile-cache hit rates).  The CLI front door is
``python -m repro.experiments fleet``.
"""

from repro.fleet.harness import FleetHarness, run_fleet
from repro.fleet.report import FleetCellResult, FleetReport, WATCHER_ACTIONS

__all__ = [
    "FleetHarness",
    "run_fleet",
    "FleetCellResult",
    "FleetReport",
    "WATCHER_ACTIONS",
]
