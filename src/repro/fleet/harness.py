"""The fleet harness: concurrent (device × scenario) drift replay.

:class:`FleetHarness` turns the single-trace longitudinal/serving stack
into a fleet-scale stress harness.  Given N devices and M drift scenarios
it replays every cell of the grid:

1. the cell's :class:`~repro.calibration.scenarios.DriftScenario` renders a
   calibration history for the device on a per-``(seed, device, scenario)``
   stream (cells are statistically independent but individually
   reproducible);
2. the shared noise-free base model (trained **once** per dataset — the
   ideal forward path is binding-independent, so one training serves the
   whole fleet, exactly like deploying one model artifact to many devices)
   is bound to the device through a cell-private
   :class:`~repro.transpiler.pipeline.PassManager`;
3. per-day accuracy over the online window runs through a cell-private
   :class:`~repro.runtime.ExperimentRunner` (scenario names stamped onto
   every :class:`~repro.runtime.records.RunRecord` row);
4. the online history replays through the serving stack — a
   :class:`~repro.serving.registry.ModelRegistry` plus
   :class:`~repro.serving.watcher.CalibrationWatcher` — counting
   refresh / recompile / readapt actions and layout-boundary reuses.

Cells fan out over a thread pool: every mutable object (pass manager,
runner, simulation backend, registry) is cell-private, so the only shared
state is the optional :class:`~repro.runtime.records.RunRecordLog`, which
is thread-safe by construction.
"""

from __future__ import annotations

import dataclasses
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Sequence, Union

import numpy as np

from repro.calibration.scenarios import DriftScenario, get_scenario
from repro.calibration.synthetic import device_seed_sequence
from repro.exceptions import ReproError
from repro.experiments.config import ExperimentScale
from repro.experiments.context import (
    build_dataset,
    build_model_for_dataset,
    prepare_experiment,
    train_base_model_for,
)
from repro.fleet.report import FleetCellResult, FleetReport, WATCHER_ACTIONS
from repro.protocol import FleetRunManifest, content_digest
from repro.runtime import (
    EvaluationCache,
    ExperimentRunner,
    RunRecordLog,
    RunStore,
    StoreError,
    fleet_cell_digest,
)
from repro.runtime.records import PathLike
from repro.serving.registry import ModelRegistry
from repro.serving.watcher import CalibrationWatcher
from repro.simulator import NoiseModel
from repro.transpiler.pipeline import PassManager


class FleetHarness:
    """Replays a (device × scenario) grid through the whole stack.

    Parameters
    ----------
    devices:
        Device names (the paper's IBM chips or
        :data:`repro.transpiler.devices.DEVICE_LIBRARY` entries; experiment
        devices are capped at 10 qubits by the setup layer).
    scenarios:
        Scenario names from
        :data:`repro.calibration.scenarios.SCENARIO_LIBRARY`, or
        :class:`~repro.calibration.scenarios.DriftScenario` instances.
    scale:
        The :class:`~repro.experiments.config.ExperimentScale` every cell
        runs at (offline/online day counts, eval subset, shots).
    dataset_name:
        Dataset whose model the fleet serves (default ``mnist4``).
    cell_workers:
        Concurrent cells (default: ``min(4, number of cells)``).
    record_log:
        Optional shared :class:`~repro.runtime.records.RunRecordLog` (or
        path); every evaluation row lands there with its scenario name.
    seed:
        Master seed for scenario rendering and evaluation sampling
        (default: the scale's seed).
    chunk_days:
        Days per vectorised evaluation chunk inside each cell.
    runner_mode:
        Dispatch mode for each cell's
        :class:`~repro.runtime.ExperimentRunner` (default ``serial``).
        ``pool`` routes day chunks through the persistent worker pool,
        which keeps compiled engines warm across cells.
    store:
        Optional durable :class:`~repro.runtime.RunStore` (or path).
        Every completed cell is committed to it before the next cell's
        result lands, so a killed run can be resumed.
    run_id:
        Identity of this run in the store.  Defaults to a deterministic
        id derived from the configuration digest, so rerunning the same
        command addresses the same run.
    resume:
        A run id to resume: cells already completed in the store are
        loaded back instead of re-executed.  The stored run's
        configuration digest must match this harness's configuration.
    """

    def __init__(
        self,
        devices: Sequence[str],
        scenarios: Sequence[Union[str, DriftScenario]],
        scale: Optional[ExperimentScale] = None,
        dataset_name: str = "mnist4",
        cell_workers: Optional[int] = None,
        record_log: Union[RunRecordLog, PathLike, None] = None,
        seed: Optional[int] = None,
        chunk_days: int = 16,
        runner_mode: str = "serial",
        store: Union[RunStore, PathLike, None] = None,
        run_id: Optional[str] = None,
        resume: Optional[str] = None,
    ):
        if not devices:
            raise ReproError("a fleet needs at least one device")
        if not scenarios:
            raise ReproError("a fleet needs at least one scenario")
        self.devices = [str(device).lower() for device in devices]
        self.scenarios = [get_scenario(scenario) for scenario in scenarios]
        self.scale = scale or ExperimentScale()
        self.dataset_name = dataset_name
        self.cells = [
            (device, scenario)
            for device in self.devices
            for scenario in self.scenarios
        ]
        self.cell_workers = cell_workers or min(4, len(self.cells))
        if record_log is not None and not isinstance(record_log, RunRecordLog):
            record_log = RunRecordLog(record_log)
        self.record_log = record_log
        self.seed = self.scale.seed if seed is None else int(seed)
        self.chunk_days = chunk_days
        self.runner_mode = runner_mode
        if resume is not None and store is None:
            raise ReproError("--resume needs a run store (pass store=...)")
        if store is not None and not isinstance(store, RunStore):
            store = RunStore(store)
        self.store = store
        self.config_digest = content_digest(
            {
                "devices": self.devices,
                "scenarios": [scenario.name for scenario in self.scenarios],
                "dataset": self.dataset_name,
                "seed": self.seed,
                "chunk_days": self.chunk_days,
                "scale": dataclasses.asdict(self.scale),
            }
        )
        self.resume = resume
        if resume is not None:
            run_id = resume
        self.run_id = run_id or f"fleet-{self.config_digest[:12]}"

    # ------------------------------------------------------------------
    def _manifest(self) -> FleetRunManifest:
        """The run's durable identity record (what ``--resume`` validates)."""
        return FleetRunManifest(
            run_id=self.run_id,
            config_digest=self.config_digest,
            devices=list(self.devices),
            scenarios=[scenario.name for scenario in self.scenarios],
            dataset_name=self.dataset_name,
            seed=self.seed,
            chunk_days=self.chunk_days,
            scale=dataclasses.asdict(self.scale),
        )

    def _cell_digest(self, device: str, scenario: DriftScenario) -> str:
        """The store key of one cell under this configuration."""
        return fleet_cell_digest(self.config_digest, device, scenario.name)

    # ------------------------------------------------------------------
    def _train_template(self) -> np.ndarray:
        """Train the shared base model once; returns its parameter vector.

        Runs :func:`~repro.experiments.context.train_base_model_for` — the
        same step :func:`~repro.experiments.context.prepare_experiment`
        uses.  Noise-free training rides the ideal statevector path, which
        never touches the device binding, so the resulting parameters are
        exactly what per-cell training would produce — without N × M
        redundant trainings and without sharing a simulation engine across
        worker threads.
        """
        dataset = build_dataset(self.dataset_name, self.scale)
        model = build_model_for_dataset(self.dataset_name, dataset, self.scale)
        train_base_model_for(model, dataset, self.scale)
        return np.asarray(model.parameters, dtype=float)

    # ------------------------------------------------------------------
    def _run_cell(
        self, device: str, scenario: DriftScenario, template_parameters: np.ndarray
    ) -> FleetCellResult:
        """Replay one (device, scenario) cell end to end."""
        started = time.perf_counter()
        scale = self.scale
        num_days = scale.offline_days + scale.online_days
        history = scenario.history(device, num_days, seed=self.seed)
        pass_manager = PassManager()
        setup = prepare_experiment(
            self.dataset_name,
            scale=scale,
            device=device,
            train_base_model=False,
            history=history,
            pass_manager=pass_manager,
        )
        model = setup.base_model
        model.parameters = template_parameters.copy()

        online = setup.online_history
        noise_models = setup.noise_models(online)
        subset = setup.eval_subset()
        rng = np.random.default_rng(
            device_seed_sequence(setup.device, self.seed, "fleet", scenario.name)
        )
        seeds = [int(rng.integers(0, 2**31 - 1)) for _ in range(len(online))]
        runner = ExperimentRunner(
            mode=self.runner_mode,
            chunk_days=self.chunk_days,
            cache=EvaluationCache(),
            record_log=self.record_log,
        )
        try:
            accuracies = runner.evaluate_days(
                model,
                subset.test_features,
                subset.test_labels,
                noise_models,
                shots=scale.shots,
                seeds=seeds,
                experiment=f"fleet/{setup.device}/{scenario.name}",
                dates=[snapshot.date for snapshot in online],
                scenario=scenario.name,
            )
        finally:
            runner.close()

        # Serving-stack replay: registry + calibration watcher over the
        # same online drift stream, counting adaptation actions.
        registry = ModelRegistry()
        endpoint = f"{setup.device}:{scenario.name}"
        deploy_snapshot = setup.offline_history[-1]
        registry.publish(
            endpoint,
            model,
            noise_model=NoiseModel.from_calibration(deploy_snapshot),
            calibration_date=deploy_snapshot.date,
        )
        watcher = CalibrationWatcher(registry, endpoint, pass_manager=pass_manager)
        swap_reports = watcher.run(online)
        actions = {action: 0 for action in WATCHER_ACTIONS}
        for report in swap_reports:
            actions[report.action] = actions.get(report.action, 0) + 1

        return FleetCellResult(
            device=setup.device,
            scenario=scenario.name,
            days=len(online),
            dates=[snapshot.date for snapshot in online],
            accuracy=[float(value) for value in accuracies],
            actions=actions,
            boundary_reuses=sum(
                1 for report in swap_reports if report.boundary_reused
            ),
            versions_published=registry.history(endpoint)[-1].version,
            compiler=pass_manager.stats.as_dict(),
            runner={
                "days_evaluated": runner.stats.days_evaluated,
                "cache_hits": runner.stats.cache_hits,
                "chunks": runner.stats.chunks,
                "cache": runner.cache.stats(),
            },
            wall_seconds=time.perf_counter() - started,
        )

    # ------------------------------------------------------------------
    def run(self) -> FleetReport:
        """Replay every cell (concurrently) and assemble the fleet report.

        The shared base model trains sequentially up front; cells then fan
        out over a thread pool.  Results are ordered by the constructor's
        (device, scenario) grid order regardless of completion order.

        With a run store attached, every finished cell is committed
        durably before the report is assembled; with ``resume`` set,
        cells already in the store are loaded back instead of re-run, and
        the assembled report is bit-identical (in canonical form) to an
        uninterrupted run of the same configuration.
        """
        started = time.perf_counter()
        completed: dict[str, FleetCellResult] = {}
        if self.store is not None:
            if self.resume is not None:
                stored = self.store.manifest(self.resume)
                if stored.config_digest != self.config_digest:
                    raise StoreError(
                        f"run {self.resume!r} was recorded for a different "
                        f"configuration (stored digest {stored.config_digest}, "
                        f"requested {self.config_digest})"
                    )
                completed = self.store.completed_cells(self.resume)
            self.store.begin_run(self._manifest())

        digests = {
            (device, scenario.name): self._cell_digest(device, scenario)
            for device, scenario in self.cells
        }
        pending = [
            (device, scenario)
            for device, scenario in self.cells
            if digests[(device, scenario.name)] not in completed
        ]

        def finish_cell(device, scenario, template_parameters) -> FleetCellResult:
            result = self._run_cell(device, scenario, template_parameters)
            if self.store is not None:
                self.store.put(
                    self.run_id, result, digest=digests[(device, scenario.name)]
                )
            return result

        fresh: dict[str, FleetCellResult] = {}
        if pending:
            template_parameters = self._train_template()
            if self.cell_workers <= 1 or len(pending) <= 1:
                for device, scenario in pending:
                    fresh[digests[(device, scenario.name)]] = finish_cell(
                        device, scenario, template_parameters
                    )
            else:
                with ThreadPoolExecutor(max_workers=self.cell_workers) as pool:
                    futures = {
                        digests[(device, scenario.name)]: pool.submit(
                            finish_cell, device, scenario, template_parameters
                        )
                        for device, scenario in pending
                    }
                    fresh = {
                        digest: future.result()
                        for digest, future in futures.items()
                    }

        results = []
        resumed = 0
        for device, scenario in self.cells:
            digest = digests[(device, scenario.name)]
            if digest in fresh:
                results.append(fresh[digest])
            else:
                results.append(completed[digest])
                resumed += 1
        report = FleetReport(
            dataset_name=self.dataset_name,
            cells=results,
            wall_seconds=time.perf_counter() - started,
            run_id=self.run_id if self.store is not None else None,
            resumed_cells=resumed,
        )
        if self.store is not None:
            self.store.put(self.run_id, report)
            self.store.mark_run(self.run_id, "complete")
        return report


def run_fleet(
    devices: Sequence[str],
    scenarios: Sequence[Union[str, DriftScenario]],
    scale: Optional[ExperimentScale] = None,
    dataset_name: str = "mnist4",
    cell_workers: Optional[int] = None,
    record_log: Union[RunRecordLog, PathLike, None] = None,
    seed: Optional[int] = None,
    runner_mode: str = "serial",
    store: Union[RunStore, PathLike, None] = None,
    run_id: Optional[str] = None,
    resume: Optional[str] = None,
) -> FleetReport:
    """One-call fleet replay: build a :class:`FleetHarness` and run it."""
    harness = FleetHarness(
        devices,
        scenarios,
        scale=scale,
        dataset_name=dataset_name,
        cell_workers=cell_workers,
        record_log=record_log,
        seed=seed,
        runner_mode=runner_mode,
        store=store,
        run_id=run_id,
        resume=resume,
    )
    return harness.run()
