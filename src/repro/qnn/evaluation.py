"""Model evaluation under ideal and noisy execution.

All evaluation routes through the unified :class:`~repro.simulator.Backend`
API (pass ``backend=`` to override the shared default), so the accuracy
sweeps of Fig. 2 / Table I — thousands of evaluations of the same circuit
structure — reuse compiled programs instead of re-materialising every gate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.qnn.loss import accuracy
from repro.qnn.model import QNNModel
from repro.simulator import Backend, NoiseModel
from repro.utils.rng import SeedLike

#: Memory budget for one flattened multi-binding density super-batch.  A
#: binding costs ``batch * 4**num_qubits * 16`` bytes, so at the default
#: budget a 5-qubit device with 96 eval samples still batches ~40 days per
#: backend call while a 7-qubit device batches ~8.
DEFAULT_BATCH_BYTES: int = 64 * 1024 * 1024

#: Cache-friendliness cap: stacking bindings pays off while the flattened
#: super-batch stays within the fast cache levels; beyond roughly this many
#: density matrices the walk turns memory-bound and stacking stops helping,
#: so bindings with large per-binding sample batches run one per call.
CACHE_FRIENDLY_SAMPLES: int = 16


@dataclass(frozen=True)
class EvaluationResult:
    """Accuracy plus the raw logits of an evaluation run."""

    accuracy: float
    logits: np.ndarray
    predictions: np.ndarray


def evaluate_ideal(
    model: QNNModel,
    features: np.ndarray,
    labels: np.ndarray,
    parameters: Optional[np.ndarray] = None,
    backend: Optional[Backend] = None,
) -> EvaluationResult:
    """Accuracy under noise-free statevector simulation."""
    logits = model.forward_ideal(features, parameters=parameters, backend=backend)
    predictions = np.argmax(logits, axis=-1)
    return EvaluationResult(
        accuracy=accuracy(logits, labels), logits=logits, predictions=predictions
    )


def evaluate_noisy(
    model: QNNModel,
    features: np.ndarray,
    labels: np.ndarray,
    noise_model: NoiseModel,
    parameters: Optional[np.ndarray] = None,
    shots: Optional[int] = None,
    seed: SeedLike = None,
    backend: Optional[Backend] = None,
) -> EvaluationResult:
    """Accuracy under a calibration-derived noise model.

    ``shots`` switches from exact expectation values to sampled ones, which
    emulates execution on real hardware (Fig. 8).
    """
    logits = model.forward_noisy(
        features, noise_model, parameters=parameters, shots=shots, seed=seed,
        backend=backend,
    )
    predictions = np.argmax(logits, axis=-1)
    return EvaluationResult(
        accuracy=accuracy(logits, labels), logits=logits, predictions=predictions
    )


def _shared_binding(parameter_sets) -> bool:
    """True when every binding resolves to one parameter vector (a day sweep)."""
    if parameter_sets is None:
        return True
    first = parameter_sets[0] if parameter_sets else None
    for item in parameter_sets[1:]:
        if item is first:
            continue
        if item is None or first is None:
            return False
        if not np.array_equal(item, first):
            return False
    return True


def _batch_chunk_size(
    model: QNNModel,
    num_samples: int,
    max_batch_bytes: int,
    shared_binding: bool = False,
) -> int:
    """How many bindings to stack per backend call.

    Bounded by the memory budget *and* by :data:`CACHE_FRIENDLY_SAMPLES`:
    small per-binding batches (single samples, tiny eval subsets) stack
    aggressively — that regime is overhead-dominated and vectorisation wins
    2x+ — while full-subset bindings of *distinct* parameter vectors run one
    per call, where stacking would only push the working set out of cache.
    ``shared_binding`` marks the day-sweep regime (one parameter vector,
    many noise models): there the engine's day-stacked in-place walk keeps
    stacking profitable at any subset size, so only the memory budget caps
    the chunk.
    """
    device_qubits = (
        model.transpiled.coupling.num_qubits
        if model.transpiled is not None
        else model.num_qubits
    )
    samples = max(1, num_samples)
    bytes_per_binding = samples * (4**device_qubits) * 16
    by_memory = max(1, int(max_batch_bytes // bytes_per_binding))
    if shared_binding:
        return by_memory
    by_cache = max(1, CACHE_FRIENDLY_SAMPLES // samples)
    return min(by_memory, by_cache)


def evaluate_noisy_batch(
    model: QNNModel,
    features: np.ndarray,
    labels: np.ndarray,
    noise_models: Sequence[NoiseModel],
    parameter_sets: Optional[Sequence[Optional[np.ndarray]]] = None,
    shots: Optional[int] = None,
    seeds: Optional[Sequence[SeedLike]] = None,
    backend: Optional[Backend] = None,
    max_batch_bytes: int = DEFAULT_BATCH_BYTES,
) -> list[EvaluationResult]:
    """Evaluate many (parameters, noise model) bindings in bulk.

    This is the batched form of :func:`evaluate_noisy`: the whole binding
    list — e.g. every day of a longitudinal sweep — is evaluated in a few
    vectorised backend calls instead of one call per binding, and entry ``p``
    is bit-identical to the corresponding :func:`evaluate_noisy` call.
    Bindings are chunked so one flattened density super-batch stays within
    ``max_batch_bytes`` and within the cache-friendly stacking regime (see
    :func:`_batch_chunk_size`).
    """
    count = len(noise_models)
    if parameter_sets is not None and len(parameter_sets) != count:
        raise ValueError(
            f"{len(parameter_sets)} parameter sets do not match {count} noise models"
        )
    if seeds is not None and len(seeds) != count:
        raise ValueError(f"{len(seeds)} seeds do not match {count} noise models")
    chunk = _batch_chunk_size(
        model,
        features.shape[0],
        max_batch_bytes,
        shared_binding=_shared_binding(parameter_sets),
    )
    results: list[EvaluationResult] = []
    for start in range(0, count, chunk):
        stop = min(start + chunk, count)
        logits_stack = model.forward_noisy_batch(
            features,
            noise_models[start:stop],
            parameter_sets=None if parameter_sets is None else parameter_sets[start:stop],
            shots=shots,
            seeds=None if seeds is None else seeds[start:stop],
            backend=backend,
        )
        for logits in logits_stack:
            predictions = np.argmax(logits, axis=-1)
            results.append(
                EvaluationResult(
                    accuracy=accuracy(logits, labels),
                    logits=logits,
                    predictions=predictions,
                )
            )
    return results


def accuracy_over_days(
    model: QNNModel,
    features: np.ndarray,
    labels: np.ndarray,
    noise_models: list[NoiseModel],
    parameters: Optional[np.ndarray] = None,
    backend: Optional[Backend] = None,
) -> np.ndarray:
    """Accuracy of one fixed model across a sequence of noise models (days).

    All days share one parameter binding, so the whole sweep collapses into
    a handful of vectorised multi-day backend calls (see
    :func:`evaluate_noisy_batch`).
    """
    results = evaluate_noisy_batch(
        model,
        features,
        labels,
        noise_models,
        parameter_sets=[parameters] * len(noise_models),
        backend=backend,
    )
    return np.array([result.accuracy for result in results])
