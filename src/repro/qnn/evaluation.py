"""Model evaluation under ideal and noisy execution.

All evaluation routes through the unified :class:`~repro.simulator.Backend`
API (pass ``backend=`` to override the shared default), so the accuracy
sweeps of Fig. 2 / Table I — thousands of evaluations of the same circuit
structure — reuse compiled programs instead of re-materialising every gate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.qnn.loss import accuracy
from repro.qnn.model import QNNModel
from repro.simulator import Backend, NoiseModel
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class EvaluationResult:
    """Accuracy plus the raw logits of an evaluation run."""

    accuracy: float
    logits: np.ndarray
    predictions: np.ndarray


def evaluate_ideal(
    model: QNNModel,
    features: np.ndarray,
    labels: np.ndarray,
    parameters: Optional[np.ndarray] = None,
    backend: Optional[Backend] = None,
) -> EvaluationResult:
    """Accuracy under noise-free statevector simulation."""
    logits = model.forward_ideal(features, parameters=parameters, backend=backend)
    predictions = np.argmax(logits, axis=-1)
    return EvaluationResult(
        accuracy=accuracy(logits, labels), logits=logits, predictions=predictions
    )


def evaluate_noisy(
    model: QNNModel,
    features: np.ndarray,
    labels: np.ndarray,
    noise_model: NoiseModel,
    parameters: Optional[np.ndarray] = None,
    shots: Optional[int] = None,
    seed: SeedLike = None,
    backend: Optional[Backend] = None,
) -> EvaluationResult:
    """Accuracy under a calibration-derived noise model.

    ``shots`` switches from exact expectation values to sampled ones, which
    emulates execution on real hardware (Fig. 8).
    """
    logits = model.forward_noisy(
        features, noise_model, parameters=parameters, shots=shots, seed=seed,
        backend=backend,
    )
    predictions = np.argmax(logits, axis=-1)
    return EvaluationResult(
        accuracy=accuracy(logits, labels), logits=logits, predictions=predictions
    )


def accuracy_over_days(
    model: QNNModel,
    features: np.ndarray,
    labels: np.ndarray,
    noise_models: list[NoiseModel],
    parameters: Optional[np.ndarray] = None,
    backend: Optional[Backend] = None,
) -> np.ndarray:
    """Accuracy of one fixed model across a sequence of noise models (days)."""
    return np.array(
        [
            evaluate_noisy(
                model, features, labels, noise_model, parameters=parameters,
                backend=backend,
            ).accuracy
            for noise_model in noise_models
        ]
    )
