"""Mini-batch training loop for QNN models.

The same trainer serves three roles in the paper's pipeline:

* baseline training in a noise-free environment,
* noise-aware training with a :class:`~repro.qnn.noise_injection.NoiseInjector`,
* the theta-update of ADMM compression, via the proximal term
  ``rho/2 * ||theta - target||^2`` and the frozen-parameter mask used during
  fine-tuning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.exceptions import TrainingError
from repro.qnn.loss import accuracy
from repro.qnn.model import QNNModel
from repro.qnn.noise_injection import NoiseInjector
from repro.qnn.optimizers import get_optimizer
from repro.simulator import Backend, default_statevector_backend
from repro.utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class TrainConfig:
    """Hyperparameters of a training run."""

    epochs: int = 30
    batch_size: int = 32
    learning_rate: float = 0.08
    optimizer: str = "adam"
    loss: str = "cross_entropy"
    shuffle: bool = True
    seed: SeedLike = 0
    verbose: bool = False

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise TrainingError(f"epochs must be positive, got {self.epochs}")
        if self.batch_size <= 0:
            raise TrainingError(f"batch_size must be positive, got {self.batch_size}")


@dataclass
class TrainResult:
    """Outcome of a training run."""

    parameters: np.ndarray
    loss_history: list[float] = field(default_factory=list)
    accuracy_history: list[float] = field(default_factory=list)
    epochs_run: int = 0

    @property
    def final_loss(self) -> float:
        """Loss of the last epoch (NaN before any epoch ran)."""
        return self.loss_history[-1] if self.loss_history else float("nan")

    @property
    def final_accuracy(self) -> float:
        """Training accuracy of the last epoch (NaN before any epoch ran)."""
        return self.accuracy_history[-1] if self.accuracy_history else float("nan")


class Trainer:
    """Mini-batch gradient-descent trainer.

    All forward/backward passes route through one execution backend (the
    shared default when ``backend`` is omitted), so gate matrices and fused
    programs are cached across mini-batches and epochs.
    """

    def __init__(
        self,
        model: QNNModel,
        config: Optional[TrainConfig] = None,
        backend: Optional[Backend] = None,
    ):
        self.model = model
        self.config = config or TrainConfig()
        self.backend = backend

    def train(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        noise_injector: Optional[NoiseInjector] = None,
        frozen_mask: Optional[np.ndarray] = None,
        prox_rho: float = 0.0,
        prox_target: Optional[np.ndarray] = None,
        initial_parameters: Optional[np.ndarray] = None,
        update_model: bool = True,
    ) -> TrainResult:
        """Run the training loop.

        Parameters
        ----------
        noise_injector:
            Optional measurement-noise injector (noise-aware training).
        frozen_mask:
            Boolean array; ``True`` entries are held fixed (fine-tuning of a
            compressed model freezes the compressed parameters).
        prox_rho / prox_target:
            Add ``rho/2 * ||theta - prox_target||^2`` to the loss (the ADMM
            theta-update).
        initial_parameters:
            Starting point; defaults to the model's current parameters.
        update_model:
            Write the trained parameters back into ``self.model``.
        """
        config = self.config
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels, dtype=int)
        if features.shape[0] != labels.shape[0]:
            raise TrainingError("features and labels disagree on the number of samples")
        if features.shape[0] == 0:
            raise TrainingError("cannot train on an empty dataset")

        parameters = np.array(
            self.model.parameters if initial_parameters is None else initial_parameters,
            dtype=float,
        )
        if frozen_mask is not None:
            frozen_mask = np.asarray(frozen_mask, dtype=bool)
            if frozen_mask.shape != parameters.shape:
                raise TrainingError("frozen_mask shape does not match the parameters")
        if prox_rho < 0:
            raise TrainingError(f"prox_rho must be non-negative, got {prox_rho}")
        if prox_rho > 0 and prox_target is None:
            raise TrainingError("prox_target is required when prox_rho > 0")

        rng = ensure_rng(config.seed)
        optimizer = get_optimizer(config.optimizer, config.learning_rate)
        result = TrainResult(parameters=parameters)
        num_samples = features.shape[0]

        # Encode the whole dataset once per ``train`` call: encoding is
        # per-sample, so row-slicing the encoded set is bit-identical to
        # encoding each minibatch — and every optimiser step below becomes
        # one fully batched forward/backward instead of encode + evaluate.
        backend = self.backend if self.backend is not None else default_statevector_backend()
        encoded = self.model.encoder.encode_statevectors(
            features, backend.simulator(self.model.num_qubits)
        )

        for epoch in range(config.epochs):
            order = rng.permutation(num_samples) if config.shuffle else np.arange(num_samples)
            epoch_losses = []
            for start in range(0, num_samples, config.batch_size):
                batch_index = order[start : start + config.batch_size]
                if noise_injector is None:
                    # The fully batched step: one ``execute_batch`` forward
                    # and one stacked adjoint sweep per optimiser step.
                    [(loss_value, gradient)] = self.model.loss_and_gradient_batch(
                        features[batch_index],
                        labels[batch_index],
                        [parameters],
                        loss=config.loss,
                        backend=backend,
                        initial_states=encoded[batch_index],
                    )
                else:
                    # Noise-aware training consumes the epoch rng stream
                    # inside the loss, so it keeps the per-call path (with
                    # the pre-encoded states reused).
                    loss_value, gradient = self.model.loss_and_gradient(
                        features[batch_index],
                        labels[batch_index],
                        parameters=parameters,
                        loss=config.loss,
                        noise_injector=noise_injector,
                        rng=rng,
                        backend=backend,
                        initial_states=encoded[batch_index],
                    )
                if prox_rho > 0:
                    loss_value += 0.5 * prox_rho * float(
                        np.sum((parameters - prox_target) ** 2)
                    )
                    gradient = gradient + prox_rho * (parameters - prox_target)
                if frozen_mask is not None:
                    gradient = np.where(frozen_mask, 0.0, gradient)
                parameters = optimizer.step(parameters, gradient)
                if frozen_mask is not None and prox_target is not None:
                    # Keep frozen entries exactly at their target values.
                    parameters = np.where(frozen_mask, prox_target, parameters)
                epoch_losses.append(loss_value)
            logits = self.model.forward_ideal(
                features,
                parameters=parameters,
                backend=backend,
                initial_states=encoded,
            )
            result.loss_history.append(float(np.mean(epoch_losses)))
            result.accuracy_history.append(accuracy(logits, labels))
            result.epochs_run = epoch + 1
            if config.verbose:  # pragma: no cover - logging only
                print(
                    f"epoch {epoch + 1:3d}/{config.epochs}  "
                    f"loss={result.loss_history[-1]:.4f}  "
                    f"train_acc={result.accuracy_history[-1]:.3f}"
                )

        result.parameters = parameters
        if update_model:
            self.model.parameters = parameters.copy()
        return result
