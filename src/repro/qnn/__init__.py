"""Quantum-neural-network layer: encoding, model, training, evaluation."""

from repro.qnn.encoding import AngleEncoder, EncodingOp
from repro.qnn.evaluation import (
    DEFAULT_BATCH_BYTES,
    EvaluationResult,
    accuracy_over_days,
    evaluate_ideal,
    evaluate_noisy,
    evaluate_noisy_batch,
)
from repro.qnn.gradients import (
    adjoint_gradient,
    adjoint_gradient_batch,
    clear_z_diagonal_cache,
    finite_difference_gradient,
    parameter_shift_gradient,
    shift_rules_for_circuit,
    z_diagonal,
    z_diagonal_cache_info,
)
from repro.qnn.loss import accuracy, cross_entropy_loss, get_loss, mse_loss, one_hot, softmax
from repro.qnn.model import QNNModel
from repro.qnn.noise_injection import NoiseInjector
from repro.qnn.optimizers import Adam, Optimizer, SGD, get_optimizer
from repro.qnn.trainer import TrainConfig, Trainer, TrainResult

__all__ = [
    "AngleEncoder",
    "EncodingOp",
    "QNNModel",
    "NoiseInjector",
    "TrainConfig",
    "Trainer",
    "TrainResult",
    "EvaluationResult",
    "evaluate_ideal",
    "evaluate_noisy",
    "evaluate_noisy_batch",
    "accuracy_over_days",
    "DEFAULT_BATCH_BYTES",
    "adjoint_gradient",
    "adjoint_gradient_batch",
    "clear_z_diagonal_cache",
    "parameter_shift_gradient",
    "finite_difference_gradient",
    "shift_rules_for_circuit",
    "z_diagonal",
    "z_diagonal_cache_info",
    "accuracy",
    "cross_entropy_loss",
    "mse_loss",
    "one_hot",
    "softmax",
    "get_loss",
    "Adam",
    "SGD",
    "Optimizer",
    "get_optimizer",
]
