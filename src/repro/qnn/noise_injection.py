"""Noise injection for noise-aware training (QuantumNAT-style, ref [12]).

Running full density-matrix simulations inside every training step would be
prohibitively slow, so — following the reference noise-aware training method
— noise is injected at the *measurement outcome* level: the ideal Z
expectation of each readout qubit is attenuated by a factor derived from the
error budget its physical qubit accumulates in the transpiled circuit, and
perturbed with Gaussian jitter.  The attenuation is differentiable, so the
adjoint gradient engine still provides exact gradients of the injected loss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.calibration.snapshot import CalibrationSnapshot
from repro.exceptions import TrainingError
from repro.simulator.noise_model import VIRTUAL_GATES
from repro.transpiler import TranspiledCircuit
from repro.utils.rng import SeedLike, ensure_rng


@dataclass
class NoiseInjector:
    """Attenuate-and-jitter model of device noise for training.

    Attributes
    ----------
    attenuation:
        Per-readout-qubit multiplicative factor in ``(0, 1]`` applied to the
        ideal expectations.
    sigma:
        Standard deviation of the additive Gaussian jitter.
    seed:
        Seed for the jitter stream (only used when ``apply`` is not given an
        explicit generator).
    """

    attenuation: np.ndarray
    sigma: float = 0.02
    seed: SeedLike = None

    def __post_init__(self) -> None:
        self.attenuation = np.asarray(self.attenuation, dtype=float)
        if np.any(self.attenuation <= 0) or np.any(self.attenuation > 1):
            raise TrainingError("attenuation factors must lie in (0, 1]")
        if self.sigma < 0:
            raise TrainingError(f"sigma must be non-negative, got {self.sigma}")
        self._rng = ensure_rng(self.seed)

    def apply(
        self, expectations: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Inject noise into a batch of expectations.

        Returns ``(noisy_expectations, attenuation)`` where the attenuation
        vector is the derivative of the injected values with respect to the
        ideal ones (needed for the chain rule).
        """
        expectations = np.asarray(expectations, dtype=float)
        if expectations.shape[-1] != self.attenuation.shape[0]:
            raise TrainingError(
                f"expectations with {expectations.shape[-1]} readouts do not match "
                f"{self.attenuation.shape[0]} attenuation factors"
            )
        generator = rng if rng is not None else self._rng
        jitter = generator.normal(0.0, self.sigma, size=expectations.shape) if self.sigma > 0 else 0.0
        return expectations * self.attenuation + jitter, self.attenuation

    # ------------------------------------------------------------------
    # Construction from device information
    # ------------------------------------------------------------------
    @classmethod
    def from_calibration(
        cls,
        transpiled: TranspiledCircuit,
        calibration: CalibrationSnapshot,
        readout_qubits: Sequence[int],
        damping_strength: float = 1.0,
        sigma: float = 0.02,
        seed: SeedLike = None,
    ) -> "NoiseInjector":
        """Derive attenuation factors from a calibration snapshot.

        For each logical readout qubit the error rates of all routed gates
        touching its physical qubit are summed (two-qubit gates count on both
        endpoints) and turned into an exponential damping factor; the
        physical qubit's readout error further shrinks the signal.  This is a
        first-order proxy for how much of the Z expectation survives, which
        is all noise-aware training needs.
        """
        budgets = {q: 0.0 for q in range(transpiled.coupling.num_qubits)}
        for gate in transpiled.routed.circuit.gates:
            if gate.name in VIRTUAL_GATES:
                continue
            rate = calibration.noise_on(gate.qubits)
            for qubit in gate.qubits:
                budgets[qubit] += rate
        attenuation = []
        for logical in readout_qubits:
            physical = transpiled.final_mapping[logical]
            gate_damping = np.exp(-damping_strength * budgets[physical])
            readout_damping = max(1e-3, 1.0 - 2.0 * calibration.readout(physical))
            attenuation.append(float(gate_damping * readout_damping))
        return cls(attenuation=np.asarray(attenuation), sigma=sigma, seed=seed)

    @classmethod
    def ideal(cls, num_readouts: int) -> "NoiseInjector":
        """An injector that changes nothing (useful as a neutral default)."""
        return cls(attenuation=np.ones(num_readouts), sigma=0.0)
