"""Angle encoding of classical features onto qubits.

Features are encoded as rotation angles, one qubit per feature per layer:
with ``n`` qubits and ``m`` features, the encoder uses ``ceil(m / n)``
rotation layers whose axes cycle through RY, RX, RZ (the robust data
encoding of LaRose & Coyle that the paper cites).  A 4x4 MNIST image
(16 features) on 4 qubits therefore becomes 4 rotation layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.exceptions import DatasetError

#: Rotation axes cycled across encoding layers.
ENCODING_AXES: tuple[str, ...] = ("ry", "rx", "rz")


@dataclass(frozen=True)
class EncodingOp:
    """One encoding rotation: which gate, on which logical qubit, from which feature."""

    gate: str
    logical_qubit: int
    feature_index: int


@dataclass(frozen=True)
class AngleEncoder:
    """Maps a feature vector to a sequence of per-qubit rotations.

    Attributes
    ----------
    num_qubits:
        Number of logical qubits available.
    num_features:
        Length of the feature vectors to encode.
    scale:
        Features are multiplied by this factor before being used as angles.
        Datasets in this package are normalized to ``[0, 1]``, so the default
        ``pi`` spreads them over half a rotation.
    """

    num_qubits: int
    num_features: int
    scale: float = float(np.pi)

    def __post_init__(self) -> None:
        if self.num_qubits <= 0:
            raise DatasetError(f"num_qubits must be positive, got {self.num_qubits}")
        if self.num_features <= 0:
            raise DatasetError(f"num_features must be positive, got {self.num_features}")

    @property
    def num_layers(self) -> int:
        """Number of rotation layers needed to encode every feature."""
        return int(np.ceil(self.num_features / self.num_qubits))

    def operations(self) -> list[EncodingOp]:
        """The ordered list of encoding rotations."""
        ops: list[EncodingOp] = []
        for layer in range(self.num_layers):
            axis = ENCODING_AXES[layer % len(ENCODING_AXES)]
            for qubit in range(self.num_qubits):
                feature = layer * self.num_qubits + qubit
                if feature >= self.num_features:
                    break
                ops.append(EncodingOp(gate=axis, logical_qubit=qubit, feature_index=feature))
        return ops

    def angles(self, features: np.ndarray) -> np.ndarray:
        """Scaled angles for a batch of feature vectors, shape ``(batch, m)``."""
        features = np.asarray(features, dtype=float)
        if features.ndim == 1:
            features = features[None, :]
        if features.shape[1] != self.num_features:
            raise DatasetError(
                f"feature vectors of length {features.shape[1]} do not match the "
                f"encoder configured for {self.num_features} features"
            )
        return features * self.scale

    def encode_statevectors(
        self,
        features: np.ndarray,
        simulator,
        qubit_mapping: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Prepare encoded statevectors on ``simulator``.

        ``qubit_mapping[logical]`` gives the physical qubit hosting each
        logical qubit (identity if omitted), so the same encoder works both
        on the logical register used for training and on the laid-out
        physical register used for noisy evaluation.
        """
        angles = self.angles(features)
        batch = angles.shape[0]
        states = simulator.zero_state(batch)
        for op in self.operations():
            qubit = op.logical_qubit if qubit_mapping is None else qubit_mapping[op.logical_qubit]
            states = simulator.apply_feature_rotations(
                states, op.gate, qubit, angles[:, op.feature_index]
            )
        return states

    def encode_density_matrices(
        self,
        features: np.ndarray,
        simulator,
        noise_model=None,
        qubit_mapping: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Prepare encoded density matrices, including encoding-gate noise."""
        angles = self.angles(features)
        batch = angles.shape[0]
        rho = simulator.zero_state(batch)
        for op in self.operations():
            qubit = op.logical_qubit if qubit_mapping is None else qubit_mapping[op.logical_qubit]
            rho = simulator.apply_feature_rotations(
                rho, op.gate, qubit, angles[:, op.feature_index], noise_model=noise_model
            )
        return rho

    def encode_density_matrices_multi(
        self,
        features: np.ndarray,
        simulator,
        noise_models: Sequence,
        qubit_mapping: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Encode one feature batch under many noise models at once.

        Returns a ``(len(noise_models), batch, dim, dim)`` stack — group ``g``
        equals :meth:`encode_density_matrices` under ``noise_models[g]``
        (entries may be ``None`` for noise-free encoding).  Every rotation is
        applied to the flattened group super-batch in one contraction, and
        each rotation's depolarizing channel carries per-group strengths, so
        encoding a year of calibration days costs one pass instead of one
        pass per day.
        """
        from repro.gates import Gate
        from repro.simulator import ops
        from repro.simulator.statevector import _feature_rotation_stack

        groups = len(noise_models)
        if groups == 1:
            encoded = self.encode_density_matrices(
                features, simulator, noise_model=noise_models[0],
                qubit_mapping=qubit_mapping,
            )
            return encoded[None, ...]
        angles = self.angles(features)
        batch = angles.shape[0]
        num_qubits = simulator.num_qubits
        rho = simulator.zero_state(groups * batch)
        for op in self.operations():
            qubit = op.logical_qubit if qubit_mapping is None else qubit_mapping[op.logical_qubit]
            stack = _feature_rotation_stack(op.gate, angles[:, op.feature_index])
            stack = stack.astype(rho.dtype, copy=False)
            rho = ops.apply_unitary_density(
                rho, np.tile(stack, (groups, 1, 1)), [qubit], num_qubits
            )
            probe = Gate(op.gate, (qubit,), param=0.0)
            probabilities = np.zeros(groups)
            for index, model in enumerate(noise_models):
                if model is None:
                    continue
                channel = model.channel_for_gate(probe)
                if channel is not None:
                    probabilities[index] = channel.probability
            if np.any(probabilities):
                rho = ops.apply_depolarizing_density(
                    rho, np.repeat(probabilities, batch), [qubit], num_qubits
                )
        return rho.reshape(groups, batch, simulator.dim, simulator.dim)
