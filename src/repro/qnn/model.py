"""The quantum-neural-network model: encoder + ansatz + measurement head.

A :class:`QNNModel` owns the trainable-parameter vector and knows how to run
itself in two environments:

* **ideal** (``forward_ideal``): noise-free statevector simulation of the
  logical circuit — the paper's ``W_p(theta)``;
* **noisy** (``forward_noisy``): density-matrix simulation of the circuit
  transpiled onto a physical device under a calibration-derived noise model —
  the paper's ``W_n(theta)``.

Class logits are Pauli-Z expectations of the readout qubits scaled by a
constant factor and fed to a softmax, following the TorchQuantum convention
used in the paper.
"""

from __future__ import annotations

import copy as copy_module

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

import numpy as np

from repro.circuits import QuantumCircuit, build_qucad_ansatz
from repro.exceptions import TrainingError
from repro.qnn.encoding import AngleEncoder
from repro.qnn.gradients import adjoint_gradient, adjoint_gradient_batch, z_diagonal
from repro.qnn.loss import get_loss
from repro.simulator import (
    Backend,
    NoiseModel,
    default_density_backend,
    default_statevector_backend,
)
from repro.transpiler import CouplingMap, Target, TranspiledCircuit
from repro.utils.rng import SeedLike, ensure_rng


@dataclass
class QNNModel:
    """A variational quantum classifier.

    Attributes
    ----------
    ansatz:
        Parameterized circuit with ``param_ref`` annotations.
    encoder:
        Angle encoder mapping feature vectors onto the logical qubits.
    readout_qubits:
        Logical qubits whose Z expectations become class logits (one per class).
    parameters:
        Current trainable-parameter vector.
    logit_scale:
        Multiplier applied to expectations before the softmax.
    transpiled:
        Optional device binding (layout + routing); set by :meth:`bind_to_device`.
    """

    ansatz: QuantumCircuit
    encoder: AngleEncoder
    readout_qubits: list[int]
    parameters: np.ndarray
    logit_scale: float = 6.0
    name: str = "qnn"
    transpiled: Optional[TranspiledCircuit] = None

    def __post_init__(self) -> None:
        self.parameters = np.asarray(self.parameters, dtype=float)
        if self.parameters.shape != (self.ansatz.num_parameters,):
            raise TrainingError(
                f"parameter vector of shape {self.parameters.shape} does not match "
                f"ansatz with {self.ansatz.num_parameters} parameters"
            )
        for qubit in self.readout_qubits:
            if not 0 <= qubit < self.ansatz.num_qubits:
                raise TrainingError(f"readout qubit {qubit} outside the register")

    # ------------------------------------------------------------------
    # Constructors and copies
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        num_qubits: int,
        num_features: int,
        num_classes: int,
        repeats: int = 2,
        seed: SeedLike = 0,
        logit_scale: float = 6.0,
        name: str = "qnn",
    ) -> "QNNModel":
        """Build the paper's model: QuCAD ansatz + angle encoding.

        ``num_classes`` readout qubits are taken from the front of the
        register, so ``num_classes`` must not exceed ``num_qubits``.
        """
        if num_classes > num_qubits:
            raise TrainingError(
                f"{num_classes} classes need at least that many readout qubits, "
                f"got {num_qubits}"
            )
        rng = ensure_rng(seed)
        ansatz = build_qucad_ansatz(num_qubits, repeats, name=f"{name}_ansatz")
        encoder = AngleEncoder(num_qubits=num_qubits, num_features=num_features)
        parameters = rng.uniform(-np.pi, np.pi, size=ansatz.num_parameters)
        return cls(
            ansatz=ansatz,
            encoder=encoder,
            readout_qubits=list(range(num_classes)),
            parameters=parameters,
            logit_scale=logit_scale,
            name=name,
        )

    @property
    def num_qubits(self) -> int:
        """Number of logical qubits of the ansatz."""
        return self.ansatz.num_qubits

    @property
    def num_classes(self) -> int:
        """Number of readout classes (one qubit per class)."""
        return len(self.readout_qubits)

    @property
    def num_parameters(self) -> int:
        """Size of the trainable-parameter vector."""
        return self.ansatz.num_parameters

    def copy(
        self,
        parameters: Optional[np.ndarray] = None,
        name: Optional[str] = None,
        share_device_binding: bool = True,
    ) -> "QNNModel":
        """An independent copy of this model.

        The parameter vector is always deep-copied, so training or
        compressing the copy never touches the original.  The device binding
        (``transpiled``) is *shared immutably* by default — and since PR 3
        the pipeline's result cache already shares one
        :class:`~repro.transpiler.TranspiledCircuit` across identically
        compiled models, so the whole binding graph is read-only by
        contract: ``bind`` returns a fresh circuit, ``to_physical`` returns
        a *memoised shared* circuit that callers must not mutate, and
        :meth:`bind_to_device` rebinds by assignment.  Pass
        ``share_device_binding=False`` to deep-copy the binding for callers
        that intend to mutate it (the deep copy detaches the routed
        artifact and its memo, not the pipeline's cached original).

        This replaces the old two-step pattern
        ``copy_with_parameters(...)`` + ``copy.transpiled = base.transpiled``,
        which aliased one mutable attribute across two models implicitly.
        """
        transpiled = self.transpiled
        if not share_device_binding and transpiled is not None:
            transpiled = copy_module.deepcopy(transpiled)
            # The detachment is about mutation safety, not cache transfer:
            # start the copy with an empty basis-translation memo instead of
            # duplicating up to PHYSICAL_CACHE_SIZE translated circuits.
            transpiled.routed._physical_cache.clear()
        return replace(
            self,
            parameters=np.asarray(
                self.parameters if parameters is None else parameters, dtype=float
            ).copy(),
            name=name or self.name,
            transpiled=transpiled,
        )

    def with_binding(
        self,
        transpiled: TranspiledCircuit,
        parameters: Optional[np.ndarray] = None,
        name: Optional[str] = None,
    ) -> "QNNModel":
        """A copy of this model served under a different device binding.

        This is the hot-swap constructor used by the serving layer: the
        original model keeps serving in-flight work untouched while the
        returned copy carries the freshly compiled ``transpiled`` artifact
        (and optionally re-adapted ``parameters``).  The binding is attached
        by assignment — compiled artifacts are immutable by contract, so the
        copy may share them with the pipeline's caches.
        """
        swapped = self.copy(parameters=parameters, name=name)
        swapped.transpiled = transpiled
        return swapped

    def copy_with_parameters(self, parameters: np.ndarray, name: Optional[str] = None) -> "QNNModel":
        """A copy of this model with a different parameter vector.

        Thin wrapper over :meth:`copy`; the device binding is shared because
        it only depends on the circuit structure, not on the parameter values.
        """
        return self.copy(parameters=parameters, name=name)

    # ------------------------------------------------------------------
    # Device binding
    # ------------------------------------------------------------------
    def bind_to_device(
        self,
        coupling: "CouplingMap | Target",
        calibration=None,
        initial_layout=None,
        pass_manager=None,
    ) -> TranspiledCircuit:
        """Transpile the ansatz onto a device and remember the result.

        ``coupling`` may be a bare :class:`~repro.transpiler.CouplingMap`
        (optionally with a ``calibration`` snapshot for the noise-aware
        layout) or a full :class:`~repro.transpiler.Target`.  Compilation
        runs through the staged pipeline, so rebinding the same ansatz for a
        new calibration day reuses the layout/routing artifacts whenever the
        snapshot sits inside the previous layout decision's optimality
        boundary; pass an explicit ``pass_manager`` to control the artifact
        pool (default: the process-wide one).
        """
        if isinstance(coupling, Target):
            if calibration is not None:
                raise TrainingError(
                    "pass the calibration inside the Target, not alongside it"
                )
            target = coupling
        else:
            target = Target(coupling=coupling, calibration=calibration)
        from repro.transpiler.pipeline import default_pass_manager

        manager = pass_manager if pass_manager is not None else default_pass_manager()
        self.transpiled = manager.compile(
            self.ansatz, target, initial_layout=initial_layout
        )
        return self.transpiled

    def _require_transpiled(self) -> TranspiledCircuit:
        if self.transpiled is None:
            raise TrainingError(
                "model is not bound to a device; call bind_to_device(coupling, ...) first"
            )
        return self.transpiled

    # ------------------------------------------------------------------
    # Forward passes
    # ------------------------------------------------------------------
    def ideal_expectations(
        self,
        features: np.ndarray,
        parameters: Optional[np.ndarray] = None,
        backend: Optional[Backend] = None,
        initial_states: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Noise-free Z expectations of the readout qubits.

        Execution routes through the unified backend API: the ansatz is
        compiled once per (structure, parameters) pair and reused across
        calls, so evaluating many data batches at fixed parameters — the
        dominant workload of the online phase — costs only the fused matrix
        applications.  ``initial_states`` skips the encoding step when the
        caller already holds the encoded states (the trainer pre-encodes the
        dataset once per ``train`` call); encoding is per-sample, so a
        row-slice of a previously encoded set is bit-identical to encoding
        the slice.
        """
        parameters = self.parameters if parameters is None else np.asarray(parameters, dtype=float)
        backend = backend if backend is not None else default_statevector_backend()
        if initial_states is None:
            simulator = backend.simulator(self.num_qubits)
            initial_states = self.encoder.encode_statevectors(features, simulator)
        result = backend.execute(self.ansatz, initial_states, parameters=parameters)
        return result.expectation_z(self.readout_qubits)

    def forward_ideal(
        self,
        features: np.ndarray,
        parameters: Optional[np.ndarray] = None,
        backend: Optional[Backend] = None,
        initial_states: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Noise-free class logits."""
        return self.logit_scale * self.ideal_expectations(
            features, parameters, backend=backend, initial_states=initial_states
        )

    def _normalize_parameter_sets(
        self, parameter_sets, count: Optional[int] = None
    ) -> list[np.ndarray]:
        """Per-binding parameter vectors (``None`` entries → own parameters)."""
        if parameter_sets is None:
            if count is None:
                raise TrainingError("parameter_sets or an item count is required")
            return [self.parameters] * count
        normalized = [
            self.parameters if item is None else np.asarray(item, dtype=float)
            for item in parameter_sets
        ]
        if count is not None and len(normalized) != count:
            raise TrainingError(
                f"{len(normalized)} parameter sets do not match {count} bindings"
            )
        return normalized

    def ideal_expectations_batch(
        self,
        features: np.ndarray,
        parameter_sets: Sequence[Optional[np.ndarray]],
        backend: Optional[Backend] = None,
    ) -> np.ndarray:
        """Noise-free Z expectations under many parameter bindings at once.

        One encode plus one vectorised ``execute_batch`` serves every
        binding; the result has shape ``(len(parameter_sets), batch,
        num_classes)`` and row ``p`` is bit-identical to
        ``ideal_expectations(features, parameter_sets[p])``.
        """
        parameter_sets = self._normalize_parameter_sets(parameter_sets)
        backend = backend if backend is not None else default_statevector_backend()
        simulator = backend.simulator(self.num_qubits)
        initial = self.encoder.encode_statevectors(features, simulator)
        results = backend.execute_batch(self.ansatz, parameter_sets, initial)
        return np.stack(
            [result.expectation_z(self.readout_qubits) for result in results]
        )

    def forward_ideal_batch(
        self,
        features: np.ndarray,
        parameter_sets: Sequence[Optional[np.ndarray]],
        backend: Optional[Backend] = None,
    ) -> np.ndarray:
        """Noise-free class logits for many parameter bindings, stacked."""
        return self.logit_scale * self.ideal_expectations_batch(
            features, parameter_sets, backend=backend
        )

    def noisy_expectations(
        self,
        features: np.ndarray,
        noise_model: NoiseModel,
        parameters: Optional[np.ndarray] = None,
        shots: Optional[int] = None,
        seed: SeedLike = None,
        apply_readout_error: bool = True,
        backend: Optional[Backend] = None,
    ) -> np.ndarray:
        """Z expectations under a device noise model (density-matrix simulation)."""
        parameters = self.parameters if parameters is None else np.asarray(parameters, dtype=float)
        transpiled = self._require_transpiled()
        device_qubits = transpiled.coupling.num_qubits
        backend = backend if backend is not None else default_density_backend()
        simulator = backend.simulator(device_qubits)
        mapping = [
            transpiled.encoding_physical_qubit(logical)
            for logical in range(self.num_qubits)
        ]
        initial = self.encoder.encode_density_matrices(
            features, simulator, noise_model=noise_model, qubit_mapping=mapping
        )
        physical = transpiled.to_physical(parameters)
        result = backend.execute(physical, initial, noise_model=noise_model)
        measured = transpiled.measured_physical_qubits(self.readout_qubits)
        if shots is None:
            return result.expectation_z(measured, apply_readout_error=apply_readout_error)
        return result.sample_expectation_z(
            measured, shots=shots, seed=seed, apply_readout_error=apply_readout_error
        )

    def forward_noisy(
        self,
        features: np.ndarray,
        noise_model: NoiseModel,
        parameters: Optional[np.ndarray] = None,
        shots: Optional[int] = None,
        seed: SeedLike = None,
        backend: Optional[Backend] = None,
    ) -> np.ndarray:
        """Class logits under a device noise model."""
        expectations = self.noisy_expectations(
            features, noise_model, parameters=parameters, shots=shots, seed=seed,
            backend=backend,
        )
        return self.logit_scale * expectations

    def noisy_expectations_batch(
        self,
        features: np.ndarray,
        noise_models: Sequence[NoiseModel],
        parameter_sets: Optional[Sequence[Optional[np.ndarray]]] = None,
        shots: Optional[int] = None,
        seeds: Optional[Sequence[SeedLike]] = None,
        apply_readout_error: bool = True,
        backend: Optional[Backend] = None,
    ) -> np.ndarray:
        """Noisy Z expectations for many (parameters, noise model) bindings.

        The whole set of bindings — e.g. every calibration day of a Fig. 2
        sweep — is one backend call: encoding runs once over the flattened
        binding super-batch (per-binding channel strengths) and the physical
        circuit walk applies each gate once across all bindings.  Returns
        shape ``(len(noise_models), batch, num_classes)``; row ``p`` is
        bit-identical to ``noisy_expectations(features, noise_models[p],
        parameter_sets[p], shots=shots, seed=seeds[p])``.
        """
        count = len(noise_models)
        parameter_sets = self._normalize_parameter_sets(parameter_sets, count)
        if seeds is not None and len(seeds) != count:
            raise TrainingError(f"{len(seeds)} seeds do not match {count} bindings")
        transpiled = self._require_transpiled()
        device_qubits = transpiled.coupling.num_qubits
        backend = backend if backend is not None else default_density_backend()
        simulator = backend.simulator(device_qubits)
        mapping = [
            transpiled.encoding_physical_qubit(logical)
            for logical in range(self.num_qubits)
        ]
        initial = self.encoder.encode_density_matrices_multi(
            features, simulator, noise_models=noise_models, qubit_mapping=mapping
        )
        physical = [transpiled.to_physical(item) for item in parameter_sets]
        results = backend.execute_batch(
            physical, initial_states=initial, noise_models=list(noise_models)
        )
        measured = transpiled.measured_physical_qubits(self.readout_qubits)
        rows = []
        for index, result in enumerate(results):
            if shots is None:
                rows.append(
                    result.expectation_z(
                        measured, apply_readout_error=apply_readout_error
                    )
                )
            else:
                rows.append(
                    result.sample_expectation_z(
                        measured,
                        shots=shots,
                        seed=None if seeds is None else seeds[index],
                        apply_readout_error=apply_readout_error,
                    )
                )
        return np.stack(rows)

    def forward_noisy_batch(
        self,
        features: np.ndarray,
        noise_models: Sequence[NoiseModel],
        parameter_sets: Optional[Sequence[Optional[np.ndarray]]] = None,
        shots: Optional[int] = None,
        seeds: Optional[Sequence[SeedLike]] = None,
        backend: Optional[Backend] = None,
    ) -> np.ndarray:
        """Stacked noisy class logits for many bindings (one backend call)."""
        return self.logit_scale * self.noisy_expectations_batch(
            features,
            noise_models,
            parameter_sets=parameter_sets,
            shots=shots,
            seeds=seeds,
            backend=backend,
        )

    # ------------------------------------------------------------------
    # Loss and gradient (noise-free path used for training / compression)
    # ------------------------------------------------------------------
    def loss_and_gradient(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        parameters: Optional[np.ndarray] = None,
        loss: str = "cross_entropy",
        noise_injector=None,
        rng: Optional[np.random.Generator] = None,
        backend: Optional[Backend] = None,
        initial_states: Optional[np.ndarray] = None,
    ) -> tuple[float, np.ndarray]:
        """Training loss and its gradient w.r.t. the trainable parameters.

        The forward/backward pass runs on the noise-free backend (compiled
        and cached per parameter binding); if a ``noise_injector`` is given
        (noise-aware training, ref [12]), the expectations are attenuated
        and jittered before the loss, and the attenuation is chained into
        the gradient.  ``initial_states`` skips encoding when the caller
        already holds the encoded batch.
        """
        parameters = self.parameters if parameters is None else np.asarray(parameters, dtype=float)
        backend = backend if backend is not None else default_statevector_backend()
        loss_fn = get_loss(loss)
        # One encode + one compiled forward serves both the loss value and
        # (via its final states) the adjoint backward sweep below.
        if initial_states is None:
            simulator = backend.simulator(self.num_qubits)
            initial = self.encoder.encode_statevectors(features, simulator)
        else:
            initial = initial_states
        forward = backend.execute(self.ansatz, initial, parameters=parameters)
        expectations = forward.expectation_z(self.readout_qubits)
        if noise_injector is not None:
            noisy_expectations, attenuation = noise_injector.apply(expectations, rng=rng)
        else:
            noisy_expectations, attenuation = expectations, np.ones(self.num_classes)
        logits = self.logit_scale * noisy_expectations
        loss_value, dloss_dlogits = loss_fn(logits, labels)
        dloss_dexpectations = self.logit_scale * attenuation * dloss_dlogits

        num_qubits = self.num_qubits
        diagonals = np.zeros((features.shape[0], 2**num_qubits))
        for column, qubit in enumerate(self.readout_qubits):
            diagonals += dloss_dexpectations[:, column : column + 1] * z_diagonal(
                qubit, num_qubits
            )

        engine = getattr(backend, "engine", None)
        gradient, _ = adjoint_gradient(
            self.ansatz,
            parameters,
            initial,
            diagonals,
            engine=engine,
            final_states=forward.states,
        )
        return loss_value, gradient

    def loss_and_gradient_batch(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        parameter_sets: Sequence[Optional[np.ndarray]],
        loss: str = "cross_entropy",
        backend: Optional[Backend] = None,
        initial_states: Optional[np.ndarray] = None,
    ) -> list[tuple[float, np.ndarray]]:
        """Loss and gradient for many parameter bindings in one forward pass.

        The forward evolutions of every binding run as a single vectorised
        ``execute_batch`` call, and the adjoint backward sweeps of *all*
        bindings run as one stacked sweep
        (:func:`repro.qnn.gradients.adjoint_gradient_batch`): each gate's
        dagger is applied once across the binding super-batch instead of
        once per binding.  Entry ``p`` is bit-identical to
        ``loss_and_gradient(features, labels, parameter_sets[p])`` without a
        noise injector.
        """
        parameter_sets = self._normalize_parameter_sets(parameter_sets)
        backend = backend if backend is not None else default_statevector_backend()
        loss_fn = get_loss(loss)
        if initial_states is None:
            simulator = backend.simulator(self.num_qubits)
            initial = self.encoder.encode_statevectors(features, simulator)
        else:
            initial = initial_states
        forwards = backend.execute_batch(self.ansatz, parameter_sets, initial)
        engine = getattr(backend, "engine", None)
        num_qubits = self.num_qubits
        losses: list[float] = []
        diagonal_stack: list[np.ndarray] = []
        for parameters, forward in zip(parameter_sets, forwards):
            expectations = forward.expectation_z(self.readout_qubits)
            logits = self.logit_scale * expectations
            loss_value, dloss_dlogits = loss_fn(logits, labels)
            dloss_dexpectations = self.logit_scale * dloss_dlogits
            diagonals = np.zeros((features.shape[0], 2**num_qubits))
            for column, qubit in enumerate(self.readout_qubits):
                diagonals += dloss_dexpectations[:, column : column + 1] * z_diagonal(
                    qubit, num_qubits
                )
            losses.append(loss_value)
            diagonal_stack.append(diagonals)
        sweeps = adjoint_gradient_batch(
            self.ansatz,
            parameter_sets,
            initial,
            np.stack(diagonal_stack),
            engine=engine,
            final_states=[forward.states for forward in forwards],
        )
        return [
            (loss_value, gradient)
            for loss_value, (gradient, _) in zip(losses, sweeps)
        ]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-friendly snapshot of the model configuration and parameters."""
        return {
            "name": self.name,
            "num_qubits": self.num_qubits,
            "num_features": self.encoder.num_features,
            "num_classes": self.num_classes,
            "logit_scale": self.logit_scale,
            "parameters": self.parameters.tolist(),
        }
