"""Gradient-descent optimizers for QNN parameters."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import TrainingError


class Optimizer:
    """Base interface: ``step`` maps (parameters, gradient) to new parameters."""

    def step(self, parameters: np.ndarray, gradient: np.ndarray) -> np.ndarray:
        """Return the updated parameters for the given gradient."""
        raise NotImplementedError

    def reset(self) -> None:
        """Clear internal state (momentum, moment estimates)."""


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, learning_rate: float = 0.05, momentum: float = 0.0):
        if learning_rate <= 0:
            raise TrainingError(f"learning_rate must be positive, got {learning_rate}")
        if not 0.0 <= momentum < 1.0:
            raise TrainingError(f"momentum must lie in [0, 1), got {momentum}")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._velocity: Optional[np.ndarray] = None

    def step(self, parameters: np.ndarray, gradient: np.ndarray) -> np.ndarray:
        """One (momentum-)SGD update."""
        gradient = np.asarray(gradient, dtype=float)
        if self._velocity is None or self._velocity.shape != gradient.shape:
            self._velocity = np.zeros_like(gradient)
        self._velocity = self.momentum * self._velocity - self.learning_rate * gradient
        return parameters + self._velocity

    def reset(self) -> None:
        """Drop the momentum buffer."""
        self._velocity = None


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba) — the default for QNN training here."""

    def __init__(
        self,
        learning_rate: float = 0.05,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ):
        if learning_rate <= 0:
            raise TrainingError(f"learning_rate must be positive, got {learning_rate}")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m: Optional[np.ndarray] = None
        self._v: Optional[np.ndarray] = None
        self._step_count = 0

    def step(self, parameters: np.ndarray, gradient: np.ndarray) -> np.ndarray:
        """One Adam update with bias-corrected moment estimates."""
        gradient = np.asarray(gradient, dtype=float)
        if self._m is None or self._m.shape != gradient.shape:
            self._m = np.zeros_like(gradient)
            self._v = np.zeros_like(gradient)
            self._step_count = 0
        self._step_count += 1
        self._m = self.beta1 * self._m + (1 - self.beta1) * gradient
        self._v = self.beta2 * self._v + (1 - self.beta2) * gradient**2
        m_hat = self._m / (1 - self.beta1**self._step_count)
        v_hat = self._v / (1 - self.beta2**self._step_count)
        return parameters - self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)

    def reset(self) -> None:
        """Drop the moment estimates."""
        self._m = None
        self._v = None
        self._step_count = 0


def get_optimizer(name: str, learning_rate: float = 0.05) -> Optimizer:
    """Create an optimizer by name (``"sgd"`` or ``"adam"``)."""
    key = name.lower()
    if key == "sgd":
        return SGD(learning_rate=learning_rate)
    if key == "adam":
        return Adam(learning_rate=learning_rate)
    raise TrainingError(f"unknown optimizer {name!r}; use 'sgd' or 'adam'")
