"""Loss functions with analytic gradients (no autograd framework needed)."""

from __future__ import annotations

import numpy as np

from repro.exceptions import TrainingError


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """One-hot encode integer labels."""
    labels = np.asarray(labels, dtype=int)
    if labels.ndim != 1:
        raise TrainingError("labels must be a 1-D integer array")
    if labels.min() < 0 or labels.max() >= num_classes:
        raise TrainingError(
            f"labels must lie in [0, {num_classes}), got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    encoded = np.zeros((labels.shape[0], num_classes), dtype=float)
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded


def cross_entropy_loss(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean softmax cross-entropy and its gradient w.r.t. the logits.

    Returns ``(loss, dloss/dlogits)`` where the gradient already includes the
    ``1/batch`` factor, so it can be chained directly into the adjoint
    gradient engine.
    """
    logits = np.asarray(logits, dtype=float)
    if logits.ndim != 2:
        raise TrainingError("logits must be a (batch, classes) array")
    batch, num_classes = logits.shape
    targets = one_hot(labels, num_classes)
    probabilities = softmax(logits)
    clipped = np.clip(probabilities, 1e-12, 1.0)
    loss = float(-np.sum(targets * np.log(clipped)) / batch)
    gradient = (probabilities - targets) / batch
    return loss, gradient


def mse_loss(logits: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean squared error against one-hot targets, with gradient."""
    logits = np.asarray(logits, dtype=float)
    if logits.ndim != 2:
        raise TrainingError("logits must be a (batch, classes) array")
    batch, num_classes = logits.shape
    targets = one_hot(labels, num_classes)
    diff = logits - targets
    loss = float(np.mean(diff**2))
    gradient = 2.0 * diff / diff.size
    return loss, gradient


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 classification accuracy."""
    predictions = np.argmax(np.asarray(logits), axis=-1)
    return float(np.mean(predictions == np.asarray(labels)))


LOSS_FUNCTIONS = {
    "cross_entropy": cross_entropy_loss,
    "mse": mse_loss,
}


def get_loss(name: str):
    """Look up a loss function by name."""
    if name not in LOSS_FUNCTIONS:
        raise TrainingError(
            f"unknown loss {name!r}; available: {sorted(LOSS_FUNCTIONS)}"
        )
    return LOSS_FUNCTIONS[name]
