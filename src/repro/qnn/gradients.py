"""Gradient engines for variational circuits.

Two engines are provided:

* :func:`adjoint_gradient` — reverse-mode differentiation of noise-free
  statevector simulations.  One forward pass plus one backward sweep yields
  the gradient with respect to *every* trainable parameter, which makes the
  repeated retraining in QuCAD's offline stage affordable.
* :func:`parameter_shift_gradient` — the hardware-compatible shift rule
  (two-term for Pauli rotations, four-term for controlled rotations).  It is
  simulator-agnostic so it also differentiates noisy density-matrix
  evaluations, and it doubles as an independent check of the adjoint engine
  in the test suite.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Sequence

import numpy as np

from repro.circuits import QuantumCircuit
from repro.exceptions import TrainingError
from repro.simulator import ops

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulator.engine import SimulationEngine

# Four-term shift-rule coefficients for generators with eigenvalues {0, +-1/2}
# (controlled rotations): d<O>/dt = c_plus [f(t+pi/2) - f(t-pi/2)]
#                                  - c_minus [f(t+3pi/2) - f(t-3pi/2)].
_SQRT2 = np.sqrt(2.0)
FOUR_TERM_C_PLUS = (_SQRT2 + 1.0) / (4.0 * _SQRT2)
FOUR_TERM_C_MINUS = (_SQRT2 - 1.0) / (4.0 * _SQRT2)


def adjoint_gradient(
    circuit: QuantumCircuit,
    parameters: np.ndarray,
    initial_states: np.ndarray,
    observable_diagonals: np.ndarray,
    engine: Optional["SimulationEngine"] = None,
    final_states: Optional[np.ndarray] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Gradient of ``sum_b <psi_b| D_b |psi_b>`` w.r.t. the trainable parameters.

    Parameters
    ----------
    circuit:
        Ansatz with ``param_ref`` annotations (not bound).
    parameters:
        Trainable-parameter vector.
    initial_states:
        Encoded input states, shape ``(batch, 2**n)``.
    observable_diagonals:
        Per-sample diagonal observables ``D_b``, shape ``(batch, 2**n)``.
        For classification this is the loss gradient folded into a weighted
        sum of Pauli-Z diagonals, so a single sweep yields the full loss
        gradient.
    engine:
        Compilation engine (defaults to the process-wide one).  The forward
        pass runs the fused compiled program; the backward sweep — which
        needs per-gate granularity to attribute overlaps to parameters —
        reuses the engine's cached per-gate matrices and daggers, so no gate
        matrix is rebuilt across mini-batch iterations at fixed parameters.
    final_states:
        Optional evolved states ``U(theta) |initial>`` from a forward pass
        the caller already ran (e.g. for the loss value); when given, the
        internal forward pass is skipped entirely.

    Returns
    -------
    (gradient, final_states):
        ``gradient`` has one entry per parameter; ``final_states`` are the
        evolved statevectors (reusable for the loss value).
    """
    from repro.simulator.engine import default_engine

    parameters = np.asarray(parameters, dtype=float)
    engine = engine if engine is not None else default_engine()
    complex_dtype = getattr(engine, "complex_dtype", np.dtype(np.complex128))
    num_qubits = circuit.num_qubits
    if initial_states.shape[0] != observable_diagonals.shape[0]:
        raise TrainingError("initial_states and observable_diagonals batch mismatch")

    if final_states is None:
        states = np.array(initial_states, dtype=complex_dtype, copy=True)
        program = engine.compile(circuit, parameters)
        states = ops.apply_fused_statevector(states, program.operations, num_qubits)
        final_states = states.copy()
    else:
        final_states = np.asarray(final_states, dtype=complex_dtype)
        if final_states.shape != initial_states.shape:
            raise TrainingError("final_states and initial_states shape mismatch")
        states = final_states

    bound = engine.bound_circuit(circuit, parameters)
    gradient = np.zeros(circuit.num_parameters, dtype=float)
    # Cast the (real) diagonals to the states' precision so a complex64
    # sweep never upcasts; bit-identical at the float64 default.
    observable_diagonals = np.asarray(observable_diagonals).astype(
        states.real.dtype, copy=False
    )
    lam = observable_diagonals * states  # D_b |psi_b>
    psi = states
    for index in range(len(bound.gates) - 1, -1, -1):
        record = bound.gates[index]
        gate = record.gate
        psi = ops.apply_unitary_statevector(psi, record.dagger, record.qubits, num_qubits)
        if gate.param_ref is not None and gate.trainable:
            derivative = bound.derivative(index)
            d_psi = ops.apply_unitary_statevector(psi, derivative, record.qubits, num_qubits)
            overlap = np.sum(lam.conj() * d_psi)
            gradient[gate.param_ref] += 2.0 * float(np.real(overlap))
        lam = ops.apply_unitary_statevector(lam, record.dagger, record.qubits, num_qubits)
    return gradient, final_states


def adjoint_gradient_batch(
    circuit: QuantumCircuit,
    parameter_sets: Sequence[np.ndarray],
    initial_states: np.ndarray,
    observable_diagonals: np.ndarray,
    engine: Optional["SimulationEngine"] = None,
    final_states: Optional[Sequence[np.ndarray]] = None,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Adjoint gradients for many parameter bindings in one backward sweep.

    The per-binding states are flattened into one ``(groups * batch, dim)``
    super-batch so each gate's dagger (and derivative) is applied once across
    every binding.  When all bindings resolve to the same cached bound
    circuit — the trainer's regime, where one parameter vector drives the
    whole minibatch — the shared 2-D matrices broadcast over the super-batch;
    otherwise per-binding matrix stacks are used.  Either way each binding's
    overlap sums run over its own contiguous slice, so the result is
    bit-identical to calling :func:`adjoint_gradient` once per binding.

    ``initial_states`` may be one shared ``(batch, dim)`` array or a
    ``(groups, batch, dim)`` stack; ``observable_diagonals`` likewise.
    ``final_states``, when provided, is a per-binding sequence of evolved
    states.  Returns one ``(gradient, final_states)`` pair per binding,
    matching :func:`adjoint_gradient`.
    """
    from repro.simulator.engine import default_engine

    engine = engine if engine is not None else default_engine()
    complex_dtype = getattr(engine, "complex_dtype", np.dtype(np.complex128))
    num_qubits = circuit.num_qubits
    groups = len(parameter_sets)
    if groups == 0:
        return []
    params_list = [np.asarray(p, dtype=float) for p in parameter_sets]

    initial = np.asarray(initial_states)
    initial_list = [initial] * groups if initial.ndim == 2 else list(initial)
    diagonals = np.asarray(observable_diagonals)
    diag_list = [diagonals] * groups if diagonals.ndim == 2 else list(diagonals)
    if len(initial_list) != groups or len(diag_list) != groups:
        raise TrainingError(
            "adjoint_gradient_batch: initial_states / observable_diagonals "
            "group counts do not match parameter_sets"
        )
    batch = initial_list[0].shape[0]
    for init, diag in zip(initial_list, diag_list):
        if init.shape[0] != batch or diag.shape[0] != batch:
            raise TrainingError("adjoint_gradient_batch: ragged batch shapes")

    if final_states is None:
        finals = []
        for params, init in zip(params_list, initial_list):
            states = np.array(init, dtype=complex_dtype, copy=True)
            program = engine.compile(circuit, params)
            finals.append(
                ops.apply_fused_statevector(states, program.operations, num_qubits)
            )
    else:
        finals = [np.asarray(f, dtype=complex_dtype) for f in final_states]
        if len(finals) != groups:
            raise TrainingError(
                "adjoint_gradient_batch: final_states group count mismatch"
            )

    bounds = [engine.bound_circuit(circuit, params) for params in params_list]
    reference = bounds[0]
    # The engine's LRU returns one object per (structure, binding) digest, so
    # identity detects the shared-binding regime without array comparisons.
    shared = all(b is reference for b in bounds[1:])

    real_dtype = finals[0].real.dtype
    lam = np.concatenate(
        [
            np.asarray(d).astype(real_dtype, copy=False) * s
            for d, s in zip(diag_list, finals)
        ],
        axis=0,
    )
    psi = np.concatenate(finals, axis=0)
    gradients = [np.zeros(circuit.num_parameters, dtype=float) for _ in range(groups)]
    for index in range(len(reference.gates) - 1, -1, -1):
        record = reference.gates[index]
        gate = record.gate
        if shared:
            dagger = record.dagger
        else:
            dagger = np.repeat(
                np.stack([b.gates[index].dagger for b in bounds]), batch, axis=0
            )
        psi = ops.apply_unitary_statevector(psi, dagger, record.qubits, num_qubits)
        if gate.param_ref is not None and gate.trainable:
            if shared:
                derivative = reference.derivative(index)
            else:
                derivative = np.repeat(
                    np.stack([b.derivative(index) for b in bounds]), batch, axis=0
                )
            d_psi = ops.apply_unitary_statevector(
                psi, derivative, record.qubits, num_qubits
            )
            product = lam.conj() * d_psi
            for group in range(groups):
                overlap = np.sum(product[group * batch : (group + 1) * batch])
                gradients[group][gate.param_ref] += 2.0 * float(np.real(overlap))
        lam = ops.apply_unitary_statevector(lam, dagger, record.qubits, num_qubits)
    return list(zip(gradients, finals))


def expectation_from_diagonals(
    states: np.ndarray, observable_diagonals: np.ndarray
) -> float:
    """``sum_b <psi_b| D_b |psi_b>`` for diagonal observables."""
    probabilities = np.abs(states) ** 2
    return float(np.sum(probabilities * observable_diagonals))


# Observable diagonals depend only on (qubit, num_qubits) yet were rebuilt on
# every gradient call; the cache returns read-only arrays so one shared copy
# is safe across callers.  ``builds`` counts cache misses for the regression
# test pinning the memoisation.
_Z_DIAGONAL_CACHE: dict[tuple[int, int], np.ndarray] = {}
_Z_DIAGONAL_BUILDS = 0
_Z_DIAGONAL_MAX_ENTRIES = 512


def z_diagonal(qubit: int, num_qubits: int) -> np.ndarray:
    """Diagonal of the Pauli-Z observable on ``qubit`` (big-endian indexing).

    Memoised per ``(qubit, num_qubits)``; the returned array is read-only.
    """
    global _Z_DIAGONAL_BUILDS
    key = (int(qubit), int(num_qubits))
    cached = _Z_DIAGONAL_CACHE.get(key)
    if cached is None:
        indices = np.arange(2**num_qubits)
        bits = (indices >> (num_qubits - 1 - qubit)) & 1
        cached = 1.0 - 2.0 * bits
        cached.setflags(write=False)
        if len(_Z_DIAGONAL_CACHE) >= _Z_DIAGONAL_MAX_ENTRIES:
            _Z_DIAGONAL_CACHE.clear()
        _Z_DIAGONAL_CACHE[key] = cached
        _Z_DIAGONAL_BUILDS += 1
    return cached


def z_diagonal_cache_info() -> dict[str, int]:
    """Cache counters: ``entries`` currently held, ``builds`` since reset."""
    return {"entries": len(_Z_DIAGONAL_CACHE), "builds": _Z_DIAGONAL_BUILDS}


def clear_z_diagonal_cache() -> None:
    """Drop every cached diagonal and reset the build counter (for tests)."""
    global _Z_DIAGONAL_BUILDS
    _Z_DIAGONAL_CACHE.clear()
    _Z_DIAGONAL_BUILDS = 0


def shift_rules_for_circuit(circuit: QuantumCircuit) -> list[str]:
    """Per-parameter shift rule derived from the gates referencing each parameter."""
    rules = ["two_term"] * circuit.num_parameters
    for gate in circuit.gates:
        if gate.param_ref is not None and gate.spec.shift_rule is not None:
            rules[gate.param_ref] = gate.spec.shift_rule
    return rules


def parameter_shift_gradient(
    function: Callable[[np.ndarray], float],
    parameters: np.ndarray,
    rules: Sequence[str],
) -> np.ndarray:
    """Exact gradient of ``function(parameters)`` by the parameter-shift rule.

    ``function`` must be an expectation-valued function of the parameter
    vector (it is re-evaluated at shifted parameter values).  ``rules[i]`` is
    ``"two_term"`` for Pauli rotations or ``"four_term"`` for controlled
    rotations.
    """
    parameters = np.asarray(parameters, dtype=float)
    if len(rules) != parameters.shape[0]:
        raise TrainingError(
            f"{len(rules)} shift rules provided for {parameters.shape[0]} parameters"
        )
    gradient = np.zeros_like(parameters)
    for index, rule in enumerate(rules):
        shifted = parameters.copy()
        if rule == "two_term":
            shifted[index] = parameters[index] + np.pi / 2
            plus = function(shifted)
            shifted[index] = parameters[index] - np.pi / 2
            minus = function(shifted)
            gradient[index] = 0.5 * (plus - minus)
        elif rule == "four_term":
            shifted[index] = parameters[index] + np.pi / 2
            plus_near = function(shifted)
            shifted[index] = parameters[index] - np.pi / 2
            minus_near = function(shifted)
            shifted[index] = parameters[index] + 3 * np.pi / 2
            plus_far = function(shifted)
            shifted[index] = parameters[index] - 3 * np.pi / 2
            minus_far = function(shifted)
            gradient[index] = FOUR_TERM_C_PLUS * (plus_near - minus_near) - (
                FOUR_TERM_C_MINUS * (plus_far - minus_far)
            )
        else:
            raise TrainingError(f"unknown shift rule {rule!r} for parameter {index}")
    return gradient


def finite_difference_gradient(
    function: Callable[[np.ndarray], float],
    parameters: np.ndarray,
    epsilon: float = 1e-5,
) -> np.ndarray:
    """Central finite differences, used as a last-resort numerical check."""
    parameters = np.asarray(parameters, dtype=float)
    gradient = np.zeros_like(parameters)
    for index in range(parameters.shape[0]):
        shifted = parameters.copy()
        shifted[index] = parameters[index] + epsilon
        plus = function(shifted)
        shifted[index] = parameters[index] - epsilon
        minus = function(shifted)
        gradient[index] = (plus - minus) / (2 * epsilon)
    return gradient
