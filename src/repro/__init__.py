"""QuCAD reproduction: compression-aided framework for noise-robust QNNs.

This package re-implements the full system of "Battle Against Fluctuating
Quantum Noise: Compression-Aided Framework to Enable Robust Quantum Neural
Network" (DAC 2023) on a pure-NumPy quantum simulation substrate:

* :mod:`repro.gates`, :mod:`repro.circuits`, :mod:`repro.simulator`,
  :mod:`repro.transpiler` — the quantum execution substrate (statevector and
  density-matrix simulation, calibrated noise channels, layout/routing/basis
  translation for belem- and jakarta-like devices);
* :mod:`repro.calibration` — calibration snapshots, the synthetic
  fluctuating-noise history, and the performance-weighted distances;
* :mod:`repro.qnn` — the variational classifier, training, and evaluation;
* :mod:`repro.datasets` — the MNIST-4 / Iris / seismic tasks;
* :mod:`repro.core` — the paper's contribution: noise-aware ADMM
  compression, the offline model-repository constructor, the online manager,
  and the QuCAD framework plus all Table I competitor methods;
* :mod:`repro.runtime` — the batched/parallel execution runtime: chunked
  vectorised day evaluation, worker-pool fan-out, content-digest result
  caching, and JSONL run records;
* :mod:`repro.experiments` — per-table and per-figure reproduction
  harnesses, all driving their day loops through the runtime
  (``python -m repro.experiments <name>`` is the CLI entry point);
* :mod:`repro.serving` — the online inference service: versioned model
  deployments, micro-batched request serving, and calibration-drift
  hot-swap adaptation (``python -m repro.experiments serve``).
"""

from repro.version import __version__

__all__ = ["__version__"]
