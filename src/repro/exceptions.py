"""Exception hierarchy for the repro package.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class CircuitError(ReproError):
    """Raised for malformed circuits or invalid instructions."""


class GateError(ReproError):
    """Raised when a gate is constructed or applied with invalid arguments."""


class SimulationError(ReproError):
    """Raised when a simulator receives an unsupported circuit or state."""


class TranspilerError(ReproError):
    """Raised when layout, routing, or basis translation fails."""


class CalibrationError(ReproError):
    """Raised for malformed calibration snapshots or histories."""


class TrainingError(ReproError):
    """Raised when a training or compression run is misconfigured."""


class RepositoryError(ReproError):
    """Raised by the model repository constructor / manager."""


class DatasetError(ReproError):
    """Raised when a dataset is requested with invalid parameters."""


class ServingError(ReproError):
    """Raised by the online inference service (registry, scheduler, watcher)."""
