"""Circuit templates used throughout the paper's experiments.

The central template is the QuCAD VQC block described in the experimental
setup: ``4RY + 4CRY + 4RY + 4RX + 4CRX + 4RX + 4RZ + 4CRZ + 4RZ + 4CRZ``
on four qubits, repeated two or three times depending on the dataset.  The
builders here generalize the block to any qubit count (rotation layers act
on every qubit, entangling layers act on the ring ``(i, i+1 mod n)``).
"""

from __future__ import annotations

from typing import Sequence

from repro.circuits.circuit import QuantumCircuit
from repro.exceptions import CircuitError

#: The layer structure of one QuCAD VQC block, in order.  ``"rot"`` layers
#: place one single-qubit rotation per qubit; ``"ent"`` layers place one
#: controlled rotation per ring pair.
QUCAD_BLOCK_LAYERS: tuple[tuple[str, str], ...] = (
    ("rot", "ry"),
    ("ent", "cry"),
    ("rot", "ry"),
    ("rot", "rx"),
    ("ent", "crx"),
    ("rot", "rx"),
    ("rot", "rz"),
    ("ent", "crz"),
    ("rot", "rz"),
    ("ent", "crz"),
)


def ring_pairs(num_qubits: int) -> list[tuple[int, int]]:
    """Nearest-neighbour ring ``(0,1), (1,2), ..., (n-1,0)``.

    For two qubits the ring degenerates to the single pair ``(0, 1)``.
    """
    if num_qubits < 2:
        raise CircuitError("a ring entangler needs at least 2 qubits")
    if num_qubits == 2:
        return [(0, 1)]
    return [(i, (i + 1) % num_qubits) for i in range(num_qubits)]


def parameters_per_block(num_qubits: int) -> int:
    """Number of trainable parameters in one QuCAD block."""
    pairs = len(ring_pairs(num_qubits))
    count = 0
    for kind, _ in QUCAD_BLOCK_LAYERS:
        count += num_qubits if kind == "rot" else pairs
    return count


def append_qucad_block(
    circuit: QuantumCircuit, start_ref: int, num_qubits: int
) -> int:
    """Append one QuCAD VQC block to ``circuit``.

    Parameters are referenced (not bound): each gate receives a fresh
    ``param_ref`` starting at ``start_ref``.  Returns the next free ref.
    """
    ref = start_ref
    pairs = ring_pairs(num_qubits)
    for kind, gate_name in QUCAD_BLOCK_LAYERS:
        if kind == "rot":
            for qubit in range(num_qubits):
                circuit.add(gate_name, [qubit], param_ref=ref, trainable=True)
                ref += 1
        else:
            for control, target in pairs:
                circuit.add(
                    gate_name, [control, target], param_ref=ref, trainable=True
                )
                ref += 1
    return ref


def build_qucad_ansatz(num_qubits: int, repeats: int, name: str = "qucad_vqc") -> QuantumCircuit:
    """Build the paper's VQC ansatz: ``repeats`` QuCAD blocks.

    The MNIST and earthquake-detection models use ``repeats=2`` on 4 qubits
    (80 parameters); Iris uses ``repeats=3`` (120 parameters).
    """
    if repeats < 1:
        raise CircuitError(f"repeats must be >= 1, got {repeats}")
    circuit = QuantumCircuit(num_qubits, name=name)
    ref = 0
    for _ in range(repeats):
        ref = append_qucad_block(circuit, ref, num_qubits)
    return circuit


def build_two_parameter_vqc(num_qubits: int = 2) -> QuantumCircuit:
    """The tiny two-parameter VQC used for the loss-landscape study (Fig. 3).

    One RY per qubit (the two trainable parameters) followed by a CX, which
    is enough to expose the breakpoint structure when transpiled under noise.
    """
    if num_qubits != 2:
        raise CircuitError("the landscape study circuit is defined on 2 qubits")
    circuit = QuantumCircuit(2, name="two_parameter_vqc")
    circuit.add("ry", [0], param_ref=0, trainable=True)
    circuit.add("ry", [1], param_ref=1, trainable=True)
    circuit.cx(0, 1)
    return circuit


def build_hardware_efficient_ansatz(
    num_qubits: int, depth: int, rotation: str = "ry", name: str = "hwe"
) -> QuantumCircuit:
    """A generic hardware-efficient ansatz (rotation layer + CX ladder).

    Not used by the main experiments but exposed as a utility so downstream
    users can plug their own models into the QuCAD framework.
    """
    if rotation not in {"rx", "ry", "rz"}:
        raise CircuitError(f"unsupported rotation layer {rotation!r}")
    if depth < 1:
        raise CircuitError(f"depth must be >= 1, got {depth}")
    circuit = QuantumCircuit(num_qubits, name=name)
    ref = 0
    for _ in range(depth):
        for qubit in range(num_qubits):
            circuit.add(rotation, [qubit], param_ref=ref, trainable=True)
            ref += 1
        for qubit in range(num_qubits - 1):
            circuit.cx(qubit, qubit + 1)
    return circuit
