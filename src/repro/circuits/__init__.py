"""Circuit IR, dependency utilities, and the paper's circuit templates."""

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import asap_layers, build_dependency_dag, critical_path_length
from repro.circuits.digests import circuit_structure_digest, parameter_digest
from repro.circuits.library import (
    QUCAD_BLOCK_LAYERS,
    append_qucad_block,
    build_hardware_efficient_ansatz,
    build_qucad_ansatz,
    build_two_parameter_vqc,
    parameters_per_block,
    ring_pairs,
)

__all__ = [
    "QuantumCircuit",
    "circuit_structure_digest",
    "parameter_digest",
    "asap_layers",
    "build_dependency_dag",
    "critical_path_length",
    "QUCAD_BLOCK_LAYERS",
    "append_qucad_block",
    "build_hardware_efficient_ansatz",
    "build_qucad_ansatz",
    "build_two_parameter_vqc",
    "parameters_per_block",
    "ring_pairs",
]
