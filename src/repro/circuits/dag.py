"""Dependency-graph utilities for circuits.

The transpiler and the circuit-metrics code need two structural views beyond
the flat gate list: the layered (ASAP) schedule and the dependency DAG.  Both
are derived on demand from a :class:`~repro.circuits.QuantumCircuit`.
"""

from __future__ import annotations

import networkx as nx

from repro.circuits.circuit import QuantumCircuit


def build_dependency_dag(circuit: QuantumCircuit) -> nx.DiGraph:
    """Return the gate-dependency DAG of ``circuit``.

    Nodes are gate indices; an edge ``i -> j`` means gate ``j`` must execute
    after gate ``i`` because they share a qubit and ``i`` precedes ``j``.
    Only the most recent writer per qubit is linked, so the DAG is the usual
    transitive reduction used by schedulers.
    """
    dag = nx.DiGraph()
    last_on_qubit: dict[int, int] = {}
    for index, gate in enumerate(circuit.gates):
        dag.add_node(index, gate=gate)
        for qubit in gate.qubits:
            previous = last_on_qubit.get(qubit)
            if previous is not None:
                dag.add_edge(previous, index)
            last_on_qubit[qubit] = index
    return dag


def asap_layers(circuit: QuantumCircuit) -> list[list[int]]:
    """Group gate indices into as-soon-as-possible layers.

    Gates in the same layer act on disjoint qubits and have all dependencies
    satisfied by earlier layers.  The number of layers equals the circuit
    depth.
    """
    qubit_level = [0] * circuit.num_qubits
    layers: list[list[int]] = []
    for index, gate in enumerate(circuit.gates):
        level = max(qubit_level[q] for q in gate.qubits)
        if level == len(layers):
            layers.append([])
        layers[level].append(index)
        for q in gate.qubits:
            qubit_level[q] = level + 1
    return layers


def critical_path_length(circuit: QuantumCircuit) -> int:
    """Length of the longest dependency chain (equals ``circuit.depth()``)."""
    dag = build_dependency_dag(circuit)
    if dag.number_of_nodes() == 0:
        return 0
    return int(nx.dag_longest_path_length(dag)) + 1
