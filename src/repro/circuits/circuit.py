"""Quantum circuit intermediate representation.

A :class:`QuantumCircuit` is an ordered list of :class:`~repro.gates.Gate`
instructions on ``num_qubits`` qubits.  It supports the operations the rest
of the library needs:

* appending gates through convenience methods (``circuit.ry(0.3, 0)``),
* binding an external trainable-parameter vector (``bind_parameters``),
* structural queries (parametric gate list, per-gate qubit association),
* composition and qubit remapping (used by the transpiler).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.exceptions import CircuitError
from repro.gates import GATE_REGISTRY, Gate


@dataclass
class QuantumCircuit:
    """An ordered gate list on a fixed number of qubits.

    Attributes
    ----------
    num_qubits:
        Number of qubits addressed by the circuit.
    gates:
        Ordered instruction list.
    name:
        Optional human-readable label used in reports.
    """

    num_qubits: int
    gates: list[Gate] = field(default_factory=list)
    name: str = "circuit"

    def __post_init__(self) -> None:
        if self.num_qubits <= 0:
            raise CircuitError(f"num_qubits must be positive, got {self.num_qubits}")
        for gate in self.gates:
            self._validate_gate(gate)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _validate_gate(self, gate: Gate) -> None:
        for qubit in gate.qubits:
            if not 0 <= qubit < self.num_qubits:
                raise CircuitError(
                    f"gate {gate.name!r} addresses qubit {qubit} outside "
                    f"range [0, {self.num_qubits})"
                )

    def append(self, gate: Gate) -> "QuantumCircuit":
        """Append ``gate`` after validating its qubit indices."""
        self._validate_gate(gate)
        self.gates.append(gate)
        return self

    def add(
        self,
        name: str,
        qubits: Sequence[int],
        param: Optional[float] = None,
        param_ref: Optional[int] = None,
        trainable: bool = False,
    ) -> "QuantumCircuit":
        """Append a gate by name; see :class:`~repro.gates.Gate` for fields."""
        gate = Gate(
            name=name,
            qubits=tuple(int(q) for q in qubits),
            param=param,
            param_ref=param_ref,
            trainable=trainable,
        )
        return self.append(gate)

    # Convenience methods for the most common gates.  Parametric helpers
    # accept either a concrete angle or a param_ref.
    def x(self, qubit: int) -> "QuantumCircuit":
        """Append a Pauli-X gate on ``qubit``."""
        return self.add("x", [qubit])

    def sx(self, qubit: int) -> "QuantumCircuit":
        """Append a sqrt(X) gate on ``qubit``."""
        return self.add("sx", [qubit])

    def h(self, qubit: int) -> "QuantumCircuit":
        """Append a Hadamard gate on ``qubit``."""
        return self.add("h", [qubit])

    def z(self, qubit: int) -> "QuantumCircuit":
        """Append a Pauli-Z gate on ``qubit``."""
        return self.add("z", [qubit])

    def cx(self, control: int, target: int) -> "QuantumCircuit":
        """Append a CNOT with the given control and target."""
        return self.add("cx", [control, target])

    def cz(self, control: int, target: int) -> "QuantumCircuit":
        """Append a controlled-Z on the given pair."""
        return self.add("cz", [control, target])

    def swap(self, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        """Append a SWAP between the two qubits."""
        return self.add("swap", [qubit_a, qubit_b])

    def rx(self, theta: float, qubit: int, **kwargs) -> "QuantumCircuit":
        """Append an X rotation by ``theta`` on ``qubit``."""
        return self.add("rx", [qubit], param=theta, **kwargs)

    def ry(self, theta: float, qubit: int, **kwargs) -> "QuantumCircuit":
        """Append a Y rotation by ``theta`` on ``qubit``."""
        return self.add("ry", [qubit], param=theta, **kwargs)

    def rz(self, theta: float, qubit: int, **kwargs) -> "QuantumCircuit":
        """Append a Z rotation by ``theta`` on ``qubit``."""
        return self.add("rz", [qubit], param=theta, **kwargs)

    def crx(self, theta: float, control: int, target: int, **kwargs) -> "QuantumCircuit":
        """Append a controlled-RX rotation (control listed first)."""
        return self.add("crx", [control, target], param=theta, **kwargs)

    def cry(self, theta: float, control: int, target: int, **kwargs) -> "QuantumCircuit":
        """Append a controlled-RY rotation (control listed first)."""
        return self.add("cry", [control, target], param=theta, **kwargs)

    def crz(self, theta: float, control: int, target: int, **kwargs) -> "QuantumCircuit":
        """Append a controlled-RZ rotation (control listed first)."""
        return self.add("crz", [control, target], param=theta, **kwargs)

    # ------------------------------------------------------------------
    # Parameter handling
    # ------------------------------------------------------------------
    @property
    def parametric_gates(self) -> list[Gate]:
        """All gates carrying a rotation angle, in circuit order."""
        return [g for g in self.gates if g.is_parametric]

    @property
    def trainable_gates(self) -> list[Gate]:
        """Parametric gates that reference the trainable-parameter vector."""
        return [g for g in self.gates if g.param_ref is not None]

    @property
    def num_parameters(self) -> int:
        """Size of the trainable-parameter vector referenced by the circuit."""
        refs = [g.param_ref for g in self.gates if g.param_ref is not None]
        return (max(refs) + 1) if refs else 0

    def bind_parameters(self, values: Sequence[float] | np.ndarray) -> "QuantumCircuit":
        """Return a copy with every ``param_ref`` replaced by its value.

        Gates without a ``param_ref`` are copied unchanged.  ``values`` must
        cover every referenced index.
        """
        values = np.asarray(values, dtype=float)
        needed = self.num_parameters
        if values.ndim != 1 or values.shape[0] < needed:
            raise CircuitError(
                f"parameter vector of length {values.shape if values.ndim != 1 else values.shape[0]} "
                f"cannot bind circuit needing {needed} parameters"
            )
        bound_gates = []
        for gate in self.gates:
            if gate.param_ref is not None:
                bound_gates.append(gate.bind(values[gate.param_ref]))
            else:
                bound_gates.append(gate)
        return QuantumCircuit(self.num_qubits, bound_gates, name=self.name)

    def parameter_values(self) -> np.ndarray:
        """Collect bound angles of trainable gates into a parameter vector.

        Raises if any trainable gate is unbound.  Useful for round-tripping a
        compressed circuit back to a parameter vector.
        """
        values = np.zeros(self.num_parameters, dtype=float)
        seen = np.zeros(self.num_parameters, dtype=bool)
        for gate in self.gates:
            if gate.param_ref is None:
                continue
            if gate.param is None:
                raise CircuitError(
                    f"trainable gate {gate.name!r} (ref {gate.param_ref}) is unbound"
                )
            values[gate.param_ref] = gate.param
            seen[gate.param_ref] = True
        if not np.all(seen):
            missing = np.flatnonzero(~seen).tolist()
            raise CircuitError(f"parameter refs {missing} never appear in the circuit")
        return values

    # ------------------------------------------------------------------
    # Structural queries and transforms
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self.gates)

    def copy(self) -> "QuantumCircuit":
        """Shallow copy (gates are immutable, so sharing them is safe)."""
        return QuantumCircuit(self.num_qubits, list(self.gates), name=self.name)

    def compose(self, other: "QuantumCircuit") -> "QuantumCircuit":
        """Return a new circuit running ``self`` then ``other``."""
        if other.num_qubits > self.num_qubits:
            raise CircuitError(
                f"cannot compose circuit on {other.num_qubits} qubits into one "
                f"with {self.num_qubits}"
            )
        return QuantumCircuit(
            self.num_qubits, list(self.gates) + list(other.gates), name=self.name
        )

    def remap_qubits(
        self, mapping: dict[int, int], num_qubits: Optional[int] = None
    ) -> "QuantumCircuit":
        """Relabel qubits through ``mapping`` (e.g. logical→physical layout)."""
        target_count = num_qubits if num_qubits is not None else self.num_qubits
        remapped = [gate.remap(mapping) for gate in self.gates]
        return QuantumCircuit(target_count, remapped, name=self.name)

    def gate_counts(self) -> dict[str, int]:
        """Histogram of gate names."""
        counts: dict[str, int] = {}
        for gate in self.gates:
            counts[gate.name] = counts.get(gate.name, 0) + 1
        return counts

    def count_two_qubit_gates(self) -> int:
        """Number of gates acting on two qubits."""
        return sum(1 for gate in self.gates if gate.num_qubits == 2)

    def depth(self) -> int:
        """Circuit depth: length of the longest qubit-ordered dependency chain."""
        frontier = [0] * self.num_qubits
        for gate in self.gates:
            level = max(frontier[q] for q in gate.qubits) + 1
            for q in gate.qubits:
                frontier[q] = level
        return max(frontier) if frontier else 0

    def qubit_association(self) -> list[tuple[int, ...]]:
        """Per-gate qubit tuples, the ``A(g_i)`` association used by QuCAD."""
        return [gate.qubits for gate in self.gates]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QuantumCircuit(name={self.name!r}, num_qubits={self.num_qubits}, "
            f"gates={len(self.gates)}, depth={self.depth()})"
        )
