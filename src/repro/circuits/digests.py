"""Content digests of circuits: structure and parameter-binding keys.

These are the cache keys shared by every content-addressed layer of the
stack — the simulator engine's fusion-plan / compiled-program LRUs, the
transpiler pipeline's pass-artifact caches, and the runtime's evaluation
cache.  They live in :mod:`repro.circuits` because they depend only on the
circuit IR; both the simulator and the transpiler import them from here.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Optional

import numpy as np

from repro.circuits.circuit import QuantumCircuit

_NAN_SENTINEL = struct.pack("<d", float("nan"))


def circuit_structure_digest(circuit: QuantumCircuit) -> str:
    """Digest of the circuit's *structure*: gate names and qubit indices.

    Two circuits share a digest exactly when they apply the same gate types
    to the same wires in the same order — which is precisely the condition
    for sharing a fusion plan (or a routing artifact, for routed circuits).
    Angles are deliberately excluded so that rebinding a parameterized
    ansatz keeps its plan.
    """
    hasher = hashlib.blake2b(digest_size=16)
    hasher.update(struct.pack("<i", circuit.num_qubits))
    for gate in circuit.gates:
        hasher.update(gate.name.encode())
        hasher.update(struct.pack(f"<{len(gate.qubits)}i", *gate.qubits))
        hasher.update(b";")
    return hasher.hexdigest()


def parameter_digest(
    circuit: QuantumCircuit, parameters: Optional[np.ndarray] = None
) -> str:
    """Digest of everything that affects the bound gate matrices.

    Covers each gate's own angle, ``param_ref``, and ``trainable`` flag plus
    the external parameter vector (when given), so two calls collide only if
    they produce identical bound matrices *and* identical gradient behaviour
    (the adjoint sweep reads ``trainable`` off cached bound circuits) for an
    identical structure.
    """
    hasher = hashlib.blake2b(digest_size=16)
    for gate in circuit.gates:
        ref = -1 if gate.param_ref is None else gate.param_ref
        hasher.update(struct.pack("<i?", ref, gate.trainable))
        if gate.param is None:
            hasher.update(_NAN_SENTINEL)
        else:
            hasher.update(struct.pack("<d", gate.param))
    if parameters is not None:
        hasher.update(b"|params|")
        hasher.update(np.ascontiguousarray(parameters, dtype=np.float64).tobytes())
    return hasher.hexdigest()
