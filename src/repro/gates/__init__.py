"""Gate library: instruction type, registry, and matrix definitions."""

from repro.gates.gate import (
    CONTROLLED_ROTATION_GATES,
    GATE_REGISTRY,
    Gate,
    GateSpec,
    PARAMETRIC_GATES,
    ROTATION_GATES,
)
from repro.gates import matrices

__all__ = [
    "Gate",
    "GateSpec",
    "GATE_REGISTRY",
    "ROTATION_GATES",
    "CONTROLLED_ROTATION_GATES",
    "PARAMETRIC_GATES",
    "matrices",
]
