"""Gate library: instruction type, registry, and matrix definitions."""

from repro.gates.gate import (
    CONTROLLED_ROTATION_GATES,
    CROSS_PATH_GATES,
    DIAGONAL_GATES,
    GATE_REGISTRY,
    Gate,
    GateSpec,
    MONOMIAL_GATES,
    PARAMETRIC_GATES,
    ROTATION_GATES,
)
from repro.gates import matrices

__all__ = [
    "Gate",
    "GateSpec",
    "GATE_REGISTRY",
    "ROTATION_GATES",
    "CONTROLLED_ROTATION_GATES",
    "CROSS_PATH_GATES",
    "DIAGONAL_GATES",
    "MONOMIAL_GATES",
    "PARAMETRIC_GATES",
    "matrices",
]
