"""The :class:`Gate` instruction type and the gate registry.

A :class:`Gate` is a single circuit instruction: a named operation acting on
one or two qubits, optionally carrying a rotation angle (``param``) and a
reference into an external trainable-parameter vector (``param_ref``).

Circuits are simply ordered lists of gates (see :mod:`repro.circuits`), which
keeps the IR easy to transform in the transpiler and the compression passes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Optional

import numpy as np

from repro.exceptions import GateError
from repro.gates import matrices as mat


@dataclass(frozen=True)
class GateSpec:
    """Static description of a gate type.

    Attributes
    ----------
    name:
        Canonical lowercase gate name.
    num_qubits:
        Number of qubits the gate acts on (1 or 2).
    num_params:
        Number of rotation parameters (0 or 1).
    matrix_fn:
        Callable returning the unitary; takes the angle for parametric gates.
    derivative_fn:
        Callable returning d(matrix)/d(angle); ``None`` for fixed gates.
    shift_rule:
        Parameter-shift rule identifier: ``"two_term"`` for Pauli-rotation
        generators (eigenvalues ±1/2), ``"four_term"`` for controlled
        rotations (eigenvalues {0, ±1/2}), ``None`` for fixed gates.
    """

    name: str
    num_qubits: int
    num_params: int
    matrix_fn: Callable[..., np.ndarray]
    derivative_fn: Optional[Callable[..., np.ndarray]] = None
    shift_rule: Optional[str] = None


def _fixed(matrix: np.ndarray) -> Callable[[], np.ndarray]:
    def factory() -> np.ndarray:
        return matrix

    return factory


GATE_REGISTRY: dict[str, GateSpec] = {
    "id": GateSpec("id", 1, 0, _fixed(mat.I2)),
    "x": GateSpec("x", 1, 0, _fixed(mat.X)),
    "y": GateSpec("y", 1, 0, _fixed(mat.Y)),
    "z": GateSpec("z", 1, 0, _fixed(mat.Z)),
    "h": GateSpec("h", 1, 0, _fixed(mat.H)),
    "s": GateSpec("s", 1, 0, _fixed(mat.S)),
    "sdg": GateSpec("sdg", 1, 0, _fixed(mat.SDG)),
    "t": GateSpec("t", 1, 0, _fixed(mat.T)),
    "tdg": GateSpec("tdg", 1, 0, _fixed(mat.TDG)),
    "sx": GateSpec("sx", 1, 0, _fixed(mat.SX)),
    "sxdg": GateSpec("sxdg", 1, 0, _fixed(mat.SXDG)),
    "rx": GateSpec("rx", 1, 1, mat.rx, mat.drx, "two_term"),
    "ry": GateSpec("ry", 1, 1, mat.ry, mat.dry, "two_term"),
    "rz": GateSpec("rz", 1, 1, mat.rz, mat.drz, "two_term"),
    "p": GateSpec("p", 1, 1, mat.phase_gate, mat.dphase_gate, "two_term"),
    "cx": GateSpec("cx", 2, 0, _fixed(mat.CX)),
    "cy": GateSpec("cy", 2, 0, _fixed(mat.CY)),
    "cz": GateSpec("cz", 2, 0, _fixed(mat.CZ)),
    "swap": GateSpec("swap", 2, 0, _fixed(mat.SWAP)),
    "crx": GateSpec("crx", 2, 1, mat.crx, mat.dcrx, "four_term"),
    "cry": GateSpec("cry", 2, 1, mat.cry, mat.dcry, "four_term"),
    "crz": GateSpec("crz", 2, 1, mat.crz, mat.dcrz, "four_term"),
    "cp": GateSpec("cp", 2, 1, mat.cphase, mat.dcphase, "four_term"),
    "rzz": GateSpec("rzz", 2, 1, mat.rzz, mat.drzz, "two_term"),
}

#: Names of single-qubit rotation gates (parametric, one qubit).
ROTATION_GATES = frozenset({"rx", "ry", "rz", "p"})

#: Names of controlled-rotation gates (parametric, two qubits).
CONTROLLED_ROTATION_GATES = frozenset({"crx", "cry", "crz", "cp"})

#: Names of all parametric gates.
PARAMETRIC_GATES = ROTATION_GATES | CONTROLLED_ROTATION_GATES | {"rzz"}

#: Gates whose matrix is diagonal for *every* parameter value.  These take
#: the one-pass phase path of the density walk, and the fusion sweep may
#: fold them across a dense block boundary (see
#: :func:`repro.simulator.engine.build_fusion_plan` with ``max_width > 2``).
DIAGONAL_GATES = frozenset(
    {"id", "z", "s", "sdg", "t", "tdg", "rz", "p", "cz", "crz", "cp", "rzz"}
)

#: Gates whose matrix is monomial (exactly one entry per row/column) for
#: every parameter value — the gather fast path of the density walk.
MONOMIAL_GATES = frozenset({"x", "y", "cx", "cy", "swap"})

#: Gates the widened fusion sweep may absorb across an open dense block:
#: structurally diagonal or monomial, so folding them into a wider fused
#: matrix is what turns a dense–diagonal–dense sandwich into one block.
CROSS_PATH_GATES = DIAGONAL_GATES | MONOMIAL_GATES


@dataclass(frozen=True)
class Gate:
    """A single circuit instruction.

    Attributes
    ----------
    name:
        Gate name; must be a key of :data:`GATE_REGISTRY`.
    qubits:
        Tuple of qubit indices (control first for controlled gates).
    param:
        Rotation angle for parametric gates; ``None`` for fixed gates.
    param_ref:
        Optional index into an external trainable-parameter vector.  When
        set, binding a parameter vector overrides ``param``.
    trainable:
        Whether the angle participates in gradient computation.  Encoding
        gates carry data-dependent angles and are not trainable.
    """

    name: str
    qubits: tuple[int, ...]
    param: Optional[float] = None
    param_ref: Optional[int] = None
    trainable: bool = False

    def __post_init__(self) -> None:
        spec = GATE_REGISTRY.get(self.name)
        if spec is None:
            raise GateError(f"unknown gate name {self.name!r}")
        if len(self.qubits) != spec.num_qubits:
            raise GateError(
                f"gate {self.name!r} expects {spec.num_qubits} qubits, "
                f"got {len(self.qubits)}"
            )
        if len(set(self.qubits)) != len(self.qubits):
            raise GateError(f"gate {self.name!r} has duplicate qubits {self.qubits}")
        if spec.num_params == 0 and self.param is not None:
            raise GateError(f"gate {self.name!r} takes no parameter")
        if spec.num_params == 1 and self.param is None and self.param_ref is None:
            raise GateError(
                f"parametric gate {self.name!r} requires a param or a param_ref"
            )

    @property
    def spec(self) -> GateSpec:
        """The static :class:`GateSpec` for this gate."""
        return GATE_REGISTRY[self.name]

    @property
    def is_parametric(self) -> bool:
        """Whether the gate carries a rotation angle."""
        return self.spec.num_params > 0

    @property
    def num_qubits(self) -> int:
        """Number of qubits the gate acts on."""
        return self.spec.num_qubits

    def matrix(self) -> np.ndarray:
        """The gate's unitary matrix (requires a bound angle if parametric)."""
        spec = self.spec
        if spec.num_params == 0:
            return spec.matrix_fn()
        if self.param is None:
            raise GateError(
                f"gate {self.name!r} has an unbound parameter (param_ref="
                f"{self.param_ref}); bind parameters before requesting matrices"
            )
        return spec.matrix_fn(self.param)

    def derivative_matrix(self) -> np.ndarray:
        """d(matrix)/d(angle) for parametric gates."""
        spec = self.spec
        if spec.derivative_fn is None:
            raise GateError(f"gate {self.name!r} is not parametric")
        if self.param is None:
            raise GateError(f"gate {self.name!r} has an unbound parameter")
        return spec.derivative_fn(self.param)

    def bind(self, value: float) -> "Gate":
        """Return a copy of this gate with the angle set to ``value``."""
        if not self.is_parametric:
            raise GateError(f"cannot bind a value to fixed gate {self.name!r}")
        return replace(self, param=float(value))

    def remap(self, mapping: dict[int, int]) -> "Gate":
        """Return a copy acting on ``mapping[q]`` for each original qubit ``q``."""
        return replace(self, qubits=tuple(mapping[q] for q in self.qubits))
