"""Gate matrix definitions.

All matrices use the big-endian qubit convention: for a two-qubit gate the
first listed qubit is the control / most-significant tensor factor.  The
module exposes fixed matrices for non-parametric gates and factory functions
for rotation gates, together with their derivatives (used by the adjoint
gradient engine).
"""

from __future__ import annotations

import numpy as np

# ---------------------------------------------------------------------------
# Fixed single-qubit matrices
# ---------------------------------------------------------------------------

I2 = np.eye(2, dtype=complex)

X = np.array([[0, 1], [1, 0]], dtype=complex)
Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
Z = np.array([[1, 0], [0, -1]], dtype=complex)
H = np.array([[1, 1], [1, -1]], dtype=complex) / np.sqrt(2)
S = np.array([[1, 0], [0, 1j]], dtype=complex)
SDG = S.conj().T
T = np.array([[1, 0], [0, np.exp(1j * np.pi / 4)]], dtype=complex)
TDG = T.conj().T
# sqrt(X) gate -- the native pulse on IBM transmon devices.
SX = 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex)
SXDG = SX.conj().T

# ---------------------------------------------------------------------------
# Fixed two-qubit matrices (first qubit = control = most significant)
# ---------------------------------------------------------------------------

CX = np.array(
    [
        [1, 0, 0, 0],
        [0, 1, 0, 0],
        [0, 0, 0, 1],
        [0, 0, 1, 0],
    ],
    dtype=complex,
)

CZ = np.diag([1, 1, 1, -1]).astype(complex)

SWAP = np.array(
    [
        [1, 0, 0, 0],
        [0, 0, 1, 0],
        [0, 1, 0, 0],
        [0, 0, 0, 1],
    ],
    dtype=complex,
)

CY = np.array(
    [
        [1, 0, 0, 0],
        [0, 1, 0, 0],
        [0, 0, 0, -1j],
        [0, 0, 1j, 0],
    ],
    dtype=complex,
)


# ---------------------------------------------------------------------------
# Parametric matrices and derivatives
# ---------------------------------------------------------------------------

def rx(theta: float) -> np.ndarray:
    """Rotation about the X axis by ``theta``."""
    c, s = np.cos(theta / 2), np.sin(theta / 2)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def ry(theta: float) -> np.ndarray:
    """Rotation about the Y axis by ``theta``."""
    c, s = np.cos(theta / 2), np.sin(theta / 2)
    return np.array([[c, -s], [s, c]], dtype=complex)


def rz(theta: float) -> np.ndarray:
    """Rotation about the Z axis by ``theta``."""
    phase = np.exp(-1j * theta / 2)
    return np.array([[phase, 0], [0, np.conj(phase)]], dtype=complex)


def phase_gate(theta: float) -> np.ndarray:
    """Phase gate diag(1, e^{i theta})."""
    return np.array([[1, 0], [0, np.exp(1j * theta)]], dtype=complex)


def _controlled(matrix: np.ndarray) -> np.ndarray:
    """Embed a single-qubit matrix as a controlled gate (control first)."""
    out = np.eye(4, dtype=complex)
    out[2:, 2:] = matrix
    return out


def crx(theta: float) -> np.ndarray:
    """Controlled-RX rotation (control is the first qubit)."""
    return _controlled(rx(theta))


def cry(theta: float) -> np.ndarray:
    """Controlled-RY rotation (control is the first qubit)."""
    return _controlled(ry(theta))


def crz(theta: float) -> np.ndarray:
    """Controlled-RZ rotation (control is the first qubit)."""
    return _controlled(rz(theta))


def cphase(theta: float) -> np.ndarray:
    """Controlled phase gate (control is the first qubit)."""
    return _controlled(phase_gate(theta))


def rzz(theta: float) -> np.ndarray:
    """Two-qubit ZZ interaction exp(-i theta/2 Z⊗Z)."""
    phase = np.exp(-1j * theta / 2)
    return np.diag([phase, np.conj(phase), np.conj(phase), phase]).astype(complex)


# ---------------------------------------------------------------------------
# Batched rotation stacks (per-sample angles)
# ---------------------------------------------------------------------------

def rotation_stack(name: str, angles: np.ndarray) -> np.ndarray:
    """Vectorised ``(batch, 2, 2)`` stack of single-qubit rotation matrices.

    Data-encoding layers rotate every sample by its own feature value; this
    builds the whole per-sample matrix stack with array operations instead of
    a Python loop over :func:`rx`/:func:`ry`/:func:`rz` calls.  Supports the
    four single-qubit parametric gates (``rx``, ``ry``, ``rz``, ``p``).

    Raises ``KeyError`` for other gate names so callers can fall back to the
    per-sample loop.
    """
    angles = np.asarray(angles, dtype=float).ravel()
    stack = np.zeros((angles.shape[0], 2, 2), dtype=complex)
    if name == "rx":
        c, s = np.cos(angles / 2), np.sin(angles / 2)
        stack[:, 0, 0] = c
        stack[:, 0, 1] = -1j * s
        stack[:, 1, 0] = -1j * s
        stack[:, 1, 1] = c
    elif name == "ry":
        c, s = np.cos(angles / 2), np.sin(angles / 2)
        stack[:, 0, 0] = c
        stack[:, 0, 1] = -s
        stack[:, 1, 0] = s
        stack[:, 1, 1] = c
    elif name == "rz":
        phase = np.exp(-1j * angles / 2)
        stack[:, 0, 0] = phase
        stack[:, 1, 1] = np.conj(phase)
    elif name == "p":
        stack[:, 0, 0] = 1.0
        stack[:, 1, 1] = np.exp(1j * angles)
    else:
        raise KeyError(f"no vectorised stack for gate {name!r}")
    return stack


# Derivatives d/d(theta) of each parametric matrix, used by adjoint gradients.

def drx(theta: float) -> np.ndarray:
    """Derivative of :func:`rx` with respect to ``theta``."""
    c, s = np.cos(theta / 2), np.sin(theta / 2)
    return 0.5 * np.array([[-s, -1j * c], [-1j * c, -s]], dtype=complex)


def dry(theta: float) -> np.ndarray:
    """Derivative of :func:`ry` with respect to ``theta``."""
    c, s = np.cos(theta / 2), np.sin(theta / 2)
    return 0.5 * np.array([[-s, -c], [c, -s]], dtype=complex)


def drz(theta: float) -> np.ndarray:
    """Derivative of :func:`rz` with respect to ``theta``."""
    phase = np.exp(-1j * theta / 2)
    return np.array(
        [[-0.5j * phase, 0], [0, 0.5j * np.conj(phase)]], dtype=complex
    )


def dphase_gate(theta: float) -> np.ndarray:
    """Derivative of :func:`phase_gate` with respect to ``theta``."""
    return np.array([[0, 0], [0, 1j * np.exp(1j * theta)]], dtype=complex)


def _controlled_derivative(derivative: np.ndarray) -> np.ndarray:
    """Derivative of a controlled gate: zero block on the control-0 subspace."""
    out = np.zeros((4, 4), dtype=complex)
    out[2:, 2:] = derivative
    return out


def dcrx(theta: float) -> np.ndarray:
    """Derivative of :func:`crx` with respect to ``theta``."""
    return _controlled_derivative(drx(theta))


def dcry(theta: float) -> np.ndarray:
    """Derivative of :func:`cry` with respect to ``theta``."""
    return _controlled_derivative(dry(theta))


def dcrz(theta: float) -> np.ndarray:
    """Derivative of :func:`crz` with respect to ``theta``."""
    return _controlled_derivative(drz(theta))


def dcphase(theta: float) -> np.ndarray:
    """Derivative of :func:`cphase` with respect to ``theta``."""
    return _controlled_derivative(dphase_gate(theta))


def drzz(theta: float) -> np.ndarray:
    """Derivative of :func:`rzz` with respect to ``theta``."""
    phase = np.exp(-1j * theta / 2)
    return np.diag(
        [-0.5j * phase, 0.5j * np.conj(phase), 0.5j * np.conj(phase), -0.5j * phase]
    ).astype(complex)
