"""Setup shim for legacy editable installs (offline environments without the
``wheel`` package cannot build PEP-660 editable wheels)."""

from setuptools import setup

setup()
