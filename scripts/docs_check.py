"""Documentation audit used by ``make docs-check``.

Checks, without importing anything:

1. the documentation entry points exist (README.md, docs/ARCHITECTURE.md,
   docs/BENCHMARKS.md) and README links the docs pages;
2. every module under ``src/repro`` has a module docstring;
3. every *public* class and function (no leading underscore) defined at
   module top level — or method defined directly in a public class — has a
   docstring.

Exits non-zero listing every violation, so it can gate CI.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SOURCE_ROOT = REPO_ROOT / "src" / "repro"
REQUIRED_DOCS = [
    REPO_ROOT / "README.md",
    REPO_ROOT / "docs" / "ARCHITECTURE.md",
    REPO_ROOT / "docs" / "BENCHMARKS.md",
]


def check_required_docs(problems: list[str]) -> None:
    for path in REQUIRED_DOCS:
        if not path.is_file():
            problems.append(f"missing documentation file: {path.relative_to(REPO_ROOT)}")
    readme = REPO_ROOT / "README.md"
    if readme.is_file():
        text = readme.read_text()
        for link in ("docs/ARCHITECTURE.md", "docs/BENCHMARKS.md"):
            if link not in text:
                problems.append(f"README.md does not link {link}")


def _missing_docstrings(tree: ast.Module, relative: str) -> list[str]:
    problems = []
    if ast.get_docstring(tree) is None:
        problems.append(f"{relative}: missing module docstring")
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if node.name.startswith("_"):
                continue
            if ast.get_docstring(node) is None:
                problems.append(
                    f"{relative}:{node.lineno}: public {type(node).__name__.replace('Def', '').lower()} "
                    f"{node.name!r} missing docstring"
                )
            if isinstance(node, ast.ClassDef):
                for member in node.body:
                    if not isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        continue
                    if member.name.startswith("_"):
                        continue
                    if ast.get_docstring(member) is None:
                        problems.append(
                            f"{relative}:{member.lineno}: public method "
                            f"{node.name}.{member.name!r} missing docstring"
                        )
    return problems


def check_docstrings(problems: list[str]) -> None:
    for path in sorted(SOURCE_ROOT.rglob("*.py")):
        relative = str(path.relative_to(REPO_ROOT))
        tree = ast.parse(path.read_text(), filename=relative)
        problems.extend(_missing_docstrings(tree, relative))


def main() -> int:
    problems: list[str] = []
    check_required_docs(problems)
    check_docstrings(problems)
    if problems:
        print(f"docs-check: {len(problems)} problem(s)")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print("docs-check: OK (docs present, all public APIs documented)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
