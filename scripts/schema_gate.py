"""CI protocol gate: pinned message schemas must match the registry.

Every registered protocol message exports a JSON-schema document to
``docs/schemas/`` (one file per message family, written by ``make
schemas``).  This gate regenerates the documents from the live registry
and fails when:

* a document is missing or a stray file has no registered message;
* a schema changed while its ``type_version`` did not — the drift the
  gate exists to catch: bump the model's ``type_version`` literal first;
* a schema or version changed and the committed document was not
  re-exported — run ``make schemas`` and commit the result.

Exit code 0 means the committed schema set is exactly the registry's.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_SCHEMA_DIR = REPO_ROOT / "docs" / "schemas"

sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.protocol import (  # noqa: E402 (path bootstrap above)
    registered_messages,
    schema_document,
    schema_filename,
)


def check_schemas(schema_dir: Path) -> list[str]:
    """Compare committed schema documents against the live registry."""
    failures = []
    expected = {}
    for cls in registered_messages():
        current = schema_document(cls)
        name = schema_filename(cls)
        expected[name] = current
        path = schema_dir / name
        if not path.is_file():
            failures.append(
                f"{name}: missing schema document for {current['type_name']!r} "
                "- run `make schemas` and commit the result"
            )
            continue
        committed = json.loads(path.read_text(encoding="utf-8"))
        same_schema = (
            committed.get("schema") == current["schema"]
            and committed.get("schema_digest") == current["schema_digest"]
        )
        same_version = committed.get("type_version") == current["type_version"]
        if same_schema and same_version:
            continue
        if not same_schema and same_version:
            failures.append(
                f"{name}: schema for {current['type_name']!r} drifted without a "
                f"type_version bump (committed digest "
                f"{committed.get('schema_digest')}, current "
                f"{current['schema_digest']}, both version "
                f"{current['type_version']!r}) - bump the model's type_version "
                "literal, run `make schemas`, and commit"
            )
        else:
            failures.append(
                f"{name}: committed schema document is stale (committed version "
                f"{committed.get('type_version')!r}, registry "
                f"{current['type_version']!r}) - run `make schemas` and commit"
            )
    for path in sorted(schema_dir.glob("*.json")):
        if path.name not in expected:
            failures.append(
                f"{path.name}: no registered message exports this document - "
                "delete it or register the message"
            )
    return failures


def main(argv=None) -> int:
    """Run the gate (or regenerate the documents with ``--write``)."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--schema-dir",
        type=Path,
        default=DEFAULT_SCHEMA_DIR,
        help=f"committed schema documents (default: {DEFAULT_SCHEMA_DIR})",
    )
    parser.add_argument(
        "--write",
        action="store_true",
        help="regenerate the schema documents instead of checking them",
    )
    args = parser.parse_args(argv)
    if args.write:
        from repro.protocol import export_schemas

        for path in export_schemas(args.schema_dir):
            print(f"wrote {path.relative_to(REPO_ROOT) if path.is_relative_to(REPO_ROOT) else path}")
        return 0
    failures = check_schemas(args.schema_dir)
    if failures:
        print("protocol-gate: FAIL")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    count = len(list(registered_messages()))
    print(f"protocol-gate: OK ({count} message schemas pinned)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
