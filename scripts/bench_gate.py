"""Benchmark quality gate used by the CI ``bench-gate`` job.

Reads the machine-readable benchmark artifacts produced by
``make bench-json`` (``BENCH_runtime.json``, ``BENCH_compiler.json``,
``BENCH_serving.json``) and asserts that every gated speedup stays at or
above the floors committed in ``benchmarks/bench_floors.json``.

The floors are conservative by design: CI hosts drift 30-60% between
scheduling windows, so the gate is tuned to catch a *lost* optimisation
(a cached path regressing to the uncached one collapses its ratio toward
1x) while never flaking on honest host noise.  Floors are asserted on
speedup *ratios*, which divide out most host-speed variation because both
sides of each ratio run in the same process.

Exit status is non-zero when any artifact is missing, any gated key is
absent, or any ratio falls below its floor — so the script can gate CI
directly.  Usage::

    python scripts/bench_gate.py [--floors benchmarks/bench_floors.json]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_FLOORS = REPO_ROOT / "benchmarks" / "bench_floors.json"


def lookup(payload: dict, dotted: str):
    """Resolve a dotted path (``"multi_sample.speedup"``) in a dict."""
    value = payload
    for part in dotted.split("."):
        if not isinstance(value, dict) or part not in value:
            return None
        value = value[part]
    return value


def check(floors_path: Path, artifact_dir: Path) -> list[str]:
    """All gate violations (empty = gate passes); prints the gate table."""
    floors = json.loads(floors_path.read_text())
    problems: list[str] = []
    print(f"{'artifact':<22} {'metric':<30} {'measured':>10} {'floor':>8}  verdict")
    for artifact_name, gates in floors.items():
        if artifact_name.startswith("_"):
            continue
        artifact_path = artifact_dir / artifact_name
        if not artifact_path.is_file():
            problems.append(f"{artifact_name}: artifact missing (run `make bench-json`)")
            continue
        payload = json.loads(artifact_path.read_text())
        for dotted, floor in gates.items():
            # A floor may be a bare number, or an object with prerequisites:
            #   {"floor": 1.6, "requires": {"sharded.cores": 4}}
            # enforces the floor only when every "requires" path in the
            # artifact meets its minimum — parallel-scaling floors are
            # meaningless on hosts without the cores to express them, and a
            # waiver is printed rather than silently skipped.
            waived = None
            if isinstance(floor, dict):
                requires = floor.get("requires", {})
                if "floor" not in floor:
                    problems.append(
                        f"{artifact_name}: floor object for {dotted!r} has "
                        "no 'floor' key"
                    )
                    continue
                for req_path, req_min in requires.items():
                    have = lookup(payload, req_path)
                    if (
                        isinstance(have, bool)
                        or not isinstance(have, (int, float))
                        or float(have) < float(req_min)
                    ):
                        waived = f"{req_path}={have} < {req_min}"
                        break
                floor = floor["floor"]
            measured = lookup(payload, dotted)
            if measured is None:
                problems.append(f"{artifact_name}: key {dotted!r} missing")
                continue
            if waived is not None:
                print(
                    f"{artifact_name:<22} {dotted:<30} "
                    f"{float(measured) if isinstance(measured, (int, float)) and not isinstance(measured, bool) else float('nan'):>10.2f} "
                    f"{float(floor):>8.2f}  waived ({waived})"
                )
                continue
            if isinstance(measured, bool) or not isinstance(measured, (int, float)):
                # A typo'd floor key can land on a sub-dict (or a string
                # field); fail the gate loudly instead of crashing on
                # float() so CI shows *which* key is wrong.
                problems.append(
                    f"{artifact_name}: key {dotted!r} resolves to "
                    f"{type(measured).__name__}, not a number — "
                    "check the floor key against the artifact layout"
                )
                continue
            if isinstance(floor, bool) or not isinstance(floor, (int, float)):
                problems.append(
                    f"{artifact_name}: floor for {dotted!r} is "
                    f"{type(floor).__name__}, not a number"
                )
                continue
            passed = float(measured) >= float(floor)
            verdict = "ok" if passed else "BELOW FLOOR"
            print(
                f"{artifact_name:<22} {dotted:<30} {float(measured):>10.2f} "
                f"{float(floor):>8.2f}  {verdict}"
            )
            if not passed:
                problems.append(
                    f"{artifact_name}: {dotted} = {float(measured):.2f} "
                    f"below floor {float(floor):.2f}"
                )
    return problems


def main(argv=None) -> int:
    """Run the gate; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--floors",
        type=Path,
        default=DEFAULT_FLOORS,
        help="floors JSON (default: benchmarks/bench_floors.json)",
    )
    parser.add_argument(
        "--artifact-dir",
        type=Path,
        default=REPO_ROOT,
        help="directory holding the BENCH_*.json artifacts (default: repo root)",
    )
    args = parser.parse_args(argv)
    problems = check(args.floors, args.artifact_dir)
    if problems:
        print("\nbench gate FAILED:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print("\nbench gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
