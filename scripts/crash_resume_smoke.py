"""Crash-resume smoke: SIGKILL a fleet run mid-grid, resume, compare.

The end-to-end durability check CI runs on every push:

1. run the full (devices × scenarios) grid uninterrupted into one run
   store — the reference report;
2. start the same grid against a second store, poll the store until
   ``--kill-after`` cells have committed, then SIGKILL the process
   mid-grid;
3. rerun with ``--resume <run-id>`` against the second store and assert
   that every pre-kill cell was loaded back instead of re-executed
   (store row counts + run-record attribution prove it), and that the
   resumed report is bit-identical to the reference in canonical form.

Exits non-zero with a diagnostic on any violation.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.protocol import canonical_report_dict  # noqa: E402
from repro.runtime import RunStore, load_run_records  # noqa: E402


def fleet_command(args, store: Path, extra: list[str]) -> list[str]:
    """The fleet CLI invocation for one leg of the smoke."""
    return [
        sys.executable,
        "-m",
        "repro.experiments",
        "fleet",
        "--scale",
        args.scale,
        "--devices",
        args.devices,
        "--scenarios",
        args.scenarios,
        "--cell-workers",
        "1",
        "--store",
        str(store),
        *extra,
    ]


def child_env() -> dict:
    """Subprocess environment with the package importable."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else f"{src}{os.pathsep}{existing}"
    return env


def wait_for_cells(store_path: Path, minimum: int, timeout: float) -> tuple[str, int]:
    """Poll the victim's store until ``minimum`` cells have committed."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if store_path.exists():
            with RunStore(store_path) as store:
                run_ids = store.run_ids()
                if run_ids:
                    run_id = run_ids[0]
                    count = store.count("fleet.cell.result", run_id)
                    if count >= minimum:
                        return run_id, count
        time.sleep(0.1)
    raise SystemExit(
        f"victim run never committed {minimum} cells within {timeout}s"
    )


def main(argv=None) -> int:
    """Run the three-leg smoke; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--devices", default="ring_5,line_5,belem")
    parser.add_argument("--scenarios", default="calm,seasonal,jump")
    parser.add_argument("--scale", default="test")
    parser.add_argument(
        "--kill-after",
        type=int,
        default=2,
        help="SIGKILL the victim once this many cells have committed",
    )
    parser.add_argument("--workdir", type=Path, default=Path("crash_resume_smoke"))
    parser.add_argument("--timeout", type=float, default=600.0)
    args = parser.parse_args(argv)

    grid_cells = len(args.devices.split(",")) * len(args.scenarios.split(","))
    if args.kill_after >= grid_cells:
        raise SystemExit(
            f"--kill-after {args.kill_after} must be < grid size {grid_cells}"
        )
    workdir = args.workdir
    workdir.mkdir(parents=True, exist_ok=True)
    env = child_env()

    # Leg 1: the uninterrupted reference run.
    baseline_json = workdir / "baseline.json"
    print(f"[1/3] reference run ({grid_cells} cells, uninterrupted)")
    subprocess.run(
        fleet_command(
            args, workdir / "baseline.sqlite", ["--json", str(baseline_json)]
        ),
        check=True,
        env=env,
        stdout=subprocess.DEVNULL,
    )
    baseline = json.loads(baseline_json.read_text())["summary"]
    run_id = baseline["summary"]["run_id"]
    print(f"      run_id={run_id}")

    # Leg 2: the victim — killed mid-grid after --kill-after cells commit.
    victim_store = workdir / "victim.sqlite"
    print(f"[2/3] victim run, SIGKILL after {args.kill_after} cells commit")
    victim = subprocess.Popen(
        fleet_command(args, victim_store, ["--records", str(workdir / "victim.jsonl")]),
        env=env,
        stdout=subprocess.DEVNULL,
    )
    try:
        victim_run_id, _ = wait_for_cells(
            victim_store, args.kill_after, args.timeout
        )
    finally:
        victim.kill()  # SIGKILL — no cleanup handlers run
    victim.wait(timeout=60)
    if victim_run_id != run_id:
        raise SystemExit(
            f"victim run id {victim_run_id} != reference {run_id}; the "
            "deterministic id must match for identical configurations"
        )
    with RunStore(victim_store) as store:
        pre_kill = store.completed_cells(run_id)
        status = store.manifest(run_id).status
    print(f"      killed pid={victim.pid} with {len(pre_kill)} cells durable")
    if not pre_kill or len(pre_kill) >= grid_cells:
        raise SystemExit(
            f"kill landed outside the grid: {len(pre_kill)}/{grid_cells} "
            "cells committed; tune --kill-after"
        )
    if status == "complete":
        raise SystemExit("victim run is marked complete; the kill came too late")
    pre_kill_cells = {
        (cell.device, cell.scenario) for cell in pre_kill.values()
    }

    # Leg 3: resume and verify.
    resumed_json = workdir / "resumed.json"
    resumed_records = workdir / "resumed.jsonl"
    print(f"[3/3] resume --resume {run_id}")
    subprocess.run(
        fleet_command(
            args,
            victim_store,
            [
                "--resume",
                run_id,
                "--json",
                str(resumed_json),
                "--records",
                str(resumed_records),
            ],
        ),
        check=True,
        env=env,
        stdout=subprocess.DEVNULL,
    )
    resumed = json.loads(resumed_json.read_text())["summary"]

    # Completed cells were skipped: the report says so, and no run record
    # was appended for any pre-kill cell.
    if resumed["summary"]["resumed_cells"] != len(pre_kill):
        raise SystemExit(
            f"resume re-executed completed cells: resumed_cells="
            f"{resumed['summary']['resumed_cells']}, expected {len(pre_kill)}"
        )
    replayed = {
        (record.experiment.split("/")[1], record.scenario)
        for record in load_run_records(resumed_records)
    }
    overlap = replayed & pre_kill_cells
    if overlap:
        raise SystemExit(f"resume re-evaluated completed cells: {sorted(overlap)}")

    # The store now holds the whole grid and the run is complete.
    with RunStore(victim_store) as store:
        final_cells = store.completed_cells(run_id)
        final_status = store.manifest(run_id).status
        reports = store.count("fleet.report", run_id)
    if len(final_cells) != grid_cells or final_status != "complete" or reports != 1:
        raise SystemExit(
            f"store end-state wrong: cells={len(final_cells)}/{grid_cells} "
            f"status={final_status} reports={reports}"
        )

    # Bit-identical canonical reports.
    reference = json.dumps(canonical_report_dict(baseline), sort_keys=True)
    recovered = json.dumps(canonical_report_dict(resumed), sort_keys=True)
    if reference != recovered:
        raise SystemExit(
            "resumed report differs from the uninterrupted reference "
            f"(lengths {len(reference)} vs {len(recovered)})"
        )
    print(
        f"PASS: {len(pre_kill)} cells skipped, "
        f"{grid_cells - len(pre_kill)} re-run, reports bit-identical "
        f"({len(reference)} canonical bytes)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
