"""Benchmark: Table I — six methods on three datasets over the online days.

The paper's qualitative shape that must hold at any scale:

* compression-based methods beat the purely training-based ones in mean
  accuracy,
* QuCAD is the best (or tied-best) compression-based method,
* QuCAD needs far fewer online optimizations than the every-day baselines.
"""

from repro.experiments import run_table1


def test_table1_main_comparison(benchmark, scale):
    result = benchmark.pedantic(run_table1, kwargs={"scale": scale}, rounds=1, iterations=1)
    print("\nTable I — method comparison (reduced scale)\n")
    print(result.format())

    for dataset_name, longitudinal in result.per_dataset.items():
        means = {run.method_name: run.mean_accuracy for run in longitudinal.runs}
        runs = {run.method_name: run.optimization_runs for run in longitudinal.runs}
        # Compression-aided adaptation should not lose to the unadapted baseline.
        assert means["qucad"] >= means["baseline"] - 0.1, dataset_name
        # QuCAD's online optimization count stays below optimize-every-day.
        assert runs["qucad"] <= longitudinal.num_days
        assert runs["noise_aware_train_everyday"] == longitudinal.num_days
