"""Benchmark: compiled-engine throughput on the Fig. 7 repeated-evaluation workload.

The online phase re-evaluates one fixed circuit structure against many data
batches (one evaluation per day per strategy).  This benchmark times that
workload twice over identical inputs:

* **unfused per-gate path** — bind the parameter vector and apply every gate
  matrix one at a time (the pre-engine behaviour of
  ``StatevectorSimulator.run``);
* **compiled engine path** — ``StatevectorBackend.execute``, which compiles
  the ansatz once (gate fusion + precomputed axis permutations) and replays
  the cached program for every batch.

The acceptance bar is a >= 2x speedup; in practice the engine lands well
above it (see docs/BENCHMARKS.md for representative numbers).
"""

from __future__ import annotations

import time

import numpy as np

from repro.circuits import build_qucad_ansatz
from repro.qnn.encoding import AngleEncoder
from repro.simulator import SimulationEngine, StatevectorBackend, StatevectorSimulator

NUM_QUBITS = 4
REPEATS = 2
NUM_BATCHES = 60  # "days" of the Fig. 7 workload; >= 50 per the acceptance bar
BATCH_SIZE = 16
ROUNDS = 3  # best-of-N to shrug off scheduler noise


def _workload():
    rng = np.random.default_rng(0)
    ansatz = build_qucad_ansatz(NUM_QUBITS, REPEATS)
    theta = rng.uniform(-np.pi, np.pi, ansatz.num_parameters)
    encoder = AngleEncoder(num_qubits=NUM_QUBITS, num_features=16)
    simulator = StatevectorSimulator(NUM_QUBITS)
    batches = [
        encoder.encode_statevectors(
            rng.uniform(0.0, 1.0, (BATCH_SIZE, 16)), simulator
        )
        for _ in range(NUM_BATCHES)
    ]
    return ansatz, theta, simulator, batches


def test_engine_throughput():
    ansatz, theta, simulator, batches = _workload()

    def unfused_pass():
        outputs = []
        for states in batches:
            bound = ansatz.bind_parameters(theta)
            outputs.append(simulator.run(bound, initial_states=states).states)
        return outputs

    engine = SimulationEngine()
    backend = StatevectorBackend(engine=engine)

    def engine_pass():
        outputs = []
        for states in batches:
            outputs.append(
                backend.execute(ansatz, states, parameters=theta).states
            )
        return outputs

    # Correctness first: both paths must agree exactly.
    reference = unfused_pass()
    compiled = engine_pass()
    for expected, actual in zip(reference, compiled):
        np.testing.assert_allclose(actual, expected, atol=1e-10)

    def best_of(fn):
        timings = []
        for _ in range(ROUNDS):
            start = time.perf_counter()
            fn()
            timings.append(time.perf_counter() - start)
        return min(timings)

    unfused_seconds = best_of(unfused_pass)
    engine_seconds = best_of(engine_pass)
    speedup = unfused_seconds / engine_seconds

    plan = engine.plan_for(ansatz)[1]
    print(
        f"\nEngine throughput — {NUM_BATCHES} batches x {BATCH_SIZE} samples, "
        f"{plan.source_gate_count} gates fused to {plan.fused_gate_count} blocks"
    )
    print(
        f"  unfused per-gate path {unfused_seconds * 1000:7.1f} ms\n"
        f"  compiled engine path  {engine_seconds * 1000:7.1f} ms\n"
        f"  speedup               {speedup:7.2f} x"
    )
    print(
        f"  program cache: {engine.stats.program_hits} hits / "
        f"{engine.stats.program_builds} compilations"
    )

    # One compilation, every subsequent batch a cache hit.
    assert engine.stats.program_builds == 1
    assert engine.stats.program_hits >= NUM_BATCHES
    # The acceptance criterion: >= 2x over the unfused per-gate path.
    assert speedup >= 2.0, f"expected >= 2x speedup, measured {speedup:.2f}x"
