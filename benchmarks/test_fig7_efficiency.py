"""Benchmark: Fig. 7 — online optimization cost vs accuracy."""

from repro.experiments import run_fig7


def test_fig7_efficiency(benchmark, scale, mnist_setup):
    result = benchmark.pedantic(
        run_fig7, kwargs={"scale": scale, "setup": mnist_setup}, rounds=1, iterations=1
    )
    normalized = result.normalized_time(by="runs")
    print("\nFig. 7 — online optimization cost (normalized to QuCAD) and accuracy")
    for name in result.mean_accuracy:
        print(
            f"  {name:28s} time x{normalized[name]:6.1f}  "
            f"mean accuracy {result.mean_accuracy[name]:.3f}"
        )
    # The every-day strategies optimize once per day; QuCAD optimizes far less.
    assert normalized["compression_everyday"] > 1.0
    assert normalized["noise_aware_train_everyday"] > 1.0
    assert normalized["qucad"] == 1.0
