"""Benchmark: Table II — weighted-L1 vs L2 clustering for the repository."""

from repro.experiments import run_table2


def test_table2_clustering_ablation(benchmark, scale, mnist_setup):
    result = benchmark.pedantic(
        run_table2, kwargs={"scale": scale, "setup": mnist_setup}, rounds=1, iterations=1
    )
    print("\nTable II — clustering-distance ablation")
    for row in result.rows():
        print(
            f"  {row['method']:34s} K={row['k']}  "
            f"cluster acc {row['mean_cluster_accuracy']:.3f}  "
            f"sample acc {row['mean_sample_accuracy']:.3f}"
        )
    # The proposed distance should not be worse than plain L2 by a wide margin
    # (the paper reports a ~2-3 point gain).
    assert result.weighted_l1.mean_sample_accuracy >= result.l2.mean_sample_accuracy - 0.1
