"""Benchmark: Fig. 3 — breakpoints in the noisy loss landscape."""

from repro.experiments import run_fig3


def test_fig3_loss_landscape(benchmark, scale):
    result = benchmark.pedantic(
        run_fig3, kwargs={"scale": scale, "grid_points": 17}, rounds=1, iterations=1
    )
    gain = result.breakpoint_gain()
    print("\nFig. 3 — two-parameter VQC landscape under noise")
    print(f"  mean |W_n - W_p| off the compression levels minus on them: {gain:.4f}")
    # The paper's observation: the deviation is smaller at the breakpoints
    # (compression levels), i.e. the gain is positive.
    assert gain > 0
