"""Benchmark: Fig. 4 — CNOT-noise heterogeneity and cross-day compression."""

from repro.experiments import run_fig4


def test_fig4_heterogeneity(benchmark, scale, mnist_setup):
    result = benchmark.pedantic(
        run_fig4, kwargs={"scale": scale, "setup": mnist_setup}, rounds=1, iterations=1
    )
    print("\nFig. 4 — heterogeneous CNOT noise on anchor days")
    for date, coupler in result.noisiest_coupler_per_day().items():
        print(f"  {date}: noisiest coupler {coupler}")
    print("  cross-day accuracy of per-day compressed models:")
    for label, series in result.accuracy.items():
        print(f"    {label}: " + "  ".join(f"{a:.2f}" for a in series))
    assert len(result.anchor_days) >= 2
    for series in result.accuracy.values():
        assert len(series) == len(result.evaluation_days)
