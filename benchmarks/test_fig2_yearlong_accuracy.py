"""Benchmark: Fig. 2 — day-1 adaptation strategies over the online history."""

from repro.experiments import run_fig2


def test_fig2_yearlong_accuracy(benchmark, scale, mnist_setup):
    result = benchmark.pedantic(
        run_fig2, kwargs={"scale": scale, "setup": mnist_setup}, rounds=1, iterations=1
    )
    summary = result.summary()
    print("\nFig. 2 — accuracy of day-1 strategies across the online days")
    print(f"  noise-aware training on day 1: mean {summary['noise_aware_training_mean']:.3f} "
          f"min {summary['noise_aware_training_min']:.3f}")
    print(f"  compression on day 1:          mean {summary['compression_mean']:.3f} "
          f"min {summary['compression_min']:.3f}")
    assert len(result.compression_accuracy) == len(result.noise_aware_training_accuracy)
    # Both one-shot strategies must remain valid accuracy series.
    assert 0.0 <= summary["compression_mean"] <= 1.0
