"""Benchmark: sharded multi-process serving vs the single-process service (PR 7).

The workload is the multi-model steady state the sharded tier exists for:
four deployed endpoints receiving an interleaved stream of single-sample
requests.  The baseline serves all four through one ``InferenceService``
(one dispatch thread, one GIL-bound engine); the sharded path routes the
same stream by consistent hashing to four shard processes, each running its
own engine — so on a multi-core host the four model streams execute truly
in parallel.

The acceptance bar is host-aware, because a parallelism benchmark cannot
manufacture cores: with >= 4 usable cores the sharded tier must deliver
>= 2.5x aggregate throughput; with 2-3 cores the bar drops to the partial
parallelism the host can express; on a single core the assertion is only a
sanity bound that IPC overhead has not collapsed throughput.  The measured
ratio and the core count are both recorded in ``BENCH_serving.json``
(``sharded`` block), and ``benchmarks/bench_floors.json`` gates
``sharded.scaling_speedup`` conditional on ``sharded.cores`` so CI enforces
the scaling claim exactly where it is measurable.

Timing is interleaved (baseline, sharded, baseline, sharded, ...) and
best-of-``ROUNDS`` over live, warmed-up services so host noise hits both
candidates alike.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.calibration import generate_belem_history
from repro.datasets import load_mnist4
from repro.qnn import QNNModel
from repro.serving import (
    BatchPolicy,
    ConsistentHashRouter,
    InferenceService,
    LoadGenerator,
    ShardedInferenceService,
)
from repro.transpiler import belem_coupling

NUM_SHARDS = 4
NUM_MODELS = 4
NUM_REQUESTS = 96
MAX_BATCH = 8
ROUNDS = 3  # best-of-N, interleaved; services stay live across rounds
SEED = 0


def _usable_cores() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _scaling_floor(cores: int) -> float:
    """The throughput bar this host can honestly express."""
    if cores >= NUM_SHARDS:
        return 2.5  # the headline claim: near-linear scaling over 4 shards
    if cores >= 2:
        return 1.2  # partial parallelism: must still beat one process
    # One core cannot run shards in parallel at all; only assert that the
    # IPC + supervision overhead does not collapse throughput.
    return 0.45


def _workload():
    history = generate_belem_history(2, seed=12)
    model = QNNModel.create(
        num_qubits=4, num_features=16, num_classes=4, repeats=2, seed=9
    )
    model.bind_to_device(belem_coupling(), calibration=history[0])
    dataset = load_mnist4(num_samples=NUM_REQUESTS * 2, seed=5)
    return model, history[0], dataset.test_features


def _maybe_write_json(payload: dict) -> None:
    path = os.environ.get("REPRO_BENCH_JSON")
    if not path:
        return
    existing = {}
    if os.path.isfile(path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                existing = json.load(handle)
        except (OSError, ValueError):
            existing = {}
    existing.update(payload)
    existing["created_at"] = time.time()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(existing, handle, indent=2, sort_keys=True)
    print(f"  wrote {path}")


def _spread_names() -> list[str]:
    """Endpoint names that land on distinct shards of the standard ring.

    With only ``NUM_MODELS`` names, an arbitrary choice can hash several
    onto one shard and the benchmark would measure ring luck, not scaling
    capacity.  Probing ``qnn-<i>`` suffixes until every shard owns one name
    is deterministic (blake2b ring positions are process-stable) and mirrors
    a fleet at steady state, where many models cover every shard.
    """
    router = ConsistentHashRouter(range(NUM_SHARDS))
    names: list[str] = []
    taken: set[int] = set()
    index = 0
    while len(names) < NUM_MODELS:
        name = f"qnn-{index}"
        index += 1
        shard = router.route(name)
        if shard in taken:
            continue
        taken.add(shard)
        names.append(name)
    return names


def test_sharded_serving_scaling():
    """4-shard serving vs single-process on a 4-model interleaved stream."""
    model, calibration, features = _workload()
    names = _spread_names()
    policy = BatchPolicy(max_batch=MAX_BATCH, max_latency_ms=2.0)

    baseline = InferenceService(policy=policy)
    sharded = ShardedInferenceService(num_shards=NUM_SHARDS, policy=policy)
    for name in names:
        baseline.deploy(name, model, calibration=calibration)
        sharded.deploy(name, model, calibration=calibration)

    with baseline, sharded:
        # Correctness first: both tiers must serve bit-identical logits for
        # the same samples (appliers are batch-size independent, PR 6).
        probe = features[:NUM_MODELS]
        for name in names:
            expected = baseline.predict_many(name, list(probe))
            observed = sharded.predict_many(name, list(probe))
            for exp, obs in zip(expected, observed):
                np.testing.assert_array_equal(obs.logits, exp.logits)

        def run_baseline():
            generator = LoadGenerator(baseline, features, names=names, seed=SEED)
            return generator.run(NUM_REQUESTS)

        def run_sharded():
            generator = LoadGenerator(sharded, features, names=names, seed=SEED)
            return generator.run(NUM_REQUESTS)

        # Warm both paths (program caches, shard engines) outside timing.
        run_baseline()
        run_sharded()

        best_baseline, best_sharded = float("inf"), float("inf")
        for _ in range(ROUNDS):
            best_baseline = min(best_baseline, run_baseline().duration_seconds)
            best_sharded = min(best_sharded, run_sharded().duration_seconds)

    speedup = best_baseline / best_sharded
    cores = _usable_cores()
    floor = _scaling_floor(cores)
    assignments = {name: sharded.route(name) for name in names}
    print(
        f"\nSharded serving — {NUM_REQUESTS} requests, {NUM_MODELS} models, "
        f"{NUM_SHARDS} shards, {cores} usable cores\n"
        f"  single-process  {best_baseline * 1000:8.1f} ms\n"
        f"  {NUM_SHARDS}-shard         {best_sharded * 1000:8.1f} ms\n"
        f"  scaling speedup {speedup:8.2f} x (host floor {floor:.2f}x)\n"
        f"  routing         {assignments}"
    )
    _maybe_write_json(
        {
            "sharded": {
                "requests": NUM_REQUESTS,
                "models": NUM_MODELS,
                "shards": NUM_SHARDS,
                "cores": cores,
                "max_batch": MAX_BATCH,
                "single_process_ms": best_baseline * 1000,
                "sharded_ms": best_sharded * 1000,
                "scaling_speedup": speedup,
                "throughput_rps": NUM_REQUESTS / best_sharded,
            }
        }
    )
    assert speedup >= floor, (
        f"expected >= {floor:.2f}x on {cores} cores, measured {speedup:.2f}x"
    )
