"""Benchmark: the fast kernel tier (PR 8).

Three claims, each gated as a conservative floor in
``benchmarks/bench_floors.json`` over the ``BENCH_kernels.json`` artifact:

* **float32 density walk** — the multi-day noisy sweep (the Fig. 2 inner
  loop) run on a ``dtype="float32"`` engine vs the float64 reference.
  Single precision halves the bytes every BLAS contraction moves, so the
  walk must get faster, not just stay equal.
* **fully batched training step** — one ``loss_and_gradient_batch`` call
  over a minibatch vs the per-sample loop (one encode + forward/backward
  per sample).  The batched step shares one encode, one ``execute_batch``
  forward and one stacked adjoint sweep.
* **cross-path fusion** — plan-level gate-count reduction of the wider
  fusion sweep (``fusion_width=3``) on the paper ansatz.  This one is a
  deterministic plan statistic, not a timing.

Set ``REPRO_BENCH_JSON=<path>`` (``make bench-json`` does) to persist the
measurements for the CI bench gate.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.calibration import generate_belem_history
from repro.circuits import build_qucad_ansatz
from repro.datasets import load_mnist4
from repro.qnn import QNNModel
from repro.simulator import (
    DensityMatrixBackend,
    NoiseModel,
    SimulationEngine,
    StatevectorBackend,
    build_fusion_plan,
)
from repro.transpiler import belem_coupling

NUM_SAMPLES = 16
NUM_DAYS = 12
BATCH_SIZE = 16
ROUNDS = 5  # best-of-N to shrug off scheduler noise


def _best_of_each(*fns):
    """Best-of-``ROUNDS`` timings, interleaving the candidates."""
    best = [float("inf")] * len(fns)
    for _ in range(ROUNDS):
        for index, fn in enumerate(fns):
            start = time.perf_counter()
            fn()
            best[index] = min(best[index], time.perf_counter() - start)
    return best


def _maybe_write_json(payload: dict) -> None:
    path = os.environ.get("REPRO_BENCH_JSON")
    if not path:
        return
    existing = {}
    if os.path.isfile(path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                existing = json.load(handle)
        except (OSError, ValueError):
            existing = {}
    existing.update(payload)
    existing["created_at"] = time.time()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(existing, handle, indent=2, sort_keys=True)
    print(f"  wrote {path}")


def _noisy_workload():
    rng = np.random.default_rng(0)
    history = generate_belem_history(NUM_DAYS, seed=12)
    model = QNNModel.create(num_qubits=4, num_features=16, num_classes=4, repeats=2, seed=9)
    model.bind_to_device(belem_coupling(), calibration=history[0])
    dataset = load_mnist4(num_samples=NUM_SAMPLES * 5, seed=5)
    features = dataset.test_features[:NUM_SAMPLES]
    noise_models = [NoiseModel.from_calibration(s) for s in history]
    parameters = rng.uniform(-np.pi, np.pi, model.num_parameters)
    return model, features, noise_models, parameters


def test_float32_density_walk_speedup():
    """Multi-day density sweep: float32 engine vs the float64 reference."""
    model, features, noise_models, parameters = _noisy_workload()
    exact_backend = DensityMatrixBackend(engine=SimulationEngine())
    fast_backend = DensityMatrixBackend(engine=SimulationEngine(dtype="float32"))
    parameter_sets = [parameters] * NUM_DAYS

    def float64_sweep():
        return model.noisy_expectations_batch(
            features, noise_models, parameter_sets=parameter_sets,
            backend=exact_backend,
        )

    def float32_sweep():
        return model.noisy_expectations_batch(
            features, noise_models, parameter_sets=parameter_sets,
            backend=fast_backend,
        )

    exact = float64_sweep()
    fast = float32_sweep()
    # The fast tier is only admissible inside its tolerance band.
    np.testing.assert_allclose(fast, exact, atol=5e-4)

    exact_seconds, fast_seconds = _best_of_each(float64_sweep, float32_sweep)
    speedup = exact_seconds / fast_seconds
    print(
        f"\nFloat32 density walk — {NUM_DAYS} days x {NUM_SAMPLES} samples\n"
        f"  float64 sweep     {exact_seconds * 1000:8.1f} ms\n"
        f"  float32 sweep     {fast_seconds * 1000:8.1f} ms\n"
        f"  speedup           {speedup:8.2f} x"
    )
    _maybe_write_json(
        {
            "float32": {
                "days": NUM_DAYS,
                "samples": NUM_SAMPLES,
                "float64_ms": exact_seconds * 1000,
                "float32_ms": fast_seconds * 1000,
                "density_speedup": speedup,
            }
        }
    )
    # The committed BENCH_kernels.json floor holds the stronger line; the
    # in-test bar only guards against the tier going *slower* than double
    # precision under shared-host noise.
    assert speedup >= 1.0, f"float32 tier slower than float64: {speedup:.2f}x"


def test_batched_training_step_speedup():
    """One optimiser step: batched loss/gradient vs the per-sample loop."""
    dataset = load_mnist4(num_samples=BATCH_SIZE * 5, seed=5)
    features = dataset.train_features[:BATCH_SIZE]
    labels = dataset.train_labels[:BATCH_SIZE]
    model = QNNModel.create(num_qubits=4, num_features=16, num_classes=4, repeats=2, seed=9)
    backend = StatevectorBackend(engine=SimulationEngine())

    def per_sample_loop():
        gradients = []
        losses = []
        for index in range(features.shape[0]):
            loss_value, gradient = model.loss_and_gradient(
                features[index : index + 1],
                labels[index : index + 1],
                backend=backend,
            )
            losses.append(loss_value)
            gradients.append(gradient)
        return float(np.mean(losses)), np.mean(gradients, axis=0)

    def batched_step():
        [(loss_value, gradient)] = model.loss_and_gradient_batch(
            features, labels, [None], backend=backend
        )
        return loss_value, gradient

    loop_loss, loop_gradient = per_sample_loop()
    batched_loss, batched_gradient = batched_step()
    # The batched step *is* the minibatch objective; the per-sample loop
    # averages the same per-sample terms in a different order.
    np.testing.assert_allclose(batched_loss, loop_loss, atol=1e-12)
    np.testing.assert_allclose(batched_gradient, loop_gradient, atol=1e-12)

    loop_seconds, batched_seconds = _best_of_each(per_sample_loop, batched_step)
    speedup = loop_seconds / batched_seconds
    print(
        f"\nBatched training step — minibatch of {BATCH_SIZE}\n"
        f"  per-sample loop   {loop_seconds * 1000:8.1f} ms\n"
        f"  batched step      {batched_seconds * 1000:8.1f} ms\n"
        f"  speedup           {speedup:8.2f} x"
    )
    _maybe_write_json(
        {
            "training": {
                "batch_size": BATCH_SIZE,
                "per_sample_loop_ms": loop_seconds * 1000,
                "batched_step_ms": batched_seconds * 1000,
                "batched_step_speedup": speedup,
            }
        }
    )
    assert speedup >= 1.5, f"batched step regressed: {speedup:.2f}x vs loop"


def test_cross_path_fusion_block_reduction():
    """Wider fusion must strictly shrink the paper ansatz's plans."""
    reductions = {}
    for num_qubits, repeats in [(4, 2), (5, 2)]:
        ansatz = build_qucad_ansatz(num_qubits, repeats=repeats)
        narrow = build_fusion_plan(ansatz, max_width=2)
        wide = build_fusion_plan(ansatz, max_width=3)
        reductions[f"q{num_qubits}_r{repeats}"] = {
            "narrow_blocks": narrow.fused_gate_count,
            "wide_blocks": wide.fused_gate_count,
            "reduction": narrow.fused_gate_count / wide.fused_gate_count,
        }
    worst = min(entry["reduction"] for entry in reductions.values())
    print("\nCross-path fusion — fused blocks at width 2 vs width 3")
    for name, entry in reductions.items():
        print(
            f"  {name:<8} {entry['narrow_blocks']:>3} -> {entry['wide_blocks']:>3} "
            f"({entry['reduction']:.2f}x)"
        )
    _maybe_write_json(
        {
            "fusion": {
                "plans": reductions,
                "block_reduction": worst,
            }
        }
    )
    assert worst >= 1.05, f"cross-path fusion stopped shrinking plans: {worst:.2f}x"
