"""Benchmark: Fig. 9 — ablations on representative days."""

from repro.experiments import run_fig9


def test_fig9_ablations(benchmark, scale, mnist_setup):
    result = benchmark.pedantic(
        run_fig9,
        kwargs={"scale": scale, "setup": mnist_setup, "num_days": 4},
        rounds=1,
        iterations=1,
    )
    print("\nFig. 9(a) — QuCAD vs the practical upper bound (compression every day)")
    for name, series in result.panel_a.items():
        print(f"  {name:36s} " + "  ".join(f"{a:.2f}" for a in series))
    print("Fig. 9(b) — noise-aware vs noise-agnostic compression")
    for name, series in result.panel_b.items():
        print(f"  {name:36s} " + "  ".join(f"{a:.2f}" for a in series))
    print(f"  upper-bound gap: {result.upper_bound_gap():.3f}   "
          f"noise-aware gain: {result.noise_aware_gain():.3f}")
    # QuCAD should stay within a reasonable distance of compressing every day,
    # and noise-aware compression should not lose badly to noise-agnostic.
    assert result.upper_bound_gap() < 0.25
    assert result.noise_aware_gain() > -0.15
