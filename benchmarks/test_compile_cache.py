"""Benchmark: incremental recompilation through the staged pipeline (PR 3).

The paper's longitudinal workload recompiles the *same* model day after day
as calibration drifts.  The legacy path re-runs the full noise-aware layout
search (routing every candidate assignment) for every day; the staged
:class:`~repro.transpiler.PassManager` proves — via the layout decision
boundary — that slow drift leaves yesterday's layout optimal and skips the
search entirely, reusing the routed artifact too.

Two timed scenarios over a 30-day calm-drift history (the day-to-day jitter
regime between the synthetic generator's regime shifts — aggressive regime
days genuinely need a fresh search and are not claimed here):

* **cold** — ``legacy_transpile`` once per day, no caching;
* **warm** — one fresh ``PassManager`` compiling the same 30 days.

Timings are interleaved (cold, warm, cold, warm, ...) and best-of-N so
background load on a noisy CI host hits both candidates alike, and the
acceptance margin (>= 2x) sits far below the typically measured ~10-30x.

Set ``REPRO_BENCH_JSON=<path>`` (``make bench-json`` points it at
``BENCH_compiler.json``) to persist hit rates and speedups as JSON.
"""

from __future__ import annotations

import json
import os
import time

from repro.calibration import FluctuationConfig, generate_device_history
from repro.circuits import build_qucad_ansatz
from repro.transpiler import (
    PassManager,
    Target,
    get_device_coupling,
    legacy_transpile,
    transpile_batch,
)

NUM_DAYS = 30
ROUNDS = 5  # best-of-N with interleaving, to shrug off scheduler noise

#: Day-to-day jitter without regime shifts or spikes: the drift regime the
#: incremental path targets (regime days must re-search and are excluded).
CALM_DRIFT = FluctuationConfig(
    drift_sigma=0.002, mean_reversion=0.5, regime_rate=0.0, spike_rate=0.0
)


def _best_of_each(*fns):
    """Best-of-``ROUNDS`` timings, interleaving the candidates."""
    best = [float("inf")] * len(fns)
    for _ in range(ROUNDS):
        for index, fn in enumerate(fns):
            start = time.perf_counter()
            fn()
            best[index] = min(best[index], time.perf_counter() - start)
    return best


def _workload(device: str = "jakarta"):
    coupling = get_device_coupling(device)
    history = generate_device_history(device, NUM_DAYS, seed=29, config=CALM_DRIFT)
    ansatz = build_qucad_ansatz(4, repeats=2)
    return ansatz, coupling, list(history)


def _gate_tuples(circuit):
    return [(g.name, g.qubits, g.param, g.param_ref) for g in circuit.gates]


def _maybe_write_json(payload: dict) -> None:
    path = os.environ.get("REPRO_BENCH_JSON")
    if not path:
        return
    existing = {}
    if os.path.isfile(path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                existing = json.load(handle)
        except (OSError, ValueError):
            existing = {}
    existing.update(payload)
    existing["created_at"] = time.time()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(existing, handle, indent=2, sort_keys=True)
    print(f"  wrote {path}")


def test_warm_recompilation_speedup_over_30_day_history():
    """Warm per-day recompilation must beat cold by >= 2x with high hit rate."""
    ansatz, coupling, history = _workload()
    targets = [Target(coupling=coupling, calibration=snapshot) for snapshot in history]

    def cold():
        return [
            legacy_transpile(ansatz, coupling, calibration=snapshot)
            for snapshot in history
        ]

    def warm():
        manager = PassManager()
        results = [manager.compile(ansatz, target) for target in targets]
        return manager, results

    # Equivalence first: the warm path must be indistinguishable day by day.
    cold_results = cold()
    manager, warm_results = warm()
    for cold_day, warm_day in zip(cold_results, warm_results):
        assert (
            warm_day.initial_layout.logical_to_physical
            == cold_day.initial_layout.logical_to_physical
        )
        assert warm_day.final_mapping == cold_day.final_mapping
        assert _gate_tuples(warm_day.routed.circuit) == _gate_tuples(
            cold_day.routed.circuit
        )

    stats = manager.stats
    hit_rate = stats.pass_cache_hit_rate
    reused_days = stats.layout_reuses + stats.layout_hits
    assert reused_days >= NUM_DAYS // 2, (
        f"boundary reuse fired on only {reused_days}/{NUM_DAYS - 1} warm days"
    )

    cold_seconds, warm_seconds = _best_of_each(cold, warm)
    speedup = cold_seconds / warm_seconds
    print(
        f"\nIncremental recompilation — {NUM_DAYS} days on {coupling.name}\n"
        f"  cold per-day transpile {cold_seconds * 1000:8.1f} ms\n"
        f"  warm pass manager      {warm_seconds * 1000:8.1f} ms\n"
        f"  speedup                {speedup:8.2f} x\n"
        f"  pass-cache hit rate    {hit_rate:8.2%}\n"
        f"  layout searches        {stats.layout_runs} "
        f"(reused {stats.layout_reuses}, routing hits {stats.routing_hits})"
    )
    _maybe_write_json(
        {
            "warm_recompilation": {
                "days": NUM_DAYS,
                "device": coupling.name,
                "cold_ms": cold_seconds * 1000,
                "warm_ms": warm_seconds * 1000,
                "speedup": speedup,
                "pass_cache_hit_rate": hit_rate,
                "layout_runs": stats.layout_runs,
                "layout_reuses": stats.layout_reuses,
                "routing_hits": stats.routing_hits,
            }
        }
    )
    # Wide margin: the CI host's clock is noisy; typical measurements land
    # one order of magnitude above this bar.
    assert speedup >= 2.0, f"expected >= 2x warm speedup, measured {speedup:.2f}x"


def test_transpile_batch_dedup_across_models_and_days():
    """Many models x many days through transpile_batch dedups shared work."""
    _, coupling, history = _workload()
    models = [build_qucad_ansatz(4, repeats=r) for r in (1, 2)]
    targets = [Target(coupling=coupling, calibration=snapshot) for snapshot in history]

    def cold():
        return [
            legacy_transpile(model, coupling, calibration=snapshot)
            for model in models
            for snapshot in history
        ]

    def batched():
        manager = PassManager()
        results = []
        for model in models:
            results.extend(transpile_batch(model, targets, pass_manager=manager))
        return manager, results

    cold_results = cold()
    manager, batch_results = batched()
    for cold_day, warm_day in zip(cold_results, batch_results):
        assert warm_day.final_mapping == cold_day.final_mapping
        assert _gate_tuples(warm_day.routed.circuit) == _gate_tuples(
            cold_day.routed.circuit
        )

    cold_seconds, batch_seconds = _best_of_each(cold, batched)
    speedup = cold_seconds / batch_seconds
    hit_rate = manager.stats.pass_cache_hit_rate
    print(
        f"\ntranspile_batch — {len(models)} models x {NUM_DAYS} days\n"
        f"  cold loop        {cold_seconds * 1000:8.1f} ms\n"
        f"  batched pipeline {batch_seconds * 1000:8.1f} ms\n"
        f"  speedup          {speedup:8.2f} x (hit rate {hit_rate:.2%})"
    )
    _maybe_write_json(
        {
            "transpile_batch": {
                "models": len(models),
                "days": NUM_DAYS,
                "cold_ms": cold_seconds * 1000,
                "batched_ms": batch_seconds * 1000,
                "speedup": speedup,
                "pass_cache_hit_rate": hit_rate,
            }
        }
    )
    assert speedup >= 2.0, f"expected >= 2x batch speedup, measured {speedup:.2f}x"
