"""Benchmark: Fig. 1 — fluctuating noise on the belem-like backend."""

from repro.experiments import run_fig1


def test_fig1_noise_fluctuation(benchmark, scale):
    result = benchmark.pedantic(run_fig1, args=(scale,), rounds=1, iterations=1)
    summary = result.fluctuation_summary()
    print("\nFig. 1 — error-rate fluctuation over the synthetic history")
    for kind, stats in summary.items():
        print(
            f"  {kind:12s} min {stats['min']:.5f}  max {stats['max']:.5f}  "
            f"max/min {stats['max_over_min']:.1f}x"
        )
    # Paper's qualitative claim: noise fluctuates in a wide range.
    assert summary["cnot"]["max_over_min"] > 2.0
    assert summary["readout"]["max_over_min"] > 1.5
