"""Benchmark: Fig. 8 — earthquake detection on the jakarta-like device."""

from repro.experiments import run_fig8


def test_fig8_jakarta_hardware_emulation(benchmark, scale):
    hardware_scale = scale.with_overrides(
        offline_days=max(scale.num_clusters * 3, 9),
        online_days=3,
        eval_samples=min(scale.eval_samples, 40),
    )
    result = benchmark.pedantic(
        run_fig8,
        kwargs={"scale": hardware_scale, "num_rounds": 3, "shots": 1024},
        rounds=1,
        iterations=1,
    )
    print("\nFig. 8 — earthquake detection on the 7-qubit jakarta-like device")
    for name, series in result.accuracy.items():
        rounds = "  ".join(f"{a:.3f}" for a in series)
        print(f"  {name:26s} {rounds}")
    means = result.mean_accuracy()
    print("  QuCAD gain over competitors:", {k: round(v, 3) for k, v in result.qucad_gain().items()})
    # QuCAD should not fall behind the unadapted baseline on the hardware run.
    assert means["qucad"] >= means["baseline"] - 0.1
