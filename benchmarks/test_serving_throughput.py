"""Benchmark: micro-batched serving vs. a per-request serving baseline (PR 4).

The serving workload is the paper's online phase as seen by a server:
individual single-sample predict requests arriving for one deployed model.
The baseline answers each request with its own backend execution (batch of
one — what a naive request handler does); the micro-batched path coalesces
requests into windows of ``MAX_BATCH`` and serves each window with one
batched backend call through the scheduler.  The acceptance bar is a >= 3x
throughput gain with decisions preserved.

Timing is interleaved (baseline, batched, baseline, batched, ...) and
best-of-``ROUNDS`` so background load on a noisy host hits both candidates
alike — the measured *ratio* is what matters.  Set
``REPRO_BENCH_JSON=<path>`` (``make bench-json`` does) to persist the
measurements as machine-readable JSON (``BENCH_serving.json``).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.calibration import generate_belem_history
from repro.datasets import load_mnist4
from repro.qnn import QNNModel
from repro.serving import BatchPolicy, MicroBatchScheduler, ModelRegistry
from repro.simulator import DensityMatrixBackend, NoiseModel, SimulationEngine
from repro.transpiler import belem_coupling

NUM_REQUESTS = 32
#: Serving window: 8 single-sample requests per flush sits well inside the
#: engine's cache-friendly stacking regime and benchmarks faster than
#: larger windows on this workload (see qnn.evaluation.CACHE_FRIENDLY_SAMPLES).
MAX_BATCH = 8
ROUNDS = 7  # best-of-N, interleaved, to shrug off scheduler noise


def _best_of_each(*fns):
    """Best-of-``ROUNDS`` timings with interleaved candidates."""
    best = [float("inf")] * len(fns)
    for _ in range(ROUNDS):
        for index, fn in enumerate(fns):
            start = time.perf_counter()
            fn()
            best[index] = min(best[index], time.perf_counter() - start)
    return best


def _workload():
    history = generate_belem_history(2, seed=12)
    model = QNNModel.create(
        num_qubits=4, num_features=16, num_classes=4, repeats=2, seed=9
    )
    model.bind_to_device(belem_coupling(), calibration=history[0])
    noise_model = NoiseModel.from_calibration(history[0])
    dataset = load_mnist4(num_samples=NUM_REQUESTS * 5, seed=5)
    samples = dataset.test_features[:NUM_REQUESTS]
    assert samples.shape[0] == NUM_REQUESTS, "test split smaller than benchmark size"
    return model, noise_model, samples


def _maybe_write_json(payload: dict) -> None:
    path = os.environ.get("REPRO_BENCH_JSON")
    if not path:
        return
    existing = {}
    if os.path.isfile(path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                existing = json.load(handle)
        except (OSError, ValueError):
            existing = {}
    existing.update(payload)
    existing["created_at"] = time.time()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(existing, handle, indent=2, sort_keys=True)
    print(f"  wrote {path}")


def test_micro_batched_serving_throughput():
    """Scheduler-coalesced serving >= 3x a per-request baseline."""
    model, noise_model, samples = _workload()

    baseline_backend = DensityMatrixBackend(engine=SimulationEngine())

    def per_request_baseline():
        # One backend execution per request: the un-batched server.
        return np.concatenate(
            [
                model.forward_noisy_batch(
                    samples[i : i + 1], [noise_model], backend=baseline_backend
                )[0]
                for i in range(samples.shape[0])
            ]
        )

    registry = ModelRegistry()
    registry.publish("qnn", model, noise_model=noise_model)
    scheduler = MicroBatchScheduler(
        registry,
        policy=BatchPolicy(max_batch=MAX_BATCH, max_latency_ms=1e6),
    )

    def micro_batched():
        # Un-threaded scheduler: submit everything, flush in MAX_BATCH
        # windows — pure coalescing cost, no timer in the measurement.
        futures = [scheduler.submit("qnn", sample) for sample in samples]
        scheduler.flush_pending(force=True)
        return np.stack([future.result(timeout=0).logits for future in futures])

    baseline_logits = per_request_baseline()
    served_logits = micro_batched()
    # Evolutions are bit-identical per window; the final reduction order
    # differs between batch-of-1 and batch-of-N, so allow float epsilon but
    # require identical served decisions.
    np.testing.assert_allclose(served_logits, baseline_logits, atol=1e-12)
    assert np.array_equal(
        np.argmax(served_logits, axis=-1), np.argmax(baseline_logits, axis=-1)
    )

    baseline_seconds, batched_seconds = _best_of_each(
        per_request_baseline, micro_batched
    )
    speedup = baseline_seconds / batched_seconds
    throughput = NUM_REQUESTS / batched_seconds
    print(
        f"\nMicro-batched serving — {NUM_REQUESTS} requests, max_batch={MAX_BATCH}\n"
        f"  per-request baseline {baseline_seconds * 1000:8.1f} ms\n"
        f"  micro-batched        {batched_seconds * 1000:8.1f} ms\n"
        f"  speedup              {speedup:8.2f} x\n"
        f"  served throughput    {throughput:8.0f} req/s"
    )
    _maybe_write_json(
        {
            "serving": {
                "requests": NUM_REQUESTS,
                "max_batch": MAX_BATCH,
                "per_request_ms": baseline_seconds * 1000,
                "micro_batched_ms": batched_seconds * 1000,
                "speedup": speedup,
                "throughput_rps": throughput,
            }
        }
    )
    # Wide margin for noisy hosts: the observed gain is far above the bar.
    assert speedup >= 3.0, f"expected >= 3x speedup, measured {speedup:.2f}x"
