"""Shared fixtures for the benchmark suite.

Benchmarks reproduce every table and figure of the paper at a reduced scale
(`BENCH_SCALE`) so a full `pytest benchmarks/ --benchmark-only` run finishes
in minutes.  Set the environment variable ``REPRO_BENCH_SCALE=paper`` to run
at the paper's full scale instead (hours).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import BENCH_SCALE, PAPER_SCALE, TEST_SCALE, prepare_experiment


def _selected_scale():
    choice = os.environ.get("REPRO_BENCH_SCALE", "bench").lower()
    if choice == "paper":
        return PAPER_SCALE
    if choice == "test":
        return TEST_SCALE
    return BENCH_SCALE


@pytest.fixture(scope="session")
def scale():
    """The experiment scale used by every benchmark."""
    return _selected_scale()


@pytest.fixture(scope="session")
def mnist_setup(scale):
    """Shared MNIST-4 experiment setup (trained base model on belem)."""
    return prepare_experiment("mnist4", scale=scale)
