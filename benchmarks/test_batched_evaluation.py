"""Benchmark: the batched execution runtime vs. the per-item loops (PR 2).

Two workloads, both from the online phase of the paper:

* **multi-sample noisy evaluation** — one day's accuracy measurement over a
  test subset.  The per-sample loop runs one density-matrix simulation per
  sample (batch of 1); the batched path runs the whole subset as one
  backend call.  The acceptance bar is a >= 3x speedup with identical
  logits and accuracy.
* **multi-day sweep** — one model evaluated across many calibration days
  (the Fig. 2 / Table I inner loop).  The per-day loop calls
  ``evaluate_noisy`` once per day; the batched path hands all days to
  ``evaluate_noisy_batch``, which stacks the day axis into one fused
  density-matrix walk (per-gate noise strengths carried as per-day
  vectors), and the runner additionally dispatches chunks to the
  persistent worker pool (``mode="pool"``) whose warm processes hold the
  unpickled model and simulation engine across calls.

Set ``REPRO_BENCH_JSON=<path>`` (``make bench-json`` does) to persist the
measurements as machine-readable JSON for cross-PR tracking.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.calibration import generate_belem_history
from repro.datasets import load_mnist4
from repro.qnn import QNNModel, evaluate_noisy, evaluate_noisy_batch
from repro.runtime import ExperimentRunner
from repro.simulator import DensityMatrixBackend, NoiseModel, SimulationEngine
from repro.transpiler import belem_coupling

NUM_SAMPLES = 16  # one reduced-scale eval subset (the 20% test split of 80)
NUM_DAYS = 12
ROUNDS = 5  # best-of-N to shrug off scheduler noise


def _best_of_each(*fns):
    """Best-of-``ROUNDS`` timings, interleaving the candidates.

    Interleaving (A, B, A, B, ...) instead of timing each candidate in its
    own block means background load hits both candidates alike, which keeps
    the measured *ratio* stable on busy machines.
    """
    best = [float("inf")] * len(fns)
    for _ in range(ROUNDS):
        for index, fn in enumerate(fns):
            start = time.perf_counter()
            fn()
            best[index] = min(best[index], time.perf_counter() - start)
    return best


def _workload():
    rng = np.random.default_rng(0)
    history = generate_belem_history(NUM_DAYS, seed=12)
    model = QNNModel.create(num_qubits=4, num_features=16, num_classes=4, repeats=2, seed=9)
    model.bind_to_device(belem_coupling(), calibration=history[0])
    dataset = load_mnist4(num_samples=NUM_SAMPLES * 5, seed=5)
    features = dataset.test_features[:NUM_SAMPLES]
    labels = dataset.test_labels[:NUM_SAMPLES]
    assert features.shape[0] == NUM_SAMPLES, "test split smaller than benchmark size"
    noise_models = [NoiseModel.from_calibration(s) for s in history]
    parameter_sets = [
        rng.uniform(-np.pi, np.pi, model.num_parameters) for _ in range(NUM_DAYS)
    ]
    return model, features, labels, noise_models, parameter_sets


def _maybe_write_json(payload: dict) -> None:
    path = os.environ.get("REPRO_BENCH_JSON")
    if not path:
        return
    existing = {}
    if os.path.isfile(path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                existing = json.load(handle)
        except (OSError, ValueError):
            existing = {}
    existing.update(payload)
    existing["created_at"] = time.time()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(existing, handle, indent=2, sort_keys=True)
    print(f"  wrote {path}")


def test_batched_multi_sample_evaluation_speedup():
    """One day, many samples: batched call vs. per-sample loop (>= 3x)."""
    model, features, labels, noise_models, _ = _workload()
    noise_model = noise_models[0]
    backend = DensityMatrixBackend(engine=SimulationEngine())

    def per_sample_loop():
        rows = [
            model.forward_noisy(features[i : i + 1], noise_model, backend=backend)
            for i in range(features.shape[0])
        ]
        return np.concatenate(rows, axis=0)

    def batched():
        return model.forward_noisy(features, noise_model, backend=backend)

    loop_logits = per_sample_loop()
    batched_logits = batched()
    # The evolutions are bit-identical; only the final BLAS dot product
    # (probabilities @ signs) reduces in a batch-size-dependent order, so the
    # comparison allows float-epsilon noise but requires identical decisions.
    np.testing.assert_allclose(batched_logits, loop_logits, atol=1e-12)
    assert np.array_equal(
        np.argmax(batched_logits, axis=-1), np.argmax(loop_logits, axis=-1)
    )

    loop_seconds, batched_seconds = _best_of_each(per_sample_loop, batched)
    speedup = loop_seconds / batched_seconds
    print(
        f"\nBatched multi-sample noisy evaluation — {NUM_SAMPLES} samples\n"
        f"  per-sample loop   {loop_seconds * 1000:8.1f} ms\n"
        f"  batched call      {batched_seconds * 1000:8.1f} ms\n"
        f"  speedup           {speedup:8.2f} x"
    )
    _maybe_write_json(
        {
            "multi_sample": {
                "samples": NUM_SAMPLES,
                "per_sample_loop_ms": loop_seconds * 1000,
                "batched_ms": batched_seconds * 1000,
                "speedup": speedup,
            }
        }
    )
    assert speedup >= 3.0, f"expected >= 3x speedup, measured {speedup:.2f}x"


def test_batched_multi_day_sweep_speedup():
    """Many days, one model: multi-binding batch vs. per-day loop.

    This is the ``accuracy_over_days`` / Fig. 2 shape — one parameter
    binding across the whole history — where the multi-binding path shares
    broadcast 2-D gate matrices and only the per-day channel strengths vary.
    (Sweeps whose days all carry distinct parameters are grouped by binding
    and gracefully degenerate to per-day cost.)
    """
    model, features, labels, noise_models, parameter_sets = _workload()
    backend = DensityMatrixBackend(engine=SimulationEngine())
    parameter_sets = [parameter_sets[0]] * NUM_DAYS

    def per_day_loop():
        return np.array(
            [
                evaluate_noisy(
                    model, features, labels, noise_model,
                    parameters=parameters, backend=backend,
                ).accuracy
                for noise_model, parameters in zip(noise_models, parameter_sets)
            ]
        )

    def batched_days():
        return np.array(
            [
                result.accuracy
                for result in evaluate_noisy_batch(
                    model, features, labels, noise_models,
                    parameter_sets=parameter_sets, backend=backend,
                )
            ]
        )

    loop_accuracies = per_day_loop()
    batched_accuracies = batched_days()
    assert np.array_equal(batched_accuracies, loop_accuracies)

    runner = ExperimentRunner(mode="pool", chunk_days=4)
    try:
        # The first call pays the worker spawn; it also serves as the
        # correctness check.  Best-of-N below then measures the steady
        # state the fleet harness actually runs in: warm processes with
        # the model and engine caches already resident.
        runner_accuracies = runner.evaluate_days(
            model, features, labels, noise_models, parameter_sets=parameter_sets
        )
        assert np.array_equal(runner_accuracies, loop_accuracies)

        loop_seconds, batched_seconds, runner_seconds = _best_of_each(
            per_day_loop,
            batched_days,
            lambda: runner.evaluate_days(
                model, features, labels, noise_models, parameter_sets=parameter_sets
            ),
        )
    finally:
        runner.close()
    speedup = loop_seconds / batched_seconds
    runner_speedup = loop_seconds / runner_seconds
    print(
        f"\nBatched multi-day sweep — {NUM_DAYS} days x {NUM_SAMPLES} samples\n"
        f"  per-day loop      {loop_seconds * 1000:8.1f} ms\n"
        f"  batched days      {batched_seconds * 1000:8.1f} ms ({speedup:.2f}x)\n"
        f"  runner (pool)     {runner_seconds * 1000:8.1f} ms ({runner_speedup:.2f}x)"
    )
    _maybe_write_json(
        {
            "multi_day": {
                "days": NUM_DAYS,
                "samples": NUM_SAMPLES,
                "per_day_loop_ms": loop_seconds * 1000,
                "batched_ms": batched_seconds * 1000,
                "runner_pool_ms": runner_seconds * 1000,
                "batched_speedup": speedup,
                "runner_speedup": runner_speedup,
            }
        }
    )
    # Day stacking fuses the whole history into one walk over a
    # ``(days * samples, dim, dim)`` super-batch, so the day axis now has
    # to *win*, not just avoid regressing; the warm pool must at least
    # keep that win.  The committed BENCH_runtime.json floors (gated by
    # scripts/bench_gate.py) hold the strict > 1x line; the in-test bars
    # sit lower only to absorb shared-host drift in plain pytest runs.
    assert speedup >= 0.9, f"day-stacked path regressed: {speedup:.2f}x vs loop"
    assert runner_speedup >= 0.8, (
        f"pool runner regressed: {runner_speedup:.2f}x vs loop"
    )
