"""Tests for the ADMM noise-aware compression algorithm."""

import numpy as np
import pytest

from repro.core import (
    CompressionConfig,
    CompressionTable,
    NoiseAgnosticCompressor,
    NoiseAwareCompressor,
)
from repro.datasets import load_mnist4
from repro.exceptions import TrainingError
from repro.qnn import QNNModel
from repro.transpiler import belem_coupling


@pytest.fixture(scope="module")
def task():
    return load_mnist4(num_samples=100, seed=4)


@pytest.fixture()
def fast_config():
    return CompressionConfig(
        admm_iterations=1,
        theta_epochs=1,
        finetune_epochs=1,
        target_fraction=0.5,
        batch_size=16,
        seed=0,
    )


def test_config_validation():
    with pytest.raises(TrainingError):
        CompressionConfig(admm_iterations=0)
    with pytest.raises(TrainingError):
        CompressionConfig(rho=0.0)


def test_noise_aware_compression_requires_calibration(fast_config, task, model):
    compressor = NoiseAwareCompressor(fast_config)
    with pytest.raises(TrainingError):
        compressor.compress(model, task.train_features[:32], task.train_labels[:32])


def test_compression_requires_device_binding(fast_config, task, calibration):
    unbound = QNNModel.create(4, 16, 4, repeats=1, seed=3)
    compressor = NoiseAwareCompressor(fast_config)
    with pytest.raises(TrainingError):
        compressor.compress(
            unbound, task.train_features[:32], task.train_labels[:32], calibration=calibration
        )
    # Providing a coupling map binds on the fly.
    result = compressor.compress(
        unbound,
        task.train_features[:32],
        task.train_labels[:32],
        calibration=calibration,
        coupling=belem_coupling(),
    )
    assert result.parameters.shape == (unbound.num_parameters,)


def test_compression_snaps_masked_parameters_to_levels(fast_config, task, model, calibration):
    compressor = NoiseAwareCompressor(fast_config)
    result = compressor.compress(
        model, task.train_features[:32], task.train_labels[:32], calibration=calibration
    )
    table = CompressionTable()
    masked = result.mask.astype(bool)
    assert masked.sum() == result.num_compressed
    assert result.num_compressed >= int(0.5 * model.num_parameters)
    for value in result.parameters[masked]:
        _, distance = table.nearest_level(value)
        assert distance < 1e-9
    # Unmasked parameters were fine-tuned and are generally off-level.
    assert result.compression_fraction == pytest.approx(masked.mean())


def test_compression_shortens_physical_circuit(fast_config, task, model, calibration):
    compressor = NoiseAwareCompressor(fast_config)
    result = compressor.compress(
        model, task.train_features[:32], task.train_labels[:32], calibration=calibration
    )
    assert result.physical_length_after < result.physical_length_before


def test_compression_does_not_mutate_model_parameters(fast_config, task, model, calibration):
    before = model.parameters.copy()
    NoiseAwareCompressor(fast_config).compress(
        model, task.train_features[:32], task.train_labels[:32], calibration=calibration
    )
    assert np.allclose(model.parameters, before)


def test_noise_agnostic_compressor_works_without_calibration(fast_config, task, model):
    compressor = NoiseAgnosticCompressor(fast_config)
    assert compressor.config.noise_aware is False
    result = compressor.compress(model, task.train_features[:32], task.train_labels[:32])
    assert result.calibration is None
    assert result.physical_length_after <= result.physical_length_before


def test_noise_aware_mask_prefers_noisy_couplers(task, model, calibration):
    """With a moderate fraction, the noise-aware mask should include a larger
    share of two-qubit (coupler) gates than the noise-agnostic mask."""
    config = CompressionConfig(
        admm_iterations=1, theta_epochs=1, finetune_epochs=0, target_fraction=0.4, seed=0
    )
    aware = NoiseAwareCompressor(config).compress(
        model, task.train_features[:32], task.train_labels[:32], calibration=calibration
    )
    agnostic = NoiseAgnosticCompressor(config).compress(
        model, task.train_features[:32], task.train_labels[:32], calibration=calibration
    )
    two_qubit_refs = np.array(
        [len(model.transpiled.ref_physical_qubits[r]) == 2 for r in range(model.num_parameters)]
    )
    aware_share = aware.mask[two_qubit_refs].mean()
    agnostic_share = agnostic.mask[two_qubit_refs].mean()
    assert aware_share >= agnostic_share


def test_compression_loss_history_recorded(fast_config, task, model, calibration):
    result = NoiseAwareCompressor(fast_config).compress(
        model, task.train_features[:32], task.train_labels[:32], calibration=calibration
    )
    assert len(result.loss_history) >= fast_config.admm_iterations
