"""Tests for the offline constructor, online manager, QuCAD framework, and baselines."""

import numpy as np
import pytest

from repro.calibration import CalibrationHistory, generate_belem_history
from repro.core import (
    CompressionConfig,
    ModelRepository,
    NoiseAwareCompressor,
    QuCAD,
    QuCADConfig,
    RepositoryConstructor,
    RepositoryManager,
    make_method,
    noise_aware_train,
    train_noise_free,
)
from repro.core.baselines import MethodContext, TABLE1_METHODS
from repro.datasets import load_mnist4
from repro.exceptions import RepositoryError, TrainingError
from repro.qnn import QNNModel, TrainConfig
from repro.transpiler import belem_coupling

FAST_COMPRESSION = CompressionConfig(
    admm_iterations=1, theta_epochs=1, finetune_epochs=1, target_fraction=0.5, seed=0
)


@pytest.fixture(scope="module")
def task():
    return load_mnist4(num_samples=100, seed=4)


@pytest.fixture(scope="module")
def short_history():
    return generate_belem_history(8, seed=3)


@pytest.fixture(scope="module")
def trained_model(task, short_history):
    model = QNNModel.create(4, 16, 4, repeats=1, seed=11)
    model.bind_to_device(belem_coupling(), calibration=short_history[0])
    train_noise_free(model, task.train_features[:48], task.train_labels[:48], TrainConfig(epochs=3, seed=0))
    return model


# ---------------------------------------------------------------------------
# Training entry points
# ---------------------------------------------------------------------------
def test_noise_aware_train_requires_binding(task, short_history):
    unbound = QNNModel.create(4, 16, 4, repeats=1, seed=1)
    with pytest.raises(TrainingError):
        noise_aware_train(unbound, task.train_features[:16], task.train_labels[:16], short_history[0])


def test_noise_aware_train_changes_parameters(trained_model, task, short_history):
    result = noise_aware_train(
        trained_model,
        task.train_features[:32],
        task.train_labels[:32],
        short_history[0],
        config=TrainConfig(epochs=1, seed=0),
        update_model=False,
    )
    assert not np.allclose(result.parameters, trained_model.parameters)


# ---------------------------------------------------------------------------
# Offline constructor
# ---------------------------------------------------------------------------
def test_constructor_builds_repository(trained_model, task, short_history):
    constructor = RepositoryConstructor(
        compressor=NoiseAwareCompressor(FAST_COMPRESSION),
        num_clusters=2,
        eval_test_samples=16,
        train_samples=32,
        seed=0,
    )
    report = constructor.build(trained_model, task, short_history)
    assert report.num_models >= 1
    assert report.repository.threshold > 0
    assert report.day_accuracies.shape == (len(short_history),)
    assert all(entry.source == "offline" for entry in report.repository.entries)
    assert len(report.compression_results) == report.num_models


def test_constructor_rejects_empty_history(trained_model, task):
    constructor = RepositoryConstructor(num_clusters=2)
    with pytest.raises(RepositoryError):
        constructor.build(trained_model, task, CalibrationHistory([]))


def test_constructor_validation():
    with pytest.raises(RepositoryError):
        RepositoryConstructor(num_clusters=0)


# ---------------------------------------------------------------------------
# Online manager
# ---------------------------------------------------------------------------
def _manager(trained_model, task, weights, threshold):
    repository = ModelRepository(weights=weights, threshold=threshold)
    return RepositoryManager(
        repository=repository,
        compressor=NoiseAwareCompressor(FAST_COMPRESSION),
        model=trained_model,
        train_features=task.train_features[:32],
        train_labels=task.train_labels[:32],
    )


def test_manager_bootstrap_then_reuse(trained_model, task, short_history):
    vector_size = short_history[0].to_vector().shape[0]
    manager = _manager(trained_model, task, np.ones(vector_size), threshold=0.0)
    first = manager.adapt(short_history[0])
    assert first.action == "bootstrap"
    assert manager.stats.optimizations == 1
    # The same calibration again must be served from the repository.
    second = manager.adapt(short_history[0])
    assert second.action == "reuse"
    assert manager.stats.optimizations == 1
    assert np.allclose(first.parameters, second.parameters)


def test_manager_creates_new_entry_for_distant_calibration(trained_model, task, short_history):
    vector_size = short_history[0].to_vector().shape[0]
    manager = _manager(trained_model, task, np.ones(vector_size), threshold=1e-6)
    manager.repository.threshold = 1e-6
    manager.adapt(short_history[0])
    far = short_history[0]
    # Scale the calibration up substantially so it exceeds the tiny threshold.
    from repro.calibration import CalibrationSnapshot

    scaled = CalibrationSnapshot.from_vector(
        far.to_vector() * 3.0, far, date="scaled"
    )
    decision = manager.adapt(scaled)
    assert decision.action == "new"
    assert len(manager.repository) == 2


def test_manager_reports_invalid_cluster(trained_model, task, short_history):
    vector_size = short_history[0].to_vector().shape[0]
    repository = ModelRepository(weights=np.ones(vector_size), threshold=1e9)
    repository.add(
        __import__("repro.core.repository", fromlist=["RepositoryEntry"]).RepositoryEntry(
            parameters=np.zeros(trained_model.num_parameters),
            calibration_vector=short_history[0].to_vector(),
            mean_accuracy=0.2,
            valid=False,
            label="bad_cluster",
        )
    )
    manager = RepositoryManager(
        repository=repository,
        compressor=NoiseAwareCompressor(FAST_COMPRESSION),
        model=trained_model,
        train_features=task.train_features[:32],
        train_labels=task.train_labels[:32],
        accuracy_requirement=0.5,
    )
    decision = manager.adapt(short_history[1])
    assert decision.action == "invalid"
    assert decision.failure_report is not None
    assert manager.stats.invalid_matches == 1


# ---------------------------------------------------------------------------
# QuCAD framework
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def qucad_config():
    return QuCADConfig(
        compression=FAST_COMPRESSION,
        num_clusters=2,
        eval_test_samples=16,
        train_samples=32,
        seed=0,
    )


def test_qucad_offline_then_online(trained_model, task, short_history, qucad_config):
    offline, online = short_history.split(6)
    qucad = QuCAD(trained_model, task, belem_coupling(), config=qucad_config)
    report = qucad.offline(offline)
    assert report.num_models >= 1
    decisions = qucad.adapt_over(online)
    assert len(decisions) == len(online)
    assert all(d.parameters.shape == (trained_model.num_parameters,) for d in decisions)
    assert qucad.manager.stats.steps == len(online)


def test_qucad_without_offline_bootstraps(trained_model, task, short_history, qucad_config):
    qucad = QuCAD(trained_model, task, belem_coupling(), config=qucad_config)
    with pytest.raises(RepositoryError):
        _ = qucad.manager
    decision = qucad.online(short_history[0])
    assert decision.action == "bootstrap"
    again = qucad.online(short_history[0])
    assert again.action == "reuse"


def test_qucad_accepts_target_and_honours_its_calibration(task, short_history, qucad_config):
    """A Target pins the compilation snapshot for an unbound model."""
    from repro.transpiler import PassManager, Target, legacy_transpile

    model = QNNModel.create(num_qubits=4, num_features=16, num_classes=4, repeats=1, seed=6)
    pinned = short_history[3]
    manager = PassManager()
    qucad = QuCAD(
        model,
        task,
        Target(coupling=belem_coupling(), calibration=pinned),
        config=qucad_config,
        pass_manager=manager,
    )
    assert qucad.coupling.name == "ibmq_belem"
    qucad.online(short_history[0])  # binds the model on first use
    expected = legacy_transpile(model.ansatz, belem_coupling(), calibration=pinned)
    assert (
        model.transpiled.initial_layout.logical_to_physical
        == expected.initial_layout.logical_to_physical
    )
    assert manager.stats.compile_calls >= 1
    assert qucad.compile_stats()["compile_calls"] == manager.stats.compile_calls


# ---------------------------------------------------------------------------
# Baseline methods
# ---------------------------------------------------------------------------
def test_table1_method_registry():
    names = [cls.name for cls in TABLE1_METHODS]
    assert names == [
        "baseline",
        "noise_aware_train_once",
        "noise_aware_train_everyday",
        "one_time_compression",
        "qucad_without_offline",
        "qucad",
    ]
    with pytest.raises(TrainingError):
        make_method("gradient_free_magic")


def test_methods_produce_parameters_and_count_optimizations(trained_model, task, short_history, qucad_config):
    offline, online = short_history.split(6)
    context = MethodContext(
        base_model=trained_model,
        dataset=task,
        coupling=belem_coupling(),
        offline_history=offline,
        compression_config=FAST_COMPRESSION,
        retrain_config=TrainConfig(epochs=1, seed=0),
        qucad_config=qucad_config,
        train_samples=32,
        seed=0,
    )
    expectations = {
        "baseline": 0,
        "noise_aware_train_once": 1,
        "noise_aware_train_everyday": 2,
        "one_time_compression": 1,
    }
    for name, expected_runs in expectations.items():
        method = make_method(name)
        method.prepare(context)
        for snapshot in online:
            parameters = method.parameters_for_day(snapshot)
            assert parameters.shape == (trained_model.num_parameters,)
        assert method.optimization_runs == expected_runs, name


def test_method_requires_prepare(trained_model, short_history):
    method = make_method("baseline")
    with pytest.raises(TrainingError):
        method.parameters_for_day(short_history[0])


def test_qucad_rejects_non_statevector_training_backend(task):
    """The backend knob selects the training backend; only statevector works."""
    coupling = belem_coupling()
    model = QNNModel.create(num_qubits=4, num_features=16, num_classes=4, seed=0)
    for name in ("density_matrix", "noisy", "trajectory"):
        with pytest.raises(RepositoryError, match="statevector"):
            QuCAD(model, task, coupling, QuCADConfig(backend=name))
    qucad = QuCAD(model, task, coupling, QuCADConfig(backend="ideal"))
    assert qucad.backend.name == "statevector"
    assert qucad.noisy_backend.engine is qucad.engine
