"""Tests for the compression table and noise-aware mask generation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CompressionTable, DEFAULT_LEVELS, apply_mask, build_mask, gate_noise_rates
from repro.exceptions import TrainingError


def test_default_levels_are_quarter_turns():
    assert DEFAULT_LEVELS == (0.0, np.pi / 2, np.pi, 3 * np.pi / 2)


def test_nearest_level_basic_cases():
    table = CompressionTable()
    target, distance = table.nearest_level(0.1)
    assert target == pytest.approx(0.0)
    assert distance == pytest.approx(0.1)
    target, distance = table.nearest_level(np.pi - 0.2)
    assert target == pytest.approx(np.pi)
    assert distance == pytest.approx(0.2)


def test_nearest_level_wraps_to_upper_period_boundary():
    table = CompressionTable()
    target, distance = table.nearest_level(2 * np.pi - 0.05)
    assert target == pytest.approx(2 * np.pi)
    assert distance == pytest.approx(0.05)


def test_nearest_level_preserves_winding_for_negative_angles():
    table = CompressionTable()
    target, distance = table.nearest_level(-0.1)
    assert target == pytest.approx(0.0)
    assert distance == pytest.approx(0.1)
    target, _ = table.nearest_level(-np.pi + 0.1)
    assert target == pytest.approx(-np.pi)


def test_vectorized_nearest_levels():
    table = CompressionTable()
    params = np.array([0.1, 1.0, np.pi, 5.0])
    targets, distances = table.nearest_levels(params)
    assert targets.shape == params.shape
    assert np.all(distances >= 0)
    assert np.all(distances <= np.pi / 4 + 1e-9)


def test_compression_fraction_and_is_compressed():
    table = CompressionTable()
    assert table.is_compressed(np.pi)
    assert not table.is_compressed(1.0)
    params = np.array([0.0, np.pi / 2, 1.0, 2.0])
    assert table.compression_fraction(params) == pytest.approx(0.5)
    assert table.compression_fraction(np.array([])) == 0.0


def test_table_validation():
    with pytest.raises(TrainingError):
        CompressionTable(levels=())
    with pytest.raises(TrainingError):
        CompressionTable(levels=(7.0,))


@settings(max_examples=50, deadline=None)
@given(theta=st.floats(-10 * np.pi, 10 * np.pi, allow_nan=False))
def test_nearest_level_distance_bounded_by_half_spacing(theta):
    """Property: the snap distance never exceeds half the level spacing."""
    table = CompressionTable()
    target, distance = table.nearest_level(theta)
    assert distance <= np.pi / 4 + 1e-9
    assert abs((target - theta)) == pytest.approx(distance, abs=1e-9)


# ---------------------------------------------------------------------------
# Masks
# ---------------------------------------------------------------------------
def test_build_mask_with_target_fraction_selects_top_priority():
    table = CompressionTable()
    parameters = np.array([0.05, 1.0, np.pi - 0.05, 0.7])
    noise = np.array([0.01, 0.01, 0.0001, 0.0001])
    tables = build_mask(parameters, table, noise=noise, target_fraction=0.25)
    # Highest priority: parameter 0 (close to level AND noisy).
    assert tables.mask[0] == 1
    assert tables.num_compressed == 1


def test_build_mask_noise_agnostic_prefers_smallest_distance():
    table = CompressionTable()
    parameters = np.array([0.3, np.pi / 2 + 0.01, 1.0])
    tables = build_mask(parameters, table, noise=None, target_fraction=1 / 3)
    assert tables.mask[1] == 1
    assert tables.mask.sum() == 1


def test_build_mask_with_absolute_threshold():
    table = CompressionTable()
    parameters = np.array([0.1, 0.7])
    noise = np.array([0.02, 0.02])
    tables = build_mask(parameters, table, noise=noise, threshold=0.1)
    assert tables.threshold == pytest.approx(0.1)
    assert tables.mask[0] == 1  # priority 0.02/0.1 = 0.2 >= 0.1
    assert tables.mask[1] == 0  # priority 0.02/0.7 < 0.1


def test_build_mask_zero_fraction_masks_nothing():
    table = CompressionTable()
    tables = build_mask(np.array([0.1, 0.2]), table, target_fraction=0.0)
    assert tables.num_compressed == 0


def test_build_mask_validation():
    table = CompressionTable()
    with pytest.raises(TrainingError):
        build_mask(np.array([[0.1]]), table)
    with pytest.raises(TrainingError):
        build_mask(np.array([0.1]), table, noise=np.array([0.1, 0.2]))
    with pytest.raises(TrainingError):
        build_mask(np.array([0.1]), table, threshold=None, target_fraction=None)
    with pytest.raises(TrainingError):
        build_mask(np.array([0.1]), table, target_fraction=1.5)


def test_apply_mask_snaps_only_masked_parameters():
    table = CompressionTable()
    parameters = np.array([0.1, 1.0])
    tables = build_mask(parameters, table, target_fraction=0.5)
    snapped = apply_mask(parameters, tables)
    assert snapped[0] == pytest.approx(0.0)
    assert snapped[1] == pytest.approx(1.0)


def test_gate_noise_rates_uses_physical_association(model, calibration):
    rates = gate_noise_rates(
        model.num_parameters, model.transpiled.ref_physical_qubits, calibration
    )
    assert rates.shape == (model.num_parameters,)
    assert np.all(rates > 0)
    # Two-qubit gates should read coupler (CX) error rates, which are larger
    # than single-qubit gate errors for this backend.
    two_qubit_refs = [
        ref for ref, qubits in model.transpiled.ref_physical_qubits.items() if len(qubits) == 2
    ]
    single_refs = [
        ref for ref, qubits in model.transpiled.ref_physical_qubits.items() if len(qubits) == 1
    ]
    assert rates[two_qubit_refs].mean() > rates[single_refs].mean()


def test_gate_noise_rates_requires_association(calibration):
    with pytest.raises(TrainingError):
        gate_noise_rates(3, {0: (0,)}, calibration)
