"""Tests for the performance-aware clustering and the model repository."""

import numpy as np
import pytest

from repro.core import ModelRepository, RepositoryEntry, cluster_calibrations
from repro.exceptions import RepositoryError


def _two_regime_data(seed=0):
    """Calibration vectors drawn from two well-separated noise regimes."""
    rng = np.random.default_rng(seed)
    low = rng.normal(0.01, 0.001, size=(20, 4)).clip(1e-4)
    high = rng.normal(0.05, 0.002, size=(20, 4)).clip(1e-4)
    calibrations = np.vstack([low, high])
    accuracies = np.concatenate([np.full(20, 0.85), np.full(20, 0.35)])
    accuracies = accuracies + rng.normal(0, 0.01, size=40)
    return calibrations, accuracies


@pytest.mark.parametrize("metric", ["weighted_l1", "l2"])
def test_clustering_separates_regimes(metric):
    calibrations, accuracies = _two_regime_data()
    result = cluster_calibrations(calibrations, accuracies, k=2, metric=metric, seed=1)
    labels = result.labels
    # The two regimes should end up in different clusters.
    assert len(set(labels[:20])) == 1
    assert len(set(labels[20:])) == 1
    assert labels[0] != labels[-1]
    assert result.cluster_sizes.sum() == 40


def test_clustering_reports_cluster_accuracy_and_threshold():
    calibrations, accuracies = _two_regime_data()
    result = cluster_calibrations(calibrations, accuracies, k=2, seed=1)
    assert result.cluster_mean_accuracy is not None
    means = sorted(result.cluster_mean_accuracy)
    assert means[0] < 0.5 < means[1]
    assert result.threshold > 0
    assert result.wsae >= 0


def test_weighted_l1_uses_performance_weights():
    rng = np.random.default_rng(3)
    days = 50
    relevant = np.concatenate([rng.uniform(0.01, 0.02, 25), rng.uniform(0.06, 0.08, 25)])
    irrelevant = rng.uniform(0.01, 0.08, days)
    calibrations = np.stack([relevant, irrelevant], axis=1)
    accuracies = np.where(relevant < 0.04, 0.85, 0.3) + rng.normal(0, 0.01, days)
    result = cluster_calibrations(calibrations, accuracies, k=2, metric="weighted_l1", seed=0)
    assert result.weights[0] > result.weights[1]
    # Clusters should split along the relevant dimension.
    low_cluster = result.labels[:25]
    high_cluster = result.labels[25:]
    assert len(set(low_cluster)) == 1 and len(set(high_cluster)) == 1
    assert low_cluster[0] != high_cluster[0]


def test_clustering_k_clipped_to_sample_count():
    calibrations = np.random.default_rng(0).uniform(size=(3, 2))
    result = cluster_calibrations(calibrations, None, k=10, seed=0)
    assert result.num_clusters == 3


def test_clustering_validation():
    with pytest.raises(RepositoryError):
        cluster_calibrations(np.zeros((0, 3)), None, k=2)
    with pytest.raises(RepositoryError):
        cluster_calibrations(np.zeros((5, 3)), np.zeros(4), k=2)
    with pytest.raises(RepositoryError):
        cluster_calibrations(np.zeros((5, 3)), None, k=0)
    with pytest.raises(RepositoryError):
        cluster_calibrations(np.zeros((5, 3)), None, k=2, metric="cosine")


# ---------------------------------------------------------------------------
# Repository
# ---------------------------------------------------------------------------
def _entry(vector, accuracy=0.8, label="entry"):
    return RepositoryEntry(
        parameters=np.arange(4, dtype=float),
        calibration_vector=np.asarray(vector, dtype=float),
        mean_accuracy=accuracy,
        label=label,
    )


def test_repository_add_and_match():
    repository = ModelRepository(weights=np.ones(3), threshold=0.5)
    repository.add(_entry([0.1, 0.1, 0.1], label="low"))
    repository.add(_entry([0.5, 0.5, 0.5], label="high"))
    match = repository.match(np.array([0.12, 0.1, 0.1]))
    assert match.entry.label == "low"
    assert match.distance == pytest.approx(0.02)
    assert len(repository) == 2


def test_repository_rejects_mismatched_vectors():
    repository = ModelRepository(weights=np.ones(3), threshold=0.5)
    with pytest.raises(RepositoryError):
        repository.add(_entry([0.1, 0.2]))


def test_repository_match_empty_raises():
    repository = ModelRepository(weights=np.ones(2), threshold=0.1)
    with pytest.raises(RepositoryError):
        repository.match(np.zeros(2))


def test_repository_negative_threshold_rejected():
    with pytest.raises(RepositoryError):
        ModelRepository(weights=np.ones(2), threshold=-1.0)


def test_repository_weighted_distance_respects_weights():
    repository = ModelRepository(weights=np.array([1.0, 0.0]), threshold=1.0)
    repository.add(_entry([0.0, 0.0]))
    distances = repository.distances_to(np.array([0.0, 100.0]))
    assert distances[0] == pytest.approx(0.0)


def test_repository_json_round_trip(tmp_path):
    repository = ModelRepository(weights=np.array([1.0, 2.0]), threshold=0.3)
    repository.add(_entry([0.1, 0.2], accuracy=0.9, label="cluster_0"))
    path = tmp_path / "repository.json"
    repository.to_json(path)
    loaded = ModelRepository.from_json(path)
    assert loaded.threshold == pytest.approx(0.3)
    assert np.allclose(loaded.weights, [1.0, 2.0])
    assert len(loaded) == 1
    assert loaded.entries[0].label == "cluster_0"
    assert np.allclose(loaded.entries[0].parameters, np.arange(4))
