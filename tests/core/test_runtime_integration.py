"""QuCAD's runtime integration: adapt_sequence, evaluate_over, refresh."""

from __future__ import annotations

import numpy as np
import pytest

from repro.calibration import generate_belem_history
from repro.core import QuCAD, QuCADConfig
from repro.core.admm import CompressionConfig
from repro.datasets import load_mnist4
from repro.qnn import QNNModel, evaluate_noisy
from repro.runtime import ExperimentRunner
from repro.simulator import NoiseModel
from repro.transpiler import belem_coupling


@pytest.fixture(scope="module")
def qucad():
    history = generate_belem_history(8, seed=31)
    model = QNNModel.create(num_qubits=4, num_features=16, num_classes=4, repeats=1, seed=6)
    model.bind_to_device(belem_coupling(), calibration=history[0])
    dataset = load_mnist4(num_samples=80, seed=5)
    config = QuCADConfig(
        compression=CompressionConfig(
            admm_iterations=1, theta_epochs=1, finetune_epochs=1, target_fraction=0.5
        ),
        num_clusters=2,
        train_samples=24,
        eval_test_samples=12,
        seed=6,
    )
    framework = QuCAD(model, dataset, belem_coupling(), config=config)
    offline, online = history.split(5)
    framework.offline(offline)
    return framework, online, dataset


def test_adapt_over_delegates_to_manager_sequence(qucad):
    framework, online, _ = qucad
    decisions = framework.adapt_over(online)
    assert len(decisions) == len(online)
    assert all(decision.action in {"reuse", "new", "bootstrap", "invalid"} for decision in decisions)


def test_evaluate_over_matches_sequential_evaluation(qucad):
    framework, online, dataset = qucad
    subset = dataset.subsample(num_test=10, seed=6)
    decisions, accuracies = framework.evaluate_over(
        online,
        subset.test_features,
        subset.test_labels,
        runner=ExperimentRunner(mode="serial"),
    )
    assert len(decisions) == len(online) == len(accuracies)
    # Decisions are reused from the (stateful) repository; evaluating them
    # independently must reproduce the runner's numbers exactly.
    for snapshot, decision, accuracy in zip(online, decisions, accuracies):
        reference = evaluate_noisy(
            framework.model,
            subset.test_features,
            subset.test_labels,
            NoiseModel.from_calibration(snapshot),
            parameters=decision.parameters,
        ).accuracy
        assert accuracy == reference


def test_refresh_entry_accuracies_populates_entries(qucad):
    framework, _, dataset = qucad
    subset = dataset.subsample(num_test=10, seed=6)
    manager = framework.manager
    accuracies = manager.refresh_entry_accuracies(
        subset.test_features,
        subset.test_labels,
        runner=ExperimentRunner(mode="serial"),
    )
    entries = [e for e in manager.repository.entries if e.calibration is not None]
    assert len(accuracies) == len(entries)
    for entry, accuracy in zip(entries, accuracies):
        assert entry.mean_accuracy == float(accuracy)
        assert 0.0 <= entry.mean_accuracy <= 1.0
