"""End-to-end integration tests exercising the full QuCAD pipeline.

These use the TEST_SCALE settings (a handful of days, tiny subsets) so the
whole flow — synthetic history, base training, offline repository
construction, online adaptation, longitudinal evaluation — runs in seconds
while touching every subsystem.
"""

import numpy as np
import pytest

from repro.core import NoiseAwareCompressor, make_method
from repro.experiments import TEST_SCALE, prepare_experiment, run_longitudinal
from repro.qnn.evaluation import evaluate_ideal, evaluate_noisy
from repro.simulator import NoiseModel


@pytest.fixture(scope="module")
def setup():
    return prepare_experiment("mnist4", scale=TEST_SCALE)


def test_setup_produces_trained_bound_model(setup):
    assert setup.base_model.transpiled is not None
    accuracy = evaluate_ideal(
        setup.base_model, setup.dataset.test_features, setup.dataset.test_labels
    ).accuracy
    assert accuracy > 0.3  # clearly better than random guessing (0.25)
    assert len(setup.offline_history) == TEST_SCALE.offline_days
    assert len(setup.online_history) == TEST_SCALE.online_days


def test_noisy_evaluation_runs_on_every_online_day(setup):
    subset = setup.eval_subset()
    accuracies = [
        evaluate_noisy(
            setup.base_model, subset.test_features, subset.test_labels, noise_model, shots=256, seed=1
        ).accuracy
        for noise_model in setup.noise_models()
    ]
    assert len(accuracies) == TEST_SCALE.online_days
    assert all(0.0 <= a <= 1.0 for a in accuracies)


def test_compression_adapts_model_without_breaking_it(setup):
    subset = setup.dataset.subsample(num_train=32, num_test=24, seed=0)
    day = setup.online_history[0]
    compressor = NoiseAwareCompressor(TEST_SCALE.compression)
    result = compressor.compress(
        setup.base_model, subset.train_features, subset.train_labels, calibration=day
    )
    assert result.physical_length_after <= result.physical_length_before
    noisy = evaluate_noisy(
        setup.base_model,
        subset.test_features,
        subset.test_labels,
        NoiseModel.from_calibration(day),
        parameters=result.parameters,
        shots=512,
        seed=0,
    )
    assert noisy.accuracy >= 0.25 - 1e-9  # no catastrophic failure


def test_longitudinal_harness_compares_methods(setup):
    methods = [make_method("baseline"), make_method("qucad")]
    result = run_longitudinal(setup, methods, num_days=2, shots=256)
    assert {run.method_name for run in result.runs} == {"baseline", "qucad"}
    baseline = result.run_for("baseline")
    qucad = result.run_for("qucad")
    assert baseline.daily_accuracy.shape == (2,)
    assert qucad.daily_accuracy.shape == (2,)
    assert baseline.optimization_runs == 0
    rows = result.summary_rows()
    assert any(row["method"] == "qucad" and "mean_accuracy_vs_baseline" in row for row in rows)


def test_qucad_reuses_repository_entries_across_days(setup):
    """Across several online days QuCAD should optimize far fewer times than
    the number of days (the Fig. 7 efficiency mechanism)."""
    method = make_method("qucad")
    method.prepare(setup.method_context())
    for snapshot in setup.online_history:
        method.parameters_for_day(snapshot)
    assert method.optimization_runs < len(setup.online_history)
