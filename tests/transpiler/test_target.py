"""Target digests: content addressing for the pipeline's artifact caches."""

from repro.calibration import CalibrationSnapshot
from repro.transpiler import (
    CouplingMap,
    Target,
    belem_coupling,
    calibration_digest,
    coupling_digest,
    jakarta_coupling,
)


def _snapshot(scale: float = 1.0) -> CalibrationSnapshot:
    return CalibrationSnapshot(
        num_qubits=5,
        single_qubit_error={q: 1e-4 * scale for q in range(5)},
        two_qubit_error={(0, 1): 1e-2 * scale, (1, 2): 2e-2 * scale},
        readout_error={q: 3e-2 * scale for q in range(5)},
        date="2022-01-01",
    )


def test_coupling_digest_ignores_name_but_not_structure():
    renamed = CouplingMap(num_qubits=5, edges=((0, 1), (1, 2), (1, 3), (3, 4)), name="other")
    assert coupling_digest(belem_coupling()) == coupling_digest(renamed)
    assert coupling_digest(belem_coupling()) != coupling_digest(jakarta_coupling())


def test_calibration_digest_ignores_date_but_not_rates():
    first = _snapshot()
    relabeled = CalibrationSnapshot.from_vector(first.to_vector(), first, date="2023-09-09")
    assert calibration_digest(first) == calibration_digest(relabeled)
    assert calibration_digest(first) != calibration_digest(_snapshot(scale=1.5))
    assert calibration_digest(None) != calibration_digest(first)


def test_with_calibration_shares_structural_digest_only():
    base = Target(coupling=belem_coupling(), calibration=_snapshot())
    refreshed = base.with_calibration(_snapshot(scale=2.0))
    assert base.structural_digest == refreshed.structural_digest
    assert base.calibration_key != refreshed.calibration_key
    assert base.digest != refreshed.digest
    assert refreshed.coupling is base.coupling


def test_target_rejects_unsupported_basis():
    import pytest

    from repro.exceptions import TranspilerError

    with pytest.raises(TranspilerError, match="basis"):
        Target(coupling=belem_coupling(), basis=("rz", "ry", "cx"))


def test_target_digest_stable_across_instances():
    first = Target(coupling=belem_coupling(), calibration=_snapshot())
    second = Target(coupling=belem_coupling(), calibration=_snapshot())
    assert first.digest == second.digest
    assert first.num_qubits == 5
    assert first.name == "ibmq_belem"
