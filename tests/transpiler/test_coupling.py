"""Tests for coupling maps and device topologies."""

import pytest

from repro.exceptions import TranspilerError
from repro.transpiler import (
    CouplingMap,
    belem_coupling,
    fully_connected_coupling,
    get_coupling,
    jakarta_coupling,
    linear_coupling,
)


def test_belem_topology():
    coupling = belem_coupling()
    assert coupling.num_qubits == 5
    assert coupling.is_adjacent(0, 1)
    assert coupling.is_adjacent(3, 4)
    assert not coupling.is_adjacent(0, 4)
    assert coupling.distance(0, 4) == 3


def test_jakarta_topology():
    coupling = jakarta_coupling()
    assert coupling.num_qubits == 7
    assert coupling.is_adjacent(3, 5)
    assert coupling.distance(0, 6) == 4


def test_shortest_path_endpoints():
    coupling = belem_coupling()
    path = coupling.shortest_path(0, 4)
    assert path[0] == 0 and path[-1] == 4
    assert len(path) == 4


def test_neighbors_sorted():
    assert belem_coupling().neighbors(1) == [0, 2, 3]


def test_connected_subsets_of_belem():
    subsets = belem_coupling().connected_subsets(4)
    assert (0, 1, 2, 3) in subsets
    assert (0, 1, 3, 4) in subsets
    assert (0, 2, 3, 4) not in subsets


def test_connected_subsets_size_validation():
    with pytest.raises(TranspilerError):
        belem_coupling().connected_subsets(0)
    with pytest.raises(TranspilerError):
        belem_coupling().connected_subsets(9)


def test_linear_and_full_couplings():
    line = linear_coupling(4)
    assert line.distance(0, 3) == 3
    full = fully_connected_coupling(4)
    assert full.distance(0, 3) == 1


def test_coupling_rejects_disconnected_graph():
    with pytest.raises(TranspilerError):
        CouplingMap(num_qubits=4, edges=((0, 1),))


def test_coupling_rejects_self_loops_and_bad_edges():
    with pytest.raises(TranspilerError):
        CouplingMap(num_qubits=2, edges=((0, 0),))
    with pytest.raises(TranspilerError):
        CouplingMap(num_qubits=2, edges=((0, 5),))


def test_get_coupling_by_name():
    assert get_coupling("belem").num_qubits == 5
    assert get_coupling("ibm_jakarta").num_qubits == 7
    with pytest.raises(TranspilerError):
        get_coupling("osaka")
