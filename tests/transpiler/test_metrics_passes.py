"""Tests for physical-circuit metrics and the transpile() entry point."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, build_qucad_ansatz
from repro.exceptions import TranspilerError
from repro.simulator import NoiseModel
from repro.transpiler import (
    belem_coupling,
    compression_ratio,
    expected_error_cost,
    physical_metrics,
    to_basis,
    transpile,
)


def test_physical_metrics_counts():
    circuit = QuantumCircuit(2)
    circuit.rz(0.3, 0)
    circuit.sx(0)
    circuit.x(1)
    circuit.cx(0, 1)
    metrics = physical_metrics(circuit)
    assert metrics.virtual_gates == 1
    assert metrics.single_qubit_pulses == 2
    assert metrics.two_qubit_gates == 1
    assert metrics.noisy_operations == 3
    assert metrics.physical_length == 3
    assert metrics.total_gates == 4


def test_compression_ratio():
    circuit = QuantumCircuit(1)
    circuit.sx(0)
    circuit.sx(0)
    before = physical_metrics(circuit)
    after = physical_metrics(QuantumCircuit(1).sx(0))
    assert compression_ratio(before, after) == pytest.approx(0.5)
    empty = physical_metrics(QuantumCircuit(1))
    assert compression_ratio(empty, empty) == 0.0


def test_expected_error_cost_sums_rates():
    circuit = QuantumCircuit(2)
    circuit.sx(0)
    circuit.cx(0, 1)
    noise = NoiseModel(
        num_qubits=2,
        single_qubit_error={0: 0.001},
        two_qubit_error={(0, 1): 0.01},
    )
    assert expected_error_cost(circuit, noise) == pytest.approx(0.011)


def test_transpile_rejects_oversized_circuit():
    with pytest.raises(TranspilerError):
        transpile(QuantumCircuit(6), belem_coupling())


def test_transpile_end_to_end(calibration):
    ansatz = build_qucad_ansatz(4, repeats=1)
    transpiled = transpile(ansatz, belem_coupling(), calibration=calibration)
    params = np.linspace(0.1, 1.5, ansatz.num_parameters)
    physical = transpiled.to_physical(params)
    assert all(g.name in {"rz", "sx", "x", "cx"} for g in physical)
    metrics = transpiled.physical_metrics(params)
    assert metrics.two_qubit_gates > 0
    measured = transpiled.measured_physical_qubits([0, 1, 2, 3])
    assert len(set(measured)) == 4


def test_transpile_ref_association_covers_all_parameters(calibration):
    ansatz = build_qucad_ansatz(4, repeats=2)
    transpiled = transpile(ansatz, belem_coupling(), calibration=calibration)
    assert set(transpiled.ref_physical_qubits) == set(range(ansatz.num_parameters))


def test_transpiled_compression_reduces_length(calibration):
    """Setting parameters onto compression levels shortens the physical circuit
    even after routing (SWAPs remain, but rotations and CR gates simplify)."""
    ansatz = build_qucad_ansatz(4, repeats=1)
    transpiled = transpile(ansatz, belem_coupling(), calibration=calibration)
    rng = np.random.default_rng(0)
    generic = rng.uniform(0.3, 1.2, ansatz.num_parameters)
    compressed = np.zeros(ansatz.num_parameters)
    assert (
        transpiled.physical_metrics(compressed).physical_length
        < transpiled.physical_metrics(generic).physical_length
    )


def test_transpile_semantics_preserved_without_noise(calibration):
    """The transpiled circuit must compute the same distribution as the
    logical circuit (up to the final layout permutation) when noise-free."""
    from repro.simulator import DensityMatrixSimulator, StatevectorSimulator

    ansatz = build_qucad_ansatz(4, repeats=1)
    params = np.random.default_rng(5).uniform(0, 2 * np.pi, ansatz.num_parameters)
    logical_result = StatevectorSimulator(4).run(ansatz.bind_parameters(params))
    logical_z = logical_result.expectation_z([0, 1, 2, 3])[0]

    transpiled = transpile(ansatz, belem_coupling(), calibration=calibration)
    physical = transpiled.to_physical(params)
    device_result = DensityMatrixSimulator(5).run(physical)
    measured = transpiled.measured_physical_qubits([0, 1, 2, 3])
    physical_z = device_result.expectation_z(measured, apply_readout_error=False)[0]
    assert np.allclose(logical_z, physical_z, atol=1e-7)
