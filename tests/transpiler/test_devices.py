"""Device library + routing/layout invariant property tests (seed-pinned)."""

import numpy as np
import pytest

from repro.calibration import generate_device_history, synthetic_backend
from repro.circuits import QuantumCircuit, build_qucad_ansatz
from repro.exceptions import TranspilerError
from repro.transpiler import (
    DEVICE_LIBRARY,
    PassManager,
    PipelineConfig,
    Target,
    get_device_coupling,
    grid_coupling,
    heavy_hex_coupling,
    list_devices,
    ring_coupling,
)

#: The topologies the property suite sweeps; spans 5..27 qubits and every
#: family.  The largest lattices compile with a capped layout enumeration.
PROPERTY_DEVICES = [
    "line_5",
    "line_7",
    "ring_5",
    "ring_8",
    "grid_2x3",
    "grid_3x3",
    "grid_4x5",
    "heavy_hex_16",
    "heavy_hex_27",
]


def test_library_names_resolve_and_sizes_span_5_to_27():
    sizes = set()
    for name in DEVICE_LIBRARY:
        coupling = get_device_coupling(name)
        assert coupling.num_qubits >= 5
        assert coupling.num_qubits <= 27
        sizes.add(coupling.num_qubits)
    assert min(sizes) == 5
    assert max(sizes) == 27


def test_list_devices_includes_library_and_ibm_names():
    names = list_devices()
    assert "belem" in names and "jakarta" in names
    assert "heavy_hex_27" in names and "ring_5" in names


def test_unknown_device_raises():
    with pytest.raises(TranspilerError):
        get_device_coupling("ibm_atlantis")


def test_ring_grid_heavy_hex_shapes():
    assert len(ring_coupling(8).edges) == 8
    grid = grid_coupling(3, 4)
    assert grid.num_qubits == 12
    assert len(grid.edges) == 3 * 3 + 2 * 4  # rows*(cols-1) + (rows-1)*cols
    assert heavy_hex_coupling(27).num_qubits == 27
    with pytest.raises(TranspilerError):
        heavy_hex_coupling(11)
    with pytest.raises(TranspilerError):
        ring_coupling(2)
    with pytest.raises(TranspilerError):
        grid_coupling(0, 3)


def test_synthetic_backend_rates_in_realistic_ranges():
    spec = synthetic_backend(get_device_coupling("grid_3x3"), seed=4)
    assert set(spec.base_two_qubit_error) == set(get_device_coupling("grid_3x3").edges)
    assert all(1e-4 <= e <= 1e-3 for e in spec.base_single_qubit_error.values())
    assert all(1e-3 <= e <= 5e-2 for e in spec.base_two_qubit_error.values())
    assert all(1e-2 <= e <= 1e-1 for e in spec.base_readout_error.values())
    again = synthetic_backend(get_device_coupling("grid_3x3"), seed=4)
    assert spec.base_two_qubit_error == again.base_two_qubit_error  # reproducible
    other = synthetic_backend(get_device_coupling("grid_3x3"), seed=5)
    assert spec.base_two_qubit_error != other.base_two_qubit_error


def _random_entangling_circuit(num_qubits: int, rng: np.random.Generator) -> QuantumCircuit:
    """A small random circuit with enough 2q structure to force routing."""
    circuit = QuantumCircuit(num_qubits)
    ref = 0
    for _ in range(2 * num_qubits):
        kind = rng.integers(0, 3)
        if kind == 0:
            circuit.ry(float(rng.uniform(0, np.pi)), int(rng.integers(num_qubits)),
                       param_ref=ref, trainable=True)
            ref += 1
        else:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            if kind == 1:
                circuit.cx(int(a), int(b))
            else:
                circuit.crz(float(rng.uniform(0, np.pi)), int(a), int(b),
                            param_ref=ref, trainable=True)
                ref += 1
    return circuit


@pytest.mark.parametrize("device_name", PROPERTY_DEVICES)
def test_routing_and_layout_invariants(device_name):
    """Pipeline output invariants hold on every library topology.

    Checks, per compiled circuit: the initial layout is an injective map
    into the device, the final mapping is a valid permutation of the layout's
    image, measured physical qubits are distinct and in range, and every
    routed two-qubit gate acts on a coupler edge.
    """
    coupling = get_device_coupling(device_name)
    rng = np.random.default_rng(hash(device_name) % (2**32))
    snapshot = generate_device_history(device_name, 1, seed=13)[0]
    manager = PassManager(PipelineConfig(large_device_layout_candidates=120))

    circuits = [
        build_qucad_ansatz(4, repeats=1),
        _random_entangling_circuit(4, rng),
        _random_entangling_circuit(3, rng),
    ]
    for circuit in circuits:
        transpiled = manager.compile(
            circuit, Target(coupling=coupling, calibration=snapshot)
        )
        num_logical = circuit.num_qubits

        layout = transpiled.initial_layout.logical_to_physical
        assert len(layout) == num_logical
        assert len(set(layout)) == num_logical
        assert all(0 <= q < coupling.num_qubits for q in layout)

        final = transpiled.final_mapping
        assert sorted(final) == list(range(num_logical))
        # SWAP chains may route through unused ancilla qubits, so the final
        # image need not equal the initial one — but it must stay injective
        # and on-device (a valid partial permutation of the physical qubits).
        assert len(set(final.values())) == num_logical
        assert all(0 <= q < coupling.num_qubits for q in final.values())

        measured = transpiled.measured_physical_qubits(list(range(num_logical)))
        assert len(set(measured)) == num_logical
        assert all(0 <= q < coupling.num_qubits for q in measured)

        for gate in transpiled.routed.circuit.gates:
            if gate.num_qubits == 2:
                assert coupling.is_adjacent(*gate.qubits), (
                    f"{device_name}: routed gate {gate.name} on non-adjacent "
                    f"{gate.qubits}"
                )

        assert set(transpiled.ref_physical_qubits) == set(range(circuit.num_parameters))


@pytest.mark.parametrize("device_name", ["ring_6", "grid_2x4", "heavy_hex_16"])
def test_trivial_layout_invariants_without_calibration(device_name):
    coupling = get_device_coupling(device_name)
    circuit = build_qucad_ansatz(4, repeats=1)
    manager = PassManager()
    transpiled = manager.compile(circuit, Target(coupling=coupling))
    assert transpiled.initial_layout.logical_to_physical == (0, 1, 2, 3)
    for gate in transpiled.routed.circuit.gates:
        if gate.num_qubits == 2:
            assert coupling.is_adjacent(*gate.qubits)


def test_device_history_generation_is_seed_pinned():
    first = generate_device_history("ring_5", 4, seed=21)
    second = generate_device_history("ring_5", 4, seed=21)
    assert np.array_equal(first.to_matrix(), second.to_matrix())
    different = generate_device_history("ring_5", 4, seed=22)
    assert not np.array_equal(first.to_matrix(), different.to_matrix())
    assert len(first) == 4
    assert set(first[0].two_qubit_error) == set(get_device_coupling("ring_5").edges)
